"""Figure 7 — CSMetrics: distribution of all feasible rankings by stability.

Paper protocol: enumerate every feasible ranking of the top-100
institutions over the full function space with repeated GET-NEXT calls;
336 rankings exist, a few are highly stable, stability then drops
rapidly, and the published (alpha = 0.3) ranking sits far down the
distribution (stability 0.0032, the 108th most stable).

Shape checks: a few hundred feasible rankings; steep drop from the most
stable to the median; the reference ranking well below the maximum.
"""

import numpy as np

from benchmarks.conftest import report
from repro import GetNext2D, verify_stability_2d
from repro.datasets import csmetrics_dataset
from repro.datasets.csmetrics import csmetrics_reference_function


def test_fig07_enumerate_all_rankings(benchmark):
    institutions = csmetrics_dataset(100)

    def enumerate_all():
        return list(GetNext2D(institutions))

    results = benchmark.pedantic(enumerate_all, rounds=3, iterations=1)
    stabilities = [r.stability for r in results]

    reference = csmetrics_reference_function()
    verdict = verify_stability_2d(institutions, reference.rank(institutions))
    reference_position = 1 + sum(s > verdict.stability for s in stabilities)

    report(
        benchmark,
        n_feasible_rankings=len(results),
        top_stability=round(stabilities[0], 5),
        median_stability=round(float(np.median(stabilities)), 5),
        reference_stability=round(verdict.stability, 5),
        reference_position=reference_position,
    )
    # Paper shape: few hundred rankings (336 for the real crawl).
    assert 100 <= len(results) <= 1500
    # "a few rankings with high stability, after which stability rapidly
    # drops": the best is several times the median.
    assert stabilities[0] > 3 * float(np.median(stabilities))
    # The published ranking is far from the most stable (108th of 336).
    assert reference_position > 10
    assert verdict.stability < stabilities[0] / 3
