"""Ablation — quasi-Monte-Carlo vs plain Monte-Carlo stability estimates.

The stability oracle (Algorithm 12) is a volume estimator; its accuracy
at a fixed budget decides how many samples every GET-NEXT call needs.
This ablation estimates a *known* quantity — the fraction of a cap of
angle theta occupied by an inner cap of angle theta/e — with

1. plain MC samples from the paper's cap sampler (Algorithm 11), and
2. randomised Halton QMC points (:mod:`repro.sampling.quasi`),

across replications, reporting each estimator's RMS error against the
closed-form truth (Equation 13's area ratio).  QMC's lower error at
equal budget is the case for offering it alongside the paper's sampler;
the same harness shows both estimators are unbiased.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.geometry.spherical import cap_area
from repro.sampling.cap import sample_cap
from repro.sampling.quasi import quasi_cap_points

DIM = 3
THETA = 0.3
INNER = THETA / math.e
BUDGET = 2_000
REPLICATIONS = 16


def _truth() -> float:
    return cap_area(DIM, INNER) / cap_area(DIM, THETA)


def _estimate(points: np.ndarray, axis: np.ndarray) -> float:
    return float(np.mean(points @ axis >= math.cos(INNER)))


@pytest.mark.parametrize("sampler", ["mc", "qmc"])
def test_estimator_error_at_fixed_budget(benchmark, sampler):
    axis = np.full(DIM, 1.0 / math.sqrt(DIM))
    truth = _truth()

    def run():
        estimates = []
        for rep in range(REPLICATIONS):
            rng = np.random.default_rng(10_000 + rep)
            if sampler == "mc":
                pts = sample_cap(axis, THETA, BUDGET, rng)
            else:
                pts = quasi_cap_points(axis, THETA, BUDGET, rng=rng)
            estimates.append(_estimate(pts, axis))
        return np.asarray(estimates)

    estimates = benchmark(run)
    rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
    bias = float(np.mean(estimates) - truth)
    report(
        benchmark,
        sampler=sampler,
        truth=f"{truth:.5f}",
        rmse=f"{rmse:.2e}",
        bias=f"{bias:.2e}",
    )
    # Both estimators are unbiased to within a few standard errors.
    assert abs(bias) < 5.0 * max(rmse, 1e-6)


def test_qmc_beats_mc_at_equal_budget():
    """The ablation's verdict, asserted directly (no timing)."""
    axis = np.full(DIM, 1.0 / math.sqrt(DIM))
    truth = _truth()
    errs = {"mc": [], "qmc": []}
    for rep in range(REPLICATIONS):
        rng_m = np.random.default_rng(50_000 + rep)
        rng_q = np.random.default_rng(60_000 + rep)
        mc = sample_cap(axis, THETA, BUDGET, rng_m)
        qmc = quasi_cap_points(axis, THETA, BUDGET, rng=rng_q)
        errs["mc"].append(_estimate(mc, axis) - truth)
        errs["qmc"].append(_estimate(qmc, axis) - truth)
    rmse_mc = float(np.sqrt(np.mean(np.square(errs["mc"]))))
    rmse_qmc = float(np.sqrt(np.mean(np.square(errs["qmc"]))))
    print(f"\n  rmse_mc={rmse_mc:.2e}  rmse_qmc={rmse_qmc:.2e}")
    assert rmse_qmc < rmse_mc


def test_qmc_reaches_width_with_fraction_of_mc_samples():
    """Samples-to-precision, the quantity a ``"ci:..."`` budget spends.

    ``bench_kernel.py`` runs the full ladder with floors; this ablation
    keeps a compact assertion of the same shape — the first budget at
    which each estimator's empirical RMSE crosses a fixed target, with
    QMC required to get there no later than MC.
    """
    from benchmarks.bench_kernel import _samples_to_width

    target = 0.02
    ladder = (125, 250, 500, 1_000, 2_000, 4_000)
    mc_needed = _samples_to_width("mc", target, ladder)
    qmc_needed = _samples_to_width("qmc", target, ladder)
    print(f"\n  samples to rmse<={target}: mc={mc_needed} qmc={qmc_needed}")
    assert mc_needed > 0 and qmc_needed > 0
    assert qmc_needed <= mc_needed
