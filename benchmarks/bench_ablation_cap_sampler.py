"""Ablation — cap sampling backends (section 5.2's trade-off discussion).

The paper weighs three routes to uniform samples of a hypercone:

1. inverse CDF with the closed form / regularized incomplete beta
   ("exact" backend);
2. inverse CDF with the Riemann table + binary search (Algorithms 10-11);
3. acceptance-rejection from the whole orthant, whose expected cost per
   sample is 1 / (cap fraction) — hopeless for narrow cones.

This benchmark quantifies the trade-off: both inverse-CDF backends are
insensitive to theta, while rejection degrades as the cone narrows.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.geometry.angles import as_unit_vector
from repro.sampling.cap import CapSampler
from repro.sampling.uniform import sample_orthant

DIM = 4
N_SAMPLES = 5_000
THETAS = {"pi/10": math.pi / 10, "pi/50": math.pi / 50, "pi/100": math.pi / 100}


@pytest.mark.parametrize("backend", ["exact", "riemann"])
@pytest.mark.parametrize("label", list(THETAS))
def test_ablation_inverse_cdf_backends(benchmark, backend, label):
    ray = np.ones(DIM)
    sampler = CapSampler(ray, THETAS[label], method=backend)
    rng = np.random.default_rng(31)

    pts = benchmark(sampler.sample, N_SAMPLES, rng)
    cosines = pts @ as_unit_vector(ray)
    report(benchmark, backend=backend, theta=label)
    assert np.all(cosines >= math.cos(THETAS[label]) - 1e-9)


@pytest.mark.parametrize("label", list(THETAS))
def test_ablation_rejection_from_orthant(benchmark, label):
    """Rejection sampling of the same cap, for cost comparison.

    Uses a bounded number of proposals per round so the pi/100 case
    terminates; the acceptance rate in extra_info shows the collapse.
    """
    theta = THETAS[label]
    ray = as_unit_vector(np.ones(DIM))
    rng = np.random.default_rng(32)
    target = 500  # scaled down: rejection is the slow baseline

    def rejection():
        accepted = 0
        proposals = 0
        while accepted < target and proposals < 4_000_000:
            batch = sample_orthant(DIM, 20_000, rng)
            proposals += batch.shape[0]
            accepted += int(np.sum(batch @ ray >= math.cos(theta)))
        return proposals, accepted

    proposals, accepted = benchmark.pedantic(rejection, rounds=1, iterations=1)
    rate = accepted / proposals
    report(benchmark, theta=label, acceptance_rate=f"{rate:.2e}")
    # The narrow-cone rate must be dramatically worse than the wide one,
    # which is the paper's reason for the inverse-CDF sampler.
    if label == "pi/100":
        assert rate < 0.01
