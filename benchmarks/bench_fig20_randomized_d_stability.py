"""Figure 20 — randomized GET-NEXT: top-10 stability series by d and kind.

Paper protocol: Blue Nile n = 10,000, theta = pi/50, k = 10; for d in
{3, 4, 5} plot the stability of the top-10 stable partial rankings for
top-k sets and ranked top-k.  Findings: sets dominate ranked prefixes at
every d, and "the number of attributes has a negative correlation with
the stability of the top-k items".

Shape checks: set >= ranked per d; the most stable set's stability
decreases from d = 3 to d = 5.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import bluenile_dataset

DIMS = [3, 4, 5]
N_ITEMS = 10_000
K = 10
H = 10

_top_set_stability: dict[int, float] = {}


def _top_h(ds, d, kind, seed):
    cone = Cone(np.ones(d), math.pi / 50)
    engine = GetNextRandomized(
        ds, region=cone, kind=kind, k=K, rng=np.random.default_rng(seed)
    )
    return [r.stability for r in engine.top_h(H, budget_first=5000, budget_rest=1000)]


@pytest.mark.parametrize("d", DIMS)
def test_fig20_set_vs_ranked_by_d(benchmark, d):
    ds = bluenile_dataset(N_ITEMS).project(range(d))

    def both_series():
        return _top_h(ds, d, "topk_set", 20), _top_h(ds, d, "topk_ranked", 21)

    sets, ranked = benchmark.pedantic(both_series, rounds=1, iterations=1)
    _top_set_stability[d] = sets[0]
    report(
        benchmark,
        d=d,
        set_series=[round(s, 4) for s in sets],
        ranked_series=[round(s, 4) for s in ranked],
    )
    # "the top-k sets are more stable than the top-k rankings" — this is
    # the structural claim (sets aggregate over orderings) and must hold
    # at every d.
    assert sets[0] >= ranked[0] - 0.02
    assert sum(sets) >= sum(ranked) - 0.05
    # The paper's second claim — stability negatively correlated with d —
    # is a property of the real catalog that the synthetic stand-in does
    # not reliably reproduce (see bench_fig19 and EXPERIMENTS.md); the
    # series is reported for inspection without asserting monotonicity.
