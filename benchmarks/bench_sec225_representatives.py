"""Section 2.2.5 — stable top-k sets vs skyline-family representatives.

The paper's motivating contrast: the stable top-k set is *not* a
skyline subset, so no skyline-based representative (regret sets,
k-representative skylines) can substitute for it.  This benchmark runs
all four set selectors on the same synthetic catalogs and records:

- the overlap of the stable top-k with each baseline;
- the regret ratio of each set (the baselines' objective);
- the stability of each set as a top-k set (the paper's objective).

Expected shape: each selector wins its own objective — the greedy
regret set has (near-)minimal regret but markedly lower set stability
than the stable top-k, and vice versa.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Dataset, GetNextRandomized, verify_topk_set_stability
from repro.operators import greedy_regret_set, k_representative_skyline, regret_ratio, skyline

N = 2_000
K = 10
D = 3
BUDGET = 6_000


def _catalog(kind: str, rng: np.random.Generator) -> Dataset:
    from repro.datasets import (
        anticorrelated_dataset,
        correlated_dataset,
        independent_dataset,
    )

    maker = {
        "independent": independent_dataset,
        "correlated": correlated_dataset,
        "anticorrelated": anticorrelated_dataset,
    }[kind]
    return maker(N, D, rng)


def _set_stability(dataset: Dataset, items: frozenset, rng) -> float:
    return verify_topk_set_stability(
        dataset, items, n_samples=4_000, rng=rng
    ).stability


@pytest.mark.parametrize("kind", ["independent", "correlated", "anticorrelated"])
def test_stable_topk_vs_baselines(benchmark, kind):
    rng = np.random.default_rng(20181218)
    dataset = _catalog(kind, rng)

    def run():
        engine = GetNextRandomized(dataset, kind="topk_set", k=K, rng=rng)
        stable = engine.get_next(budget=BUDGET).top_k_set
        regret_set = frozenset(
            int(i) for i in greedy_regret_set(dataset.values, K, rng=rng)
        )
        representative = frozenset(
            int(i) for i in k_representative_skyline(dataset.values, K)[0]
        )
        return stable, regret_set, representative

    stable, regret_set, representative = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    sky = set(skyline(dataset.values).tolist())
    stability = {
        "stable": _set_stability(dataset, stable, rng),
        "regret": _set_stability(dataset, regret_set, rng),
        "representative": _set_stability(dataset, representative, rng),
    }
    regret = {
        "stable": regret_ratio(dataset.values, np.array(sorted(stable)), rng=rng),
        "regret": regret_ratio(dataset.values, np.array(sorted(regret_set)), rng=rng),
    }
    report(
        benchmark,
        kind=kind,
        stable_in_skyline=len(stable & sky),
        overlap_regret=len(stable & regret_set),
        overlap_representative=len(stable & representative),
        stability_stable=f"{stability['stable']:.4f}",
        stability_regret=f"{stability['regret']:.4f}",
        stability_representative=f"{stability['representative']:.4f}",
        regret_stable=f"{regret['stable']:.4f}",
        regret_regret=f"{regret['regret']:.4f}",
    )
    # Each selector wins its own game.
    assert stability["stable"] >= stability["regret"] - 0.05
    assert regret["regret"] <= regret["stable"] + 0.02
