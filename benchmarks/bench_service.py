"""Service-layer acceptance benchmark: batching, caching, sharding.

Four claims back the `repro.service` subsystem:

1. **Batched throughput** — executing a mixed batch of >= 8 requests
   (top-stable, get-next, verification; two top-k configurations) over
   one ``n = 10_000`` dataset through a shared
   :class:`~repro.service.StabilitySession` runs at **>= 3x** the
   per-call throughput of answering each request with its own
   :class:`~repro.engine.StabilityEngine` (the pre-service protocol),
   because the batch planner amortizes one sampling pass per
   configuration across all requests sharing it.
2. **Warm cache** — repeating an idempotent request hits the keyed LRU
   and returns in **< 1 ms**.
3. **Parallel observe** — the shard-parallel observe pass produces a
   tally **identical** to the serial pass: same counts, same totals,
   same first-seen tie-break order.
4. **Warm restore** — restoring a session snapshot and answering its
   first query is **>= 5x** faster than a cold session answering the
   same query from scratch, because the restored session finds its
   Monte-Carlo pool and result cache already populated.

Runs standalone (``python benchmarks/bench_service.py [--smoke]``) or
under pytest.  ``--smoke`` shrinks budgets for CI wall-clock; the 3x
claim is asserted at full size only (tiny budgets are dominated by
fixed per-request overhead on both sides), the 5x restore claim in both
modes.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import Dataset, StabilityEngine, StabilitySession, execute_batch
from repro import obs
from repro.core.randomized import GetNextRandomized
from repro.service.parallel import parallel_observe

N_ITEMS = 10_000
N_ATTRS = 4
K = 10
MIN_SPEEDUP = 3.0
MAX_WARM_HIT_SECONDS = 0.001
MIN_RESTORE_SPEEDUP = 5.0


def _mixed_requests(budget: int, top_set: list[int], top_prefix: list[int]):
    """Eight heterogeneous requests over two top-k configurations."""
    return [
        {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "top_stable", "m": 3, "kind": "topk_ranked", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "stability_of", "kind": "topk_set", "k": K,
         "backend": "randomized", "ranking": top_set, "min_samples": budget},
        {"op": "get_next", "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "top_stable", "m": 5, "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "stability_of", "kind": "topk_ranked", "k": K,
         "backend": "randomized", "ranking": top_prefix, "min_samples": budget},
        {"op": "get_next", "kind": "topk_ranked", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "top_stable", "m": 2, "kind": "topk_ranked", "k": K,
         "backend": "randomized", "budget": budget},
    ]


def _per_call(dataset: Dataset, requests, seed: int) -> float:
    """The pre-service protocol: one fresh engine per request."""
    start = time.perf_counter()
    for i, req in enumerate(requests):
        engine = StabilityEngine(
            dataset,
            backend="randomized",
            kind=req["kind"],
            k=req["k"],
            rng=np.random.default_rng([seed, i]),
        )
        if req["op"] == "top_stable":
            engine.top_stable(
                req["m"],
                budget_first=req["budget"],
                budget_rest=max(req["budget"] // 5, 1),
            )
        elif req["op"] == "get_next":
            engine.get_next(budget=req["budget"])
        else:
            engine.stability_of(req["ranking"], min_samples=req["min_samples"])
    return time.perf_counter() - start


def _batched(dataset: Dataset, requests, seed: int):
    """The service protocol: one session, one planner pass."""
    session = StabilitySession(dataset, seed=seed, parallel="auto")
    with session:
        start = time.perf_counter()
        outcomes = execute_batch(session, requests)
        elapsed = time.perf_counter() - start
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        # Warm repeat of the first (idempotent) request: cache hit.
        start = time.perf_counter()
        outcomes_warm = execute_batch(session, [requests[0]])
        warm = time.perf_counter() - start
        assert outcomes_warm[0].cached, "warm repeat missed the result cache"
        stats = session.stats()
    return elapsed, warm, stats


def _parallel_equivalence(n_samples: int) -> float:
    """Shard-parallel observe vs serial observe: identical tallies."""
    rng = np.random.default_rng(20180905)
    dataset = Dataset(rng.uniform(size=(N_ITEMS, N_ATTRS)))
    serial = GetNextRandomized(
        dataset, kind="topk_set", k=K, rng=np.random.default_rng(11)
    )
    sharded = GetNextRandomized(
        dataset, kind="topk_set", k=K, rng=np.random.default_rng(11)
    )
    start = time.perf_counter()
    serial.observe(n_samples)
    serial_s = time.perf_counter() - start
    with ThreadPoolExecutor(max_workers=4) as pool:
        start = time.perf_counter()
        chunks = parallel_observe(sharded, n_samples, executor=pool)
        parallel_s = time.perf_counter() - start
    assert chunks > 0, "parallel path did not run"
    assert sharded.total_samples == serial.total_samples
    assert sharded.tally.counts == serial.tally.counts, "tally counts diverged"
    assert (
        sharded.tally._first_seen == serial.tally._first_seen
    ), "first-seen order diverged"
    return serial_s / parallel_s if parallel_s > 0 else float("inf")


def _stage_breakdown(dataset: Dataset, budget: int, seed: int) -> dict:
    """Cold top_stable under a trace: the shared ``"stages"`` schema."""
    with StabilitySession(dataset, seed=seed, parallel=False) as session:
        with obs.trace("bench.top_stable") as t:
            session.top_stable(3, kind="topk_set", k=K, budget=budget)
    return obs.stage_report(t)


def _restore_latency(dataset: Dataset, budget: int, seed: int) -> tuple[float, float]:
    """First-query latency: cold session vs snapshot-restored session."""
    query = dict(kind="topk_set", k=K, budget=budget)
    cold = StabilitySession(dataset, seed=seed, parallel=False)
    with cold:
        start = time.perf_counter()
        expected = cold.top_stable(3, **query)
        cold_s = time.perf_counter() - start
        fd, path = tempfile.mkstemp(suffix=".snap")
        os.close(fd)
        cold.save(path)
    try:
        restored = StabilitySession.restore(path, dataset, parallel=False)
        with restored:
            start = time.perf_counter()
            warm_results = restored.top_stable(3, **query)
            warm_s = time.perf_counter() - start
        assert [r.stability for r in warm_results] == [
            r.stability for r in expected
        ], "restored session answered differently"
    finally:
        os.unlink(path)
    return cold_s, warm_s


def run(*, smoke: bool = False, verbose: bool = True) -> dict:
    budget = 1_000 if smoke else 5_000
    seed = 20181218
    dataset = Dataset(
        np.random.default_rng(20180905).uniform(size=(N_ITEMS, N_ATTRS))
    )
    # Warmup query provides feasible verification targets.
    warm_engine = StabilityEngine(
        dataset, backend="randomized", kind="topk_ranked", k=K,
        rng=np.random.default_rng(99),
    )
    prefix = list(warm_engine.get_next(budget=500).ranking.order)
    top_set = sorted(prefix)
    requests = _mixed_requests(budget, top_set, prefix)

    t_call = _per_call(dataset, requests, seed)
    t_batch, t_warm, stats = _batched(dataset, requests, seed)
    speedup = t_call / t_batch
    parallel_speedup = _parallel_equivalence(2_000 if smoke else 8_000)
    t_cold, t_restored = _restore_latency(dataset, budget, seed + 1)
    restore_speedup = t_cold / t_restored if t_restored > 0 else float("inf")

    if verbose:
        mode = "smoke" if smoke else "full"
        print(
            f"  [{mode}] n={N_ITEMS} d={N_ATTRS} k={K} budget={budget}: "
            f"{len(requests)} mixed requests"
        )
        print(
            f"  per-call {t_call * 1000:8.1f} ms   batched {t_batch * 1000:8.1f} ms  "
            f"speedup {speedup:5.2f}x (floor {MIN_SPEEDUP}x at full size)"
        )
        print(
            f"  warm cache hit {t_warm * 1e6:8.0f} us   "
            f"(ceiling {MAX_WARM_HIT_SECONDS * 1e6:.0f} us)   "
            f"cache={stats['cache']}"
        )
        print(
            f"  parallel observe: tallies identical; "
            f"{parallel_speedup:4.2f}x vs serial "
            f"({'thread handoff dominates on small hosts' if parallel_speedup < 1 else 'wins'})"
        )
        print(
            f"  warm restore: cold first query {t_cold * 1000:8.1f} ms   "
            f"restored {t_restored * 1000:8.1f} ms   "
            f"speedup {restore_speedup:6.1f}x (floor {MIN_RESTORE_SPEEDUP}x)"
        )
    stages = _stage_breakdown(dataset, budget, seed + 2)
    if verbose:
        print(
            f"  stage breakdown: coverage {stages['coverage']:.2%} of "
            f"{stages['total_seconds'] * 1000:.1f} ms cold top_stable"
        )
    return {
        "speedup": speedup,
        "warm_seconds": t_warm,
        "parallel_speedup": parallel_speedup,
        "restore_speedup": restore_speedup,
        "smoke": float(smoke),
        "stages": stages,
    }


def test_batched_throughput_and_cache():
    metrics = run(verbose=True)
    assert metrics["speedup"] >= MIN_SPEEDUP, (
        f"batched execution only {metrics['speedup']:.2f}x per-call; "
        f"the service tier requires >= {MIN_SPEEDUP}x"
    )
    assert metrics["warm_seconds"] < MAX_WARM_HIT_SECONDS
    assert metrics["restore_speedup"] >= MIN_RESTORE_SPEEDUP, (
        f"warm restore only {metrics['restore_speedup']:.2f}x a cold "
        f"session; durable sessions require >= {MIN_RESTORE_SPEEDUP}x"
    )


def test_parallel_matches_serial():
    _parallel_equivalence(2_000)


if __name__ == "__main__":
    import json

    smoke = "--smoke" in sys.argv
    metrics = run(smoke=smoke, verbose=True)
    # Floors are enforced in smoke too (a regression must fail the CI
    # job, not just a crash): the batching claim keeps a relaxed >1x
    # bar at smoke sizes, where fixed overhead dominates both sides.
    floors = [
        ("warm_cache_hit_seconds", metrics["warm_seconds"],
         MAX_WARM_HIT_SECONDS, metrics["warm_seconds"] < MAX_WARM_HIT_SECONDS),
        ("restore_speedup", metrics["restore_speedup"], MIN_RESTORE_SPEEDUP,
         metrics["restore_speedup"] >= MIN_RESTORE_SPEEDUP),
        ("batch_speedup", metrics["speedup"],
         1.0 if smoke else MIN_SPEEDUP,
         metrics["speedup"] > 1.0 if smoke
         else metrics["speedup"] >= MIN_SPEEDUP),
    ]
    metrics["floors"] = [
        {"name": name, "value": value, "floor": floor, "passed": passed}
        for name, value, floor, passed in floors
    ]
    with open("BENCH_service.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    failed = [entry for entry in metrics["floors"] if not entry["passed"]]
    for entry in failed:
        print(
            f"  FLOOR REGRESSION: {entry['name']}: {entry['value']:.4f} "
            f"vs floor {entry['floor']}",
            file=sys.stderr,
        )
    raise SystemExit(1 if failed else 0)
