"""Figure 18 — DoT flights: randomized GET-NEXT at very large n.

Paper protocol: DoT on-time records, d = 3, theta = pi/50, top-10 sets,
budgets 5,000 / 1,000, n up to one million.  Findings: run time grows
linearly with n (about an hour at 1M in the paper's Python 2.7 setup);
subsequent calls cost ~1/5 of the first (the budget ratio).

Bench scale: n up to 300K (run examples/flight_scoring_scale.py --full
for the 10^6 point).  Shape checks: near-linear growth; subsequent call
cheaper than the first.
"""

import math
import time

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import dot_dataset

SIZES = [30_000, 100_000, 300_000]
K = 10

_first_call_times: dict[int, float] = {}


@pytest.mark.parametrize("n", SIZES)
def test_fig18_dot_first_and_next(benchmark, n):
    flights = dot_dataset(n, np.random.default_rng(n))
    cone = Cone(np.ones(3), math.pi / 50)

    def run():
        engine = GetNextRandomized(
            flights,
            region=cone,
            kind="topk_set",
            k=K,
            rng=np.random.default_rng(18),
        )
        t0 = time.perf_counter()
        first = engine.get_next(budget=5000)
        t1 = time.perf_counter()
        engine.get_next(budget=1000)
        t2 = time.perf_counter()
        return first, t1 - t0, t2 - t1

    first, first_s, next_s = benchmark.pedantic(run, rounds=1, iterations=1)
    _first_call_times[n] = first_s
    report(
        benchmark,
        n=n,
        first_call_s=round(first_s, 2),
        next_call_s=round(next_s, 2),
        top_stability=round(first.stability, 4),
    )
    # Subsequent calls use 1/5 the budget: they must be clearly cheaper.
    assert next_s < first_s
    # "the run-time linearly increases with the number of items": the
    # largest/smallest time ratio stays near the size ratio, far from
    # quadratic.
    if len(_first_call_times) == len(SIZES):
        ratio = _first_call_times[SIZES[-1]] / _first_call_times[SIZES[0]]
        size_ratio = SIZES[-1] / SIZES[0]
        assert ratio < 3 * size_ratio
