"""Figure 12 — MD stability verification: impact of dataset size.

Paper protocol: Blue Nile projected to d = 3, default weights <1, 1, 1>,
oracle over 1M samples of the full function space, n from 100 to 10,000.
Findings: time grows with n (under a minute at n = 10K) and the default
ranking's stability is near zero already at 100 items.

Bench scale: 200K oracle samples.  Shape checks: time grows with n;
stability ~0 for every n >= 100.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import ScoringFunction, verify_stability_md
from repro.datasets import bluenile_dataset
from repro.sampling.oracle import StabilityOracle
from repro.sampling.uniform import sample_orthant

SIZES = [100, 1_000, 10_000]
POOL = 200_000


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project(range(3))
    return {n: full.subset(range(n)) for n in SIZES}


@pytest.fixture(scope="module")
def oracle():
    rng = np.random.default_rng(12)
    return StabilityOracle(sample_orthant(3, POOL, rng))


@pytest.mark.parametrize("n", SIZES)
def test_fig12_svmd_time(benchmark, catalogs, oracle, n):
    ds = catalogs[n]
    ranking = ScoringFunction.equal_weights(3).rank(ds)

    result = benchmark.pedantic(
        verify_stability_md, args=(ds, ranking), kwargs={"oracle": oracle},
        rounds=2, iterations=1,
    )
    report(benchmark, n=n, stability=f"{result.stability:.2e}")
    # "the stability of the default ranking immediately drops to near
    # zero, even for 100 items" (d = 3 fragments the space far more than
    # d = 2 at the same n).
    assert result.stability < 0.01
