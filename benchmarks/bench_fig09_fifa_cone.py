"""Figure 9 — FIFA: stable rankings in a 4-d hypercone around the
published weights.

Paper protocol: 0.999 cosine similarity around <1, 0.5, 0.3, 0.2>;
100 GET-NEXT-MD calls with 10,000 cap samples.  Findings: many feasible
rankings even in the narrow cone, a significant stability drop after the
most stable few, and the reference ranking absent from the top-100.

Bench scale: 40 GET-NEXT calls over 8,000 samples (the paper's full
protocol runs in the examples/fifa_case_study.py script).
"""

import numpy as np

from benchmarks.conftest import report
from repro import Cone, GetNextMD, verify_stability_md
from repro.datasets import fifa_dataset
from repro.datasets.fifa import fifa_reference_function
from repro.errors import ExhaustedError
from repro.sampling.oracle import StabilityOracle

N_CALLS = 40
N_SAMPLES = 8_000


def test_fig09_fifa_stable_rankings(benchmark):
    teams = fifa_dataset(100)
    reference = fifa_reference_function()
    cone = Cone.from_cosine(reference.weights, 0.999)

    def enumerate_top():
        rng = np.random.default_rng(9)
        engine = GetNextMD(teams, region=cone, n_samples=N_SAMPLES, rng=rng)
        out = []
        try:
            for _ in range(N_CALLS):
                out.append(engine.get_next())
        except ExhaustedError:
            pass
        return out

    results = benchmark.pedantic(enumerate_top, rounds=1, iterations=1)
    stabilities = [r.stability for r in results]

    rng = np.random.default_rng(10)
    oracle = StabilityOracle(cone.sample(N_SAMPLES, rng))
    published = reference.rank(teams)
    verdict = verify_stability_md(teams, published, oracle=oracle)
    position = next(
        (i for i, r in enumerate(results, start=1) if r.ranking == published),
        None,
    )
    report(
        benchmark,
        n_enumerated=len(results),
        top_stability=round(stabilities[0], 5),
        tenth_stability=round(stabilities[min(9, len(stabilities) - 1)], 5),
        reference_stability=round(verdict.stability, 5),
        reference_position_or_absent=position or f"absent from top {N_CALLS}",
    )
    # "there are many feasible rankings, even in such a narrow region".
    assert len(results) == N_CALLS
    # "a significant drop in stability after the most stable rankings".
    assert stabilities[0] > 2 * stabilities[min(9, len(stabilities) - 1)]
    # "the reference ranking did not appear in the top-100 stable
    # rankings" — here, absent from (or at best deep inside) the top-40.
    assert position is None or position > 10
    assert verdict.stability < stabilities[0] / 2
