"""Figure 11 — 2D GET-NEXT: first call vs subsequent calls, impact of n.

Paper protocol: Blue Nile d = 2, n from 100 to 100,000; the first
GET-NEXT call performs the ray sweep and builds the heap of regions,
subsequent calls only pop.  Findings: both grow with n and subsequent
calls are orders of magnitude cheaper.

Bench scale: n up to 8,000.  The 2-d Blue Nile projection has almost
no dominating pairs, so the arrangement genuinely contains ~n^2/2
regions (3.2e7 at n = 8,000) — the first call must at least sort that
many exchange angles, which the vectorized sweep does in seconds;
n = 100K (5e9 regions) is out of reach for any implementation that
enumerates the full arrangement, see EXPERIMENTS.md.  Shape checks:
first call superlinear in n, subsequent calls far cheaper.
"""

import time

import pytest

from benchmarks.conftest import report
from repro import GetNext2D
from repro.datasets import bluenile_dataset

SIZES = [100, 1_000, 4_000, 8_000]


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project([0, 1])
    return {n: full.subset(range(n)) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_fig11_first_call(benchmark, catalogs, n):
    ds = catalogs[n]

    def first_call():
        return GetNext2D(ds).get_next()

    result = benchmark.pedantic(first_call, rounds=1, iterations=1)
    report(benchmark, n=n, top_stability=f"{result.stability:.2e}")


@pytest.mark.parametrize("n", SIZES)
def test_fig11_subsequent_calls(benchmark, catalogs, n):
    ds = catalogs[n]
    engine = GetNext2D(ds)
    engine.get_next()  # pay the sweep outside the measurement

    def subsequent_call():
        # pytest-benchmark may run more rounds than there are regions;
        # rewinding the pop cursor keeps every measured call identical in
        # cost without re-sweeping.
        if engine._cursor >= engine._pop_order.shape[0]:
            engine._cursor = 1
        return engine.get_next()

    result = benchmark(subsequent_call)
    report(benchmark, n=n, stability=f"{result.stability:.2e}")


def test_fig11_first_vs_subsequent_gap(benchmark, catalogs):
    ds = catalogs[SIZES[-1]]

    def measure():
        t0 = time.perf_counter()
        engine = GetNext2D(ds)
        engine.get_next()
        t1 = time.perf_counter()
        for _ in range(20):
            engine.get_next()
        t2 = time.perf_counter()
        return t1 - t0, (t2 - t1) / 20

    first, later = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(benchmark, first_call_s=round(first, 4), subsequent_call_s=round(later, 5))
    # "subsequent GET-NEXT calls are significantly faster than the first".
    assert later < first / 10
