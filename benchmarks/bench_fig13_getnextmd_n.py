"""Figure 13 — MD GET-NEXT top-10: impact of dataset size.

Paper protocol: Blue Nile d = 3, theta = pi/100 cone around equal
weights, 100K region samples, top-10 stable rankings, n in
{10, 100, 1000, 10000}.  Findings: per-call time grows steeply with n
(thousands of seconds at n = 10K) because the arrangement inside even a
narrow cone carries O(n^2) ordering exchanges.

Bench scale: n up to 1,000 and 30K samples.  Shape checks: total top-10
time grows superlinearly with n.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextMD
from repro.datasets import bluenile_dataset
from repro.errors import ExhaustedError

SIZES = [10, 100, 1_000]
N_SAMPLES = 30_000
THETA = math.pi / 100


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project(range(3))
    return {n: full.subset(range(n)) for n in SIZES}


def _top10(ds, seed):
    cone = Cone(np.ones(3), THETA)
    engine = GetNextMD(
        ds, region=cone, n_samples=N_SAMPLES, rng=np.random.default_rng(seed)
    )
    out = []
    try:
        for _ in range(10):
            out.append(engine.get_next())
    except ExhaustedError:
        pass
    return out


@pytest.mark.parametrize("n", SIZES)
def test_fig13_getnextmd_top10(benchmark, catalogs, n):
    results = benchmark.pedantic(
        _top10, args=(catalogs[n], n), rounds=1, iterations=1
    )
    stabilities = [round(r.stability, 4) for r in results]
    report(benchmark, n=n, n_returned=len(results), stabilities=stabilities)
    assert len(results) >= 1
    # Returned in decreasing stability.
    assert all(a >= b for a, b in zip(stabilities, stabilities[1:]))
