"""Ablation — exact 2D top-k sweep vs the randomized operator.

Section 4.5.1 handles top-k questions with the Monte-Carlo operator
because the arrangement method cannot tell which regions share a top-k.
In two dimensions the kinetic sweep solves the problem exactly
(:mod:`repro.core.twod_topk`), which yields a free end-to-end check of
the randomized operator: its estimated stabilities must converge on the
sweep's exact values, at the paper's O(N n log n) sampling cost versus
the sweep's O(n^2 log n) one-off cost.

Reported series: exact vs estimated stability of the most stable top-k
set, the estimation error at each budget, and the budget at which the
randomized operator identifies the same winning set.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Dataset, GetNextRandomized
from repro.core.twod_topk import enumerate_topk_2d

N_ITEMS = (200, 800)
K = 10
BUDGETS = (500, 2_000, 8_000)

_CATALOGS: dict[int, Dataset] = {}
_EXACT: dict[int, list] = {}


def _catalog(n: int) -> Dataset:
    if n not in _CATALOGS:
        from repro.datasets import bluenile_dataset

        rng = np.random.default_rng(20181218)
        _CATALOGS[n] = bluenile_dataset(n, rng).project([0, 1])
    return _CATALOGS[n]


def _exact(n: int) -> list:
    if n not in _EXACT:
        _EXACT[n] = enumerate_topk_2d(_catalog(n), K, kind="set")
    return _EXACT[n]


@pytest.mark.parametrize("n", N_ITEMS)
def test_exact_sweep(benchmark, n):
    dataset = _catalog(n)

    results = benchmark.pedantic(
        enumerate_topk_2d, args=(dataset, K), kwargs={"kind": "set"},
        rounds=2, iterations=1,
    )
    report(
        benchmark,
        n=n,
        engine="exact-sweep",
        n_feasible_sets=len(results),
        top_stability=f"{results[0].stability:.4f}",
    )
    assert abs(sum(r.stability for r in results) - 1.0) < 1e-9


@pytest.mark.parametrize("n", N_ITEMS)
@pytest.mark.parametrize("budget", BUDGETS)
def test_randomized_estimate_converges(benchmark, n, budget):
    dataset = _catalog(n)
    exact_top = _exact(n)[0]

    def run():
        rng = np.random.default_rng(7)
        engine = GetNextRandomized(dataset, kind="topk_set", k=K, rng=rng)
        return engine.get_next(budget=budget)

    estimate = benchmark.pedantic(run, rounds=3, iterations=1)
    err = abs(estimate.stability - exact_top.stability)
    same_winner = estimate.top_k_set == exact_top.top_k_set
    report(
        benchmark,
        n=n,
        budget=budget,
        engine="randomized",
        exact=f"{exact_top.stability:.4f}",
        estimated=f"{estimate.stability:.4f}",
        abs_error=f"{err:.4f}",
        same_winner=same_winner,
    )
    # The estimate must be statistically compatible with the exact value
    # (generous bound: five binomial standard errors + resolution).
    sigma = max(
        (exact_top.stability * (1 - exact_top.stability) / budget) ** 0.5, 1e-3
    )
    if same_winner:
        assert err <= 5.0 * sigma + 1.0 / budget
