"""Ablation — passThrough: sample partition (§5.4) vs linear programming.

Algorithm 6 must decide whether a hyperplane cuts a region.  The paper
offers two implementations: an LP feasibility test per side, or the
sample-partition trick that reuses the stability samples.  This
benchmark measures both on the same sequence of (region, hyperplane)
queries and checks they agree wherever the sample evidence is decisive.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.geometry.arrangement import Arrangement
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.sampling.uniform import sample_orthant

DIM = 3
N_HYPERPLANES = 30
N_SAMPLES = 20_000


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    hyperplanes = rng.normal(size=(N_HYPERPLANES, DIM))
    samples = sample_orthant(DIM, N_SAMPLES, rng)
    # A region: the intersection of two fixed halfspaces.
    region = ConvexCone(
        [Halfspace(tuple(hyperplanes[0]), +1), Halfspace(tuple(hyperplanes[1]), -1)]
    )
    return hyperplanes, samples, region


def test_ablation_passthrough_partition(benchmark, workload):
    hyperplanes, samples, region = workload

    def partition_based():
        arr = Arrangement(hyperplanes, samples.copy())
        root = arr.root_region()
        left, right = arr.partition(root, 0)
        target = next(r for r in (left, right) if r.cone.contains(np.ones(DIM)))
        hits = []
        for k in range(2, N_HYPERPLANES):
            block = arr.samples[target.sample_begin : target.sample_end]
            side = block @ arr.hyperplanes[k] > 0
            hits.append(bool(side.any() and (~side).any()))
        return hits

    hits = benchmark.pedantic(partition_based, rounds=3, iterations=1)
    report(benchmark, n_intersecting=sum(hits))


def test_ablation_passthrough_lp(benchmark, workload):
    hyperplanes, _, region = workload

    def lp_based():
        return [
            region.intersects_hyperplane(hyperplanes[k])
            for k in range(2, N_HYPERPLANES)
        ]

    hits = benchmark.pedantic(lp_based, rounds=3, iterations=1)
    report(benchmark, n_intersecting=sum(hits))


def test_ablation_methods_agree(benchmark, workload):
    hyperplanes, samples, region = workload

    def compare():
        inside = region.contains_all(samples)
        block = samples[inside]
        agree = 0
        decisive = 0
        for k in range(2, N_HYPERPLANES):
            side = block @ hyperplanes[k] > 0
            sample_says = bool(side.any() and (~side).any())
            lp_says = region.intersects_hyperplane(hyperplanes[k])
            # The sample test can only miss (false negative on thin
            # slivers), never invent an intersection.
            if sample_says:
                decisive += 1
                agree += int(lp_says)
        return agree, decisive

    agree, decisive = benchmark.pedantic(compare, rounds=1, iterations=1)
    report(benchmark, agreements=agree, decisive_cases=decisive)
    assert agree == decisive
