"""Process-pool acceptance benchmark: throughput, fidelity, latency.

Three claims back ``repro.service.procpool`` + the ``ObserveExecutor``:

1. **Cold-observe throughput** — growing a cold Monte-Carlo pool at
   ``n >= 100_000`` through the persistent shared-memory process pool
   runs at **>= 2.5x** the thread-pool observer on hosts with >= 4
   cores, because the byte-pack / ``np.unique`` / fold tail that the
   GIL serializes under threads runs fully parallel out-of-process.
2. **Fidelity** — the process-pool tally is **byte-identical** to the
   thread-pool and serial tallies: same counts, totals, first-seen
   tie-break order, and rng stream.  Asserted on every host, every
   mode — the floors are conditional, correctness is not.
3. **Off-loop reads** — a TCP server whose sessions observe on the
   process pool answers warm reads under a concurrent cold observe at
   **<= 0.5x** the p50 latency of the thread-executor server (the
   PR-4 baseline), because the observe no longer contends for the GIL
   with the event loop and the read dispatches.

Perf floors are asserted at full size on hosts with >= 4 effective
cores (below that there is nothing to parallelize over); fidelity and
the shared-memory leak invariant are asserted everywhere.  Every run —
smoke or full, capable host or not — emits a machine-readable
``BENCH_procpool.json`` so the perf trajectory is tracked from here on.

Run: ``python benchmarks/bench_procpool.py [--smoke] [--json PATH]``.
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time

import numpy as np

from repro import Dataset
from repro.core.randomized import GetNextRandomized
from repro.server import ServeClient, ServerConfig, SessionRegistry, serve_in_thread
from repro.service.parallel import default_workers, parallel_observe
from repro.service.procpool import ProcessObserveEngine, live_segments

N_ITEMS = 100_000
N_ITEMS_SMOKE = 20_000
K = 10
BUDGET = 6_000
BUDGET_SMOKE = 1_500
SERVER_COLD_N = 30_000
SERVER_COLD_N_SMOKE = 8_000
SERVER_COLD_BUDGET = 40_000
SERVER_COLD_BUDGET_SMOKE = 10_000
MIN_PROCESS_SPEEDUP = 2.5
MAX_READ_P50_RATIO = 0.5
MIN_FLOOR_CORES = 4
SEED = 20180905
JSON_PATH = "BENCH_procpool.json"


def _operator(dataset: Dataset, seed: int) -> GetNextRandomized:
    return GetNextRandomized(
        dataset,
        kind="topk_set",
        k=K,
        rng=np.random.default_rng([seed, 7]),
    )


def _assert_identical(a: GetNextRandomized, b: GetNextRandomized) -> None:
    assert b.total_samples == a.total_samples, "totals diverged"
    assert b.tally.counts == a.tally.counts, "tally counts diverged"
    assert b.tally._first_seen == a.tally._first_seen, "first-seen diverged"
    assert (
        b.rng.bit_generator.state == a.rng.bit_generator.state
    ), "rng streams diverged"


def _cold_observe(n_items: int, budget: int, workers: int) -> dict:
    """Thread pool vs process pool on one cold pass; byte-exact check."""
    dataset = Dataset(
        np.random.default_rng(SEED).uniform(size=(n_items, 4))
    )
    threaded = _operator(dataset, 1)
    proc = _operator(dataset, 1)

    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        start = time.perf_counter()
        parallel_observe(threaded, budget, executor=pool, force=True)
        thread_s = time.perf_counter() - start
    with ProcessObserveEngine(dataset, max_workers=workers) as engine:
        engine.warm_up()  # persistent-pool premise: workers pre-started
        start = time.perf_counter()
        chunks = engine.observe(proc, budget, force=True)
        process_s = time.perf_counter() - start
    assert chunks > 0, "process path did not shard"
    _assert_identical(threaded, proc)
    return {
        "n_items": n_items,
        "budget": budget,
        "workers": workers,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "speedup": thread_s / process_s if process_s > 0 else float("inf"),
    }


def _read_p50_under_cold_observe(
    executor: str, cold_n: int, cold_budget: int, workers: int
) -> float:
    """p50 warm-read latency while one cold observe holds a write lock."""
    cold = Dataset(np.random.default_rng(SEED + 2).uniform(size=(cold_n, 4)))
    warm = Dataset(np.random.default_rng(SEED + 3).uniform(size=(200, 3)))
    registry = SessionRegistry(
        seed=SEED, executor=executor, max_workers=workers
    )
    registry.add_dataset("warm", warm)
    registry.add_dataset("cold", cold)
    handle = serve_in_thread(registry, config=ServerConfig())
    warm_read = {
        "op": "top_stable", "m": 2, "kind": "topk_set", "k": 5,
        "backend": "randomized", "budget": 500, "dataset": "warm",
    }
    cold_write = {
        "op": "top_stable", "m": 2, "kind": "topk_set", "k": K,
        "backend": "randomized", "budget": cold_budget, "dataset": "cold",
    }
    try:
        with ServeClient(host=handle.host, port=handle.port) as reader:
            assert reader.request(dict(warm_read))["ok"] is True  # warm it
            done = threading.Event()
            failures: list = []

            def writer() -> None:
                try:
                    with ServeClient(host=handle.host, port=handle.port) as w:
                        response = w.request(dict(cold_write))
                        if response.get("ok") is not True:
                            failures.append(response)
                finally:
                    done.set()

            thread = threading.Thread(target=writer)
            thread.start()
            latencies: list[float] = []
            while not done.is_set() and len(latencies) < 2_000:
                start = time.perf_counter()
                response = reader.request(dict(warm_read))
                elapsed = time.perf_counter() - start
                assert response["ok"] is True, response
                if not done.is_set():
                    latencies.append(elapsed)
            thread.join(timeout=600)
            assert not failures, failures
    finally:
        handle.stop()
    # A write that finished before any read completed leaves no sample;
    # report the (unloaded) floor rather than crashing the bench.
    if not latencies:
        return 0.0
    return statistics.median(latencies)


def _stage_breakdown(n_items: int, budget: int, workers: int) -> dict:
    """Cold process-pool observe under a trace: shared ``"stages"`` schema."""
    from repro import obs

    dataset = Dataset(
        np.random.default_rng(SEED + 5).uniform(size=(n_items, 4))
    )
    op = _operator(dataset, 9)
    with ProcessObserveEngine(dataset, max_workers=workers) as engine:
        engine.warm_up()
        with obs.trace("bench.procpool_observe") as t:
            engine.observe(op, budget, force=True)
    return obs.stage_report(t)


def run(*, smoke: bool = False, verbose: bool = True) -> dict:
    n_items = N_ITEMS_SMOKE if smoke else N_ITEMS
    budget = BUDGET_SMOKE if smoke else BUDGET
    cold_n = SERVER_COLD_N_SMOKE if smoke else SERVER_COLD_N
    cold_budget = SERVER_COLD_BUDGET_SMOKE if smoke else SERVER_COLD_BUDGET
    workers = max(default_workers(), 2)
    cores = default_workers() + 1  # the observer thread counts too
    floors_armed = not smoke and cores >= MIN_FLOOR_CORES

    observe = _cold_observe(n_items, budget, workers)
    p50_thread = _read_p50_under_cold_observe(
        "thread", cold_n, cold_budget, workers
    )
    p50_process = _read_p50_under_cold_observe(
        "process", cold_n, cold_budget, workers
    )
    # A 0.0 p50 means that measurement collected no mid-write samples
    # (the cold observe finished before any read completed); comparing
    # against it would make the ratio 0 or inf on machine noise, so the
    # read floor only arms when both sides actually measured load.
    read_measured = p50_thread > 0.0 and p50_process > 0.0
    read_ratio = p50_process / p50_thread if read_measured else 0.0
    stages = _stage_breakdown(n_items, budget, workers)
    assert live_segments() == (), "benchmark leaked shared-memory segments"

    metrics = {
        "stages": stages,
        "mode": "smoke" if smoke else "full",
        "effective_cores": cores,
        "workers": workers,
        "cold_observe": observe,
        "server_read_p50_thread_seconds": p50_thread,
        "server_read_p50_process_seconds": p50_process,
        "server_read_p50_ratio": read_ratio,
        "server_read_p50_measured": read_measured,
        "tallies_byte_identical": True,
        "shared_memory_leaks": 0,
        "floors": [
            {
                "name": "process_vs_thread_cold_observe_speedup",
                "value": observe["speedup"],
                "floor": MIN_PROCESS_SPEEDUP,
                "comparator": ">=",
                "asserted": floors_armed,
                "passed": observe["speedup"] >= MIN_PROCESS_SPEEDUP,
            },
            {
                "name": "server_read_p50_process_over_thread",
                "value": read_ratio,
                "floor": MAX_READ_P50_RATIO,
                "comparator": "<=",
                "asserted": floors_armed and read_measured,
                "passed": read_measured and read_ratio <= MAX_READ_P50_RATIO,
            },
        ],
    }
    if verbose:
        print(
            f"  [{metrics['mode']}] n={observe['n_items']} k={K} "
            f"budget={observe['budget']} workers={workers} cores~{cores}"
        )
        print(
            f"  cold observe: thread {observe['thread_seconds'] * 1000:8.1f} ms"
            f"   process {observe['process_seconds'] * 1000:8.1f} ms   "
            f"speedup {observe['speedup']:5.2f}x "
            f"(floor {MIN_PROCESS_SPEEDUP}x on >= {MIN_FLOOR_CORES} cores); "
            f"tallies byte-identical"
        )
        print(
            f"  server read p50 under cold observe: "
            f"thread-executor {p50_thread * 1000:8.2f} ms   "
            f"process-executor {p50_process * 1000:8.2f} ms   "
            f"ratio {read_ratio:5.2f} (ceiling {MAX_READ_P50_RATIO})"
        )
        if not floors_armed:
            why = "smoke mode" if smoke else f"only ~{cores} cores"
            print(f"  perf floors reported, not asserted ({why})")
    return metrics


def check_floors(metrics: dict) -> list[str]:
    """Armed floors that failed (empty == pass)."""
    return [
        f"{floor['name']}: {floor['value']:.3f} vs floor {floor['floor']}"
        for floor in metrics["floors"]
        if floor["asserted"] and not floor["passed"]
    ]


def test_cold_observe_byte_identical():
    observe = _cold_observe(N_ITEMS_SMOKE, BUDGET_SMOKE, 2)
    assert observe["speedup"] > 0


def test_smoke_metrics_structure():
    # Smoke mode never arms the perf floors (by design — smoke sizes
    # measure overhead, not throughput); what it must guarantee is the
    # fidelity assertions ran and the JSON payload is shaped for the
    # trajectory tooling.
    metrics = run(smoke=True, verbose=False)
    assert metrics["tallies_byte_identical"] is True
    assert metrics["shared_memory_leaks"] == 0
    names = {floor["name"] for floor in metrics["floors"]}
    assert names == {
        "process_vs_thread_cold_observe_speedup",
        "server_read_p50_process_over_thread",
    }
    assert all(not floor["asserted"] for floor in metrics["floors"])
    assert check_floors(metrics) == []


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    json_path = JSON_PATH
    if "--json" in sys.argv:
        json_path = sys.argv[sys.argv.index("--json") + 1]
    metrics = run(smoke=smoke, verbose=True)
    with open(json_path, "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {json_path}")
    failed = check_floors(metrics)
    for line in failed:
        print(f"  FLOOR REGRESSION: {line}", file=sys.stderr)
    raise SystemExit(1 if failed else 0)
