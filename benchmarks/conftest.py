"""Shared helpers for the figure-reproduction benchmarks.

Every module in this directory regenerates one figure of the paper's
evaluation (section 6).  Conventions:

- benchmark functions are parametrised over the figure's x-axis
  (dataset size n, dimensionality d, cone width theta, ...);
- the measured operation is the figure's y-axis time where the figure
  reports time; figures that report stability series compute the series
  inside the benchmarked callable and assert the paper's qualitative
  shape (who wins, what trends up or down);
- series values are attached to ``benchmark.extra_info`` so they appear
  in the saved benchmark JSON, and printed (visible with ``-s``).

Sizes are scaled down from the paper where the original would take
hours in pure Python; DESIGN.md section 4 records the mapping.
"""

from __future__ import annotations

import numpy as np
import pytest


def report(benchmark, **series) -> None:
    """Attach a result series to the benchmark record and print it."""
    for key, value in series.items():
        benchmark.extra_info[key] = value
    rows = ", ".join(f"{k}={v}" for k, v in series.items())
    print(f"\n  [{benchmark.name}] {rows}")


@pytest.fixture
def rng_factory():
    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
