"""Ablation — stability-oracle sample budget vs estimation accuracy.

The MD algorithms are Monte-Carlo throughout; the knob is the pool size.
This ablation compares the oracle's estimate of 2D ranking stabilities
(where SV2D gives the exact answer) across pool sizes, confirming the
~1/sqrt(N) error contraction that justifies the paper's budgets
(10K-1M samples depending on the experiment).
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Dataset, GetNext2D, ranking_region_md
from repro.sampling.oracle import StabilityOracle
from repro.sampling.uniform import sample_orthant

POOLS = [1_000, 10_000, 100_000]

_errors: dict[int, float] = {}


@pytest.fixture(scope="module")
def exact_landscape():
    ds = Dataset(np.random.default_rng(51).uniform(size=(10, 2)))
    results = list(GetNext2D(ds))
    return ds, results


@pytest.mark.parametrize("pool", POOLS)
def test_ablation_oracle_accuracy(benchmark, exact_landscape, pool):
    ds, exact = exact_landscape
    rng = np.random.default_rng(pool)

    def estimate_all():
        oracle = StabilityOracle(sample_orthant(2, pool, rng))
        worst = 0.0
        for res in exact:
            cone = ranking_region_md(ds, res.ranking)
            worst = max(worst, abs(oracle.stability(cone) - res.stability))
        return worst

    worst_error = benchmark.pedantic(estimate_all, rounds=1, iterations=1)
    _errors[pool] = worst_error
    report(benchmark, pool=pool, worst_abs_error=round(worst_error, 5))
    # Error shrinks with the pool (1/sqrt law, generous tolerance).
    if len(_errors) == len(POOLS):
        assert _errors[POOLS[-1]] < _errors[POOLS[0]]
        assert _errors[POOLS[-1]] < 0.01
