"""Load-generator acceptance benchmark: record, replay, stay flat.

Three claims back the ``repro.loadgen`` subsystem:

1. **Replay equivalence** — a Zipf-skewed, bursty, churning workload
   recorded against a live server replays against a *fresh* server of
   the same build with **zero** answer mismatches (exact per-request
   for idempotent ops, per-config multisets for ``get_next``).
2. **Resource flatness** — a short soak (the CI job runs the full
   60-second version) ends with RSS within its growth limit and
   ``repro_shm_segments == 0``, asserted from the live ``/metrics``
   scrape.
3. **Harness throughput** — the generator + trace layer itself is not
   the bottleneck: the recorded run sustains a positive request rate
   and every request receives exactly one response.

Runs standalone (``python benchmarks/bench_loadgen.py [--smoke]``) or
under pytest.  ``--smoke`` shrinks the request count and soak length
for CI wall-clock; the invariants are identical in both modes.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.loadgen import WorkloadSpec, generate_plan, replay_trace, run_load
from repro.loadgen.soak import run_soak

SEED = 20180905


def _spec(smoke: bool) -> WorkloadSpec:
    return WorkloadSpec(
        seed=SEED,
        requests=150 if smoke else 600,
        connections=8,
        arrival_rate=900.0,
        burstiness=4.0,
        churn=0.08,
        pipeline=0.3,
        n_configs=8,
        config_skew=1.2,
        dataset_items=300,
    )


def run(*, smoke: bool = False, verbose: bool = True) -> dict:
    spec = _spec(smoke)
    plan = generate_plan(spec)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bench.jsonl"
        recorded = run_load(plan, trace_path=trace_path)
        replay = replay_trace(trace_path)

    soak = run_soak(
        seconds=2.0 if smoke else 8.0,
        connections=8 if smoke else 16,
        seed=SEED,
    )

    record_rate = recorded.requests / max(recorded.elapsed, 1e-9)
    comparison = replay.comparison
    if verbose:
        mode = "smoke" if smoke else "full"
        print(
            f"  [{mode}] {spec.requests} requests x {spec.connections} "
            f"connections, {spec.n_configs} configs (zipf "
            f"{spec.config_skew}), churn {spec.churn:.0%}"
        )
        print(
            f"  record {recorded.elapsed * 1000:8.1f} ms "
            f"({record_rate:7.1f} req/s, {recorded.ok} ok, "
            f"{recorded.reconnects} reconnects)"
        )
        print(
            f"  replay: {comparison.compared} compared exact/multiset, "
            f"{comparison.skipped_loose} loose, "
            f"{comparison.skipped_load_dependent} load-dependent, "
            f"{len(comparison.mismatches)} mismatches"
        )
        print(
            f"  soak {soak.seconds:.0f}s x {soak.connections} conns: "
            f"{soak.requests} requests, rss {soak.rss_growth:+.1%}, "
            f"shm {soak.shm_segments:.0f}, "
            f"{'PASS' if soak.passed else 'FAIL'}"
        )
    return {
        "requests": float(recorded.requests),
        "record_rate": record_rate,
        "replay_compared": float(comparison.compared),
        "replay_mismatches": float(len(comparison.mismatches)),
        "soak_rss_growth": soak.rss_growth,
        "soak_shm_segments": soak.shm_segments,
        "soak_passed": float(soak.passed),
        "smoke": float(smoke),
    }


def test_record_replay_and_soak_floors():
    metrics = run(smoke=True, verbose=True)
    assert metrics["replay_mismatches"] == 0
    assert metrics["soak_passed"] == 1.0
    assert metrics["record_rate"] > 0


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    metrics = run(smoke=smoke, verbose=True)
    floors = [
        ("replay_mismatches", metrics["replay_mismatches"], 0.0,
         metrics["replay_mismatches"] == 0.0),
        ("soak_shm_segments", metrics["soak_shm_segments"], 0.0,
         metrics["soak_shm_segments"] == 0.0),
        ("soak_passed", metrics["soak_passed"], 1.0,
         metrics["soak_passed"] == 1.0),
        ("record_rate", metrics["record_rate"], 0.0,
         metrics["record_rate"] > 0.0),
    ]
    metrics["floors"] = [
        {"name": name, "value": value, "floor": floor, "passed": passed}
        for name, value, floor, passed in floors
    ]
    with open("BENCH_loadgen.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    failed = [entry for entry in metrics["floors"] if not entry["passed"]]
    for entry in failed:
        print(
            f"  FLOOR REGRESSION: {entry['name']}: {entry['value']:.4f} "
            f"vs floor {entry['floor']}"
        )
    if failed:
        raise SystemExit(1)
