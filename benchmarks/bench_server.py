"""Network front-end acceptance benchmark: concurrency, fidelity, drain.

Three claims back the ``repro.server`` subsystem:

1. **Concurrent throughput** — 8 TCP clients each running a mixed
   warm/cold batch over one ``n = 10_000`` dataset against a shared
   server finish at **>= 3x** the aggregate throughput of sequential
   stdio serving (one *fresh* single-client session per client — the
   pre-server protocol, where Monte-Carlo pools are reachable by
   exactly one process, so every client pays its own cold sampling).
2. **Fidelity** — every response any concurrent client receives is
   **byte-identical** to a serial single-session run of the same
   requests: the session locks serialize pool growth (once, to the
   shared target), so concurrency never changes answers.
3. **Warm rolling restart** — draining the server (the SIGTERM path)
   checkpoints every dirty session; a restarted server answers its
   first query **>= 5x** faster than a cold session computing it from
   scratch (the PR 3 floor, now holding across a server generation).

Runs standalone (``python benchmarks/bench_server.py [--smoke]``) or
under pytest.  ``--smoke`` shrinks budgets for CI wall-clock; the 3x
claim is asserted at full size only (tiny budgets are dominated by
fixed per-request overhead on both sides), fidelity and the restore
floor in both modes.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time

import numpy as np

from repro import Dataset, StabilitySession
from repro.server import (
    ServeClient,
    ServerConfig,
    SessionRegistry,
    serve_in_thread,
)
from repro.server import protocol

N_ITEMS = 10_000
N_ATTRS = 4
K = 10
N_CLIENTS = 8
MIN_SPEEDUP = 3.0
MIN_RESTORE_SPEEDUP = 5.0
SEED = 20180905


def _client_batch(budget: int, prefix: list[int]) -> list[dict]:
    """One client's mixed warm/cold batch (idempotent ops only, so the
    answers of every client are comparable to one serial run)."""
    return [
        {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "top_stable", "m": 3, "kind": "topk_ranked", "k": K,
         "backend": "randomized", "budget": budget},
        {"op": "stability_of", "kind": "full", "ranking": prefix,
         "min_samples": budget},
        {"op": "top_stable", "m": 5, "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},       # warm repeat+
        {"op": "stability_of", "kind": "topk_ranked", "k": K,
         "backend": "randomized", "ranking": prefix, "min_samples": budget},
        {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
         "backend": "randomized", "budget": budget},       # warm repeat
        {"op": "top_stable", "m": 3, "kind": "topk_ranked", "k": K,
         "backend": "randomized", "budget": budget},       # warm repeat
        {"op": "stability_of", "kind": "full", "ranking": prefix[:5],
         "min_samples": budget},                           # prefix fast path
    ]


def _serial_answers(dataset: Dataset, requests: list[dict]) -> list[str]:
    """Ground truth: one session, requests in order, result payloads."""
    answers = []
    with StabilitySession(dataset, seed=SEED, parallel=False) as session:
        for request in requests:
            handled = protocol.dispatch(session, dataset, request)
            assert handled.response["ok"] is True, handled.response
            answers.append(json.dumps(handled.response["result"]))
    return answers


def _sequential_stdio(dataset: Dataset, requests: list[dict]) -> float:
    """The pre-server protocol: clients take turns, each with its own
    fresh single-client session (stdio serve = one session per process;
    no pool is shared across clients)."""
    start = time.perf_counter()
    for _ in range(N_CLIENTS):
        with StabilitySession(dataset, seed=SEED, parallel=False) as session:
            for request in requests:
                handled = protocol.dispatch(session, dataset, request)
                assert handled.response["ok"] is True, handled.response
    return time.perf_counter() - start


def _concurrent_tcp(
    handle, requests: list[dict]
) -> tuple[float, list[list[str]]]:
    """All clients at once against the shared server; returns the wall
    time and every client's result payloads."""
    results: list[list[str] | None] = [None] * N_CLIENTS
    errors: list[Exception] = []
    barrier = threading.Barrier(N_CLIENTS + 1)

    def worker(idx: int) -> None:
        try:
            with ServeClient(host=handle.host, port=handle.port) as client:
                barrier.wait(timeout=60)
                answers = []
                for request in requests:
                    response = client.request(dict(request))
                    assert response["ok"] is True, response
                    answers.append(json.dumps(response["result"]))
                results[idx] = answers
        except Exception as exc:  # surfaced by the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    assert all(answers is not None for answers in results)
    return elapsed, results  # type: ignore[return-value]


def _restart_latency(
    dataset: Dataset, state_dir: str, probe: dict
) -> tuple[float, float]:
    """First-query latency: cold session vs restarted (restored) server."""
    with StabilitySession(dataset, seed=SEED + 1, parallel=False) as cold:
        request = {
            key: value for key, value in probe.items() if key != "op"
        }
        start = time.perf_counter()
        cold.top_stable(request.pop("m"), **request)
        cold_seconds = time.perf_counter() - start
    registry = SessionRegistry(state_dir=state_dir, seed=SEED, parallel=False)
    registry.add_dataset("default", dataset)
    handle = serve_in_thread(registry, config=ServerConfig())
    try:
        with ServeClient(host=handle.host, port=handle.port) as client:
            start = time.perf_counter()
            warm = client.request(dict(probe))
            warm_seconds = time.perf_counter() - start
        assert warm["ok"] is True and warm["cached"] is True, warm
    finally:
        handle.stop()
    return cold_seconds, warm_seconds


def _wire_stage_breakdown(dataset: Dataset, budget: int) -> dict:
    """Cold traced request over TCP: the shared ``"stages"`` schema,
    as echoed back by the server's ``"trace": true`` protocol field."""
    registry = SessionRegistry(seed=SEED + 2, parallel=False)
    registry.add_dataset("default", dataset)
    handle = serve_in_thread(registry, config=ServerConfig())
    try:
        with ServeClient(host=handle.host, port=handle.port) as client:
            response = client.top_stable(
                3, kind="topk_set", k=K, backend="randomized",
                budget=budget, trace=True,
            )
    finally:
        handle.stop()
    assert response["ok"] is True and "trace" in response, response
    stages = dict(response["trace"])
    stages.pop("trace_id", None)
    return stages


def run(*, smoke: bool = False, verbose: bool = True) -> dict:
    budget = 800 if smoke else 4_000
    dataset = Dataset(
        np.random.default_rng(SEED).uniform(size=(N_ITEMS, N_ATTRS))
    )
    # A feasible ranked prefix to verify (from a throwaway warmup pool).
    from repro.core.randomized import GetNextRandomized

    warmup = GetNextRandomized(
        dataset, kind="topk_ranked", k=K, rng=np.random.default_rng(99)
    )
    prefix = list(warmup.get_next(budget=300).ranking.order)
    requests = _client_batch(budget, prefix)

    expected = _serial_answers(dataset, requests)
    t_stdio = _sequential_stdio(dataset, requests)

    with tempfile.TemporaryDirectory() as state_dir:
        registry = SessionRegistry(
            state_dir=state_dir, seed=SEED, parallel=False
        )
        registry.add_dataset("default", dataset)
        handle = serve_in_thread(registry, config=ServerConfig())
        try:
            t_tcp, all_answers = _concurrent_tcp(handle, requests)
            with ServeClient(host=handle.host, port=handle.port) as client:
                pools = client.stats()["stats"]["configs"]
        finally:
            report = handle.stop()
        # Fidelity: every concurrent client == the serial session.
        for answers in all_answers:
            assert answers == expected, "concurrent answers diverged"
        # The shared pools grew exactly once, to the batch target.
        for label, pool in pools.items():
            assert pool["total_samples"] == budget, (label, pool)
        # The drain checkpointed the (dirty) session.
        assert [entry["dataset"] for entry in report] == ["default"]
        cold_s, warm_s = _restart_latency(dataset, state_dir, requests[0])

    speedup = t_stdio / t_tcp if t_tcp > 0 else float("inf")
    restore_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    total_requests = N_CLIENTS * len(requests)
    if verbose:
        mode = "smoke" if smoke else "full"
        print(
            f"  [{mode}] n={N_ITEMS} d={N_ATTRS} k={K} budget={budget}: "
            f"{N_CLIENTS} clients x {len(requests)} mixed requests"
        )
        print(
            f"  sequential stdio {t_stdio * 1000:8.1f} ms "
            f"({total_requests / t_stdio:7.1f} req/s)   "
            f"concurrent tcp {t_tcp * 1000:8.1f} ms "
            f"({total_requests / t_tcp:7.1f} req/s)"
        )
        print(
            f"  aggregate speedup {speedup:5.2f}x "
            f"(floor {MIN_SPEEDUP}x at full size); answers byte-identical "
            f"across {N_CLIENTS} clients"
        )
        print(
            f"  rolling restart: cold first query {cold_s * 1000:8.1f} ms   "
            f"restarted-warm {warm_s * 1000:8.1f} ms   "
            f"speedup {restore_speedup:7.1f}x (floor {MIN_RESTORE_SPEEDUP}x)"
        )
    stages = _wire_stage_breakdown(dataset, budget)
    if verbose:
        print(
            f"  wire stage breakdown: coverage {stages['coverage']:.2%} of "
            f"{stages['total_seconds'] * 1000:.1f} ms cold traced request"
        )
    return {
        "speedup": speedup,
        "restore_speedup": restore_speedup,
        "stdio_seconds": t_stdio,
        "tcp_seconds": t_tcp,
        "smoke": float(smoke),
        "stages": stages,
    }


def test_concurrent_throughput_and_fidelity():
    metrics = run(verbose=True)
    assert metrics["speedup"] >= MIN_SPEEDUP, (
        f"concurrent serving only {metrics['speedup']:.2f}x sequential "
        f"stdio; the server tier requires >= {MIN_SPEEDUP}x"
    )
    assert metrics["restore_speedup"] >= MIN_RESTORE_SPEEDUP, (
        f"warm restart only {metrics['restore_speedup']:.2f}x a cold "
        f"first query; rolling restarts require >= {MIN_RESTORE_SPEEDUP}x"
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    metrics = run(smoke=smoke, verbose=True)
    # Smoke floors fail the job on regression, not only on crashes; the
    # aggregate-throughput claim keeps a relaxed >1x bar at smoke sizes.
    floors = [
        ("restore_speedup", metrics["restore_speedup"], MIN_RESTORE_SPEEDUP,
         metrics["restore_speedup"] >= MIN_RESTORE_SPEEDUP),
        ("concurrent_speedup", metrics["speedup"],
         1.0 if smoke else MIN_SPEEDUP,
         metrics["speedup"] > 1.0 if smoke
         else metrics["speedup"] >= MIN_SPEEDUP),
    ]
    metrics["floors"] = [
        {"name": name, "value": value, "floor": floor, "passed": passed}
        for name, value, floor, passed in floors
    ]
    with open("BENCH_server.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    failed = [entry for entry in metrics["floors"] if not entry["passed"]]
    for entry in failed:
        print(
            f"  FLOOR REGRESSION: {entry['name']}: {entry['value']:.4f} "
            f"vs floor {entry['floor']}",
            file=sys.stderr,
        )
    raise SystemExit(1 if failed else 0)
