"""Engine dispatch + kernel throughput on the randomized observe path.

Acceptance benchmark for the unified ``StabilityEngine``: at
``n = 10_000`` the engine's observe path — fused-key sorting /
partial selection, strict k-skyband pruning, byte-packed tallies —
must beat the seed's per-sample loop (tuple-keyed ``Counter`` and a
per-row Python reduction) by **at least 5×** on the top-k workload the
paper runs at this scale (Figure 16: ranked top-10), with the
full-ranking and top-k-set paths reported alongside.

The k-skyband pruning index is a one-time construction (reported
separately, like the ONION index build); throughput below is the
steady-state observe rate.

Runs standalone (``python benchmarks/bench_engine_dispatch.py``) or
under pytest.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro import Dataset, StabilityEngine
from repro.core.ranking import _top_k_order
from repro.engine import kernel
from repro.operators.skyline import k_skyband

N_ITEMS = 10_000
N_ATTRS = 4
K = 10
MIN_SPEEDUP = 5.0


class _SeedObserver:
    """The seed implementation's observe loop, verbatim in structure:
    chunked scoring, then per-sample Python key extraction into a
    tuple/frozenset-keyed ``Counter``."""

    def __init__(self, dataset, *, kind="full", k=None, scoring_chunk=64):
        self.dataset = dataset
        self.kind = kind
        self.k = k
        self.scoring_chunk = scoring_chunk
        self.counts: Counter = Counter()
        self.total_samples = 0

    def observe(self, weights: np.ndarray) -> None:
        values = self.dataset.values
        for start in range(0, weights.shape[0], self.scoring_chunk):
            block = weights[start : start + self.scoring_chunk]
            scores = block @ values.T
            if self.kind == "full":
                orders = np.argsort(-scores, axis=1, kind="stable")
                for row in orders:
                    self.counts[tuple(row.tolist())] += 1
            elif self.kind == "topk_ranked":
                for srow in scores:
                    self.counts[tuple(_top_k_order(srow, self.k))] += 1
            else:
                for srow in scores:
                    self.counts[frozenset(_top_k_order(srow, self.k))] += 1
            self.total_samples += block.shape[0]


class _KernelObserver:
    """The same tally driven through the engine kernel, with the
    k-skyband candidate index on the top-k paths."""

    def __init__(self, dataset, *, kind="full", k=None, candidates=None):
        self.dataset = dataset
        self.kind = kind
        self.k = k
        key_length = dataset.n_items if kind == "full" else k
        self.tally = kernel.RankingTally(dataset.n_items, key_length)
        self.chunk = kernel.auto_chunk_size(dataset.n_items)
        if candidates is not None and kind != "full":
            self.candidates = candidates
            self.values = np.ascontiguousarray(dataset.values[candidates])
        else:
            self.candidates = None
            self.values = dataset.values

    def observe(self, weights: np.ndarray) -> None:
        for start in range(0, weights.shape[0], self.chunk):
            scores = kernel.score_block(
                self.values, weights[start : start + self.chunk]
            )
            if self.kind == "full":
                rows = kernel.full_ranking_rows(scores)
            else:
                rows = kernel.topk_rows(
                    scores, self.k, ranked=self.kind == "topk_ranked"
                )
                if self.candidates is not None:
                    rows = self.candidates[rows]
            self.tally.observe_rows(rows)


def _throughput(observe, weights: np.ndarray, *, repeats: int = 3) -> float:
    """Best-of-``repeats`` samples/second for one observe callable."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        observe(weights)
        best = min(best, time.perf_counter() - start)
    return weights.shape[0] / best


def run(n_samples: int = 768, *, verbose: bool = True) -> dict[str, float]:
    rng = np.random.default_rng(20180905)
    dataset = Dataset(rng.uniform(size=(N_ITEMS, N_ATTRS)))
    # One shared pre-drawn weight block: the comparison isolates the
    # observe path (scoring + key extraction + tally), not the sampler.
    weights = np.abs(rng.standard_normal((n_samples, N_ATTRS)))
    weights /= np.linalg.norm(weights, axis=1, keepdims=True)

    start = time.perf_counter()
    candidates = k_skyband(dataset.values, K)
    build = time.perf_counter() - start
    if verbose:
        print(
            f"  k-skyband index: {candidates.size}/{N_ITEMS} candidates, "
            f"one-time build {build * 1000:.0f} ms"
        )

    speedups: dict[str, float] = {}
    for kind, k in (("topk_ranked", K), ("topk_set", K), ("full", None)):
        seed_obs = _SeedObserver(dataset, kind=kind, k=k)
        kern_obs = _KernelObserver(dataset, kind=kind, k=k, candidates=candidates)
        seed_rate = _throughput(seed_obs.observe, weights)
        kernel_rate = _throughput(kern_obs.observe, weights)
        # Identical tallies: the kernel path is an optimisation, not an
        # approximation.
        assert sum(seed_obs.counts.values()) > 0
        assert len(kern_obs.tally) == len(
            set(seed_obs.counts)
        ), f"{kind}: key cardinality diverged"
        speedups[kind] = kernel_rate / seed_rate
        if verbose:
            print(
                f"  {kind:<12} n={N_ITEMS}  seed {seed_rate:8.0f}/s  "
                f"kernel {kernel_rate:8.0f}/s  speedup {speedups[kind]:5.1f}x"
            )
    return speedups


def test_engine_dispatch_speedup():
    speedups = run(verbose=True)
    assert speedups["topk_ranked"] >= MIN_SPEEDUP, (
        f"kernel observe path only {speedups['topk_ranked']:.1f}x faster "
        f"than the seed loop at n={N_ITEMS}; the engine requires "
        f">= {MIN_SPEEDUP}x"
    )
    assert speedups["full"] > 2.0, "full-ranking path regressed"


def test_facade_routes_randomized_observe():
    # The public route: StabilityEngine auto-dispatches n=10_000, d=4 to
    # the randomized backend, whose observe loop is the kernel path.
    rng = np.random.default_rng(7)
    dataset = Dataset(rng.uniform(size=(N_ITEMS, N_ATTRS)))
    engine = StabilityEngine(dataset, rng=rng)
    assert engine.backend_name == "randomized"
    result = engine.get_next(budget=512)
    assert 0.0 < result.stability <= 1.0


if __name__ == "__main__":
    print(f"randomized observe path, n={N_ITEMS}, d={N_ATTRS}, k={K}:")
    speedups = run(verbose=True)
    floor = speedups["topk_ranked"]
    print(
        f"top-k ranked observe speedup: {floor:.1f}x "
        f"(acceptance floor {MIN_SPEEDUP}x); "
        f"full-ranking: {speedups['full']:.1f}x, "
        f"top-k set: {speedups['topk_set']:.1f}x"
    )
    raise SystemExit(0 if floor >= MIN_SPEEDUP else 1)
