"""Figure 21 — effect of attribute correlation on top-k stability.

Paper protocol: synthetic independent / correlated / anti-correlated
datasets, 10,000 items, d = 3, theta = pi/50, k = 10, 5,000 samples;
plot the stability of the top-10 stable top-k sets.  Findings: the
correlated dataset has the greatest maximum stability and the steepest
drop across the top-10; independent is lower/flatter; anti-correlated
is the least skewed.

The ordering between correlated and independent is close (both families
produce well-separated tops at n = 10K), so the bench averages each
family over four dataset seeds — single-catalog order statistics are
luck — and asserts the paper's ordering on the means.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import synthetic_dataset

FAMILIES = ["correlated", "independent", "anticorrelated"]
N_ITEMS = 10_000
K = 10
H = 10
SEEDS = (100, 101, 102, 103)

_means: dict[str, tuple[float, float]] = {}


def _top_h(ds, seed):
    cone = Cone(np.ones(3), math.pi / 50)
    engine = GetNextRandomized(
        ds, region=cone, kind="topk_set", k=K, rng=np.random.default_rng(seed)
    )
    return [r.stability for r in engine.top_h(H, budget_first=3000, budget_rest=600)]


@pytest.mark.parametrize("family", FAMILIES)
def test_fig21_correlation_families(benchmark, family):
    def averaged_series():
        tops, drops = [], []
        for seed in SEEDS:
            ds = synthetic_dataset(family, N_ITEMS, 3, np.random.default_rng(seed))
            series = _top_h(ds, seed)
            tops.append(series[0])
            drops.append(series[0] - series[-1])
        return float(np.mean(tops)), float(np.mean(drops))

    top1, drop = benchmark.pedantic(averaged_series, rounds=1, iterations=1)
    _means[family] = (top1, drop)
    report(benchmark, family=family, mean_top1=round(top1, 4), mean_drop=round(drop, 4))
    assert top1 > 0.0
    if len(_means) == len(FAMILIES):
        corr, ind, anti = (
            _means["correlated"],
            _means["independent"],
            _means["anticorrelated"],
        )
        # "the correlated dataset results in the greatest maximum
        # stability"; independent "slightly lower"; anti-correlated least.
        assert corr[0] > ind[0] > anti[0]
        # "...but also has the steepest slope as we descend from the
        # most-stable to the 10th-most-stable top-k set"; anti-correlated
        # "displays the least skew".
        assert corr[1] > anti[1]
