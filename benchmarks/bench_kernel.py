"""Kernel-backend acceptance benchmark: reduction speed, QMC sample savings.

Two claims back ``repro.engine.kernels`` + the precision machinery:

1. **Compiled reduction throughput** — the ``numba`` backend runs the
   chunk reduction (score block -> per-row exact top-k -> pack ->
   ``np.unique``) at **>= 3x** the numpy reference at
   ``n >= 100_000`` items, because the jitted selection streams each
   row once in parallel instead of paying the fused-key sort.  The
   floor arms only where numba is importable (the numpy fallback is
   the *reference*, not a regression); parity — identical packed keys,
   counts, and row totals — is asserted on every host where both
   backends run.
2. **Quasi-MC sample savings** — randomised Halton points reach a fixed
   empirical RMS error on a known cap-volume target with **<= 0.5x**
   the samples plain MC needs (extending
   ``bench_ablation_quasi_mc.py``'s fixed-budget comparison to a
   samples-to-precision ladder — the quantity the ``"ci:..."`` budget
   controller actually spends).

Every run — smoke or full, with or without numba — emits a
machine-readable ``BENCH_kernel.json`` so the perf trajectory is
tracked from here on.

Run: ``python benchmarks/bench_kernel.py [--smoke] [--json PATH]``.
"""

from __future__ import annotations

import json
import math
import sys
import time

import numpy as np

from repro.engine import kernel, kernels
from repro.geometry.spherical import cap_area
from repro.sampling.cap import sample_cap
from repro.sampling.quasi import quasi_cap_points

N_ITEMS = 100_000
N_ITEMS_SMOKE = 5_000
K = 10
CHUNK = 512
N_CHUNKS = 8
N_CHUNKS_SMOKE = 3
MIN_COMPILED_SPEEDUP = 3.0
MAX_QMC_SAMPLE_RATIO = 0.5
QMC_TARGET_RMSE = 0.01
QMC_TARGET_RMSE_SMOKE = 0.03
QMC_LADDER = (125, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000)
QMC_LADDER_SMOKE = (125, 250, 500, 1_000)
QMC_REPLICATIONS = 16
QMC_DIM = 3
QMC_THETA = 0.3
SEED = 20180905
JSON_PATH = "BENCH_kernel.json"


def _chunk_workload(n_items: int, n_chunks: int):
    """Pre-sampled values + weight chunks, so timing sees only reduction."""
    rng = np.random.default_rng(SEED)
    values = rng.uniform(0.05, 1.0, size=(n_items, 4))
    chunks = [
        np.abs(rng.standard_normal((CHUNK, 4))) + 1e-9
        for _ in range(n_chunks)
    ]
    return values, chunks


def _time_reduction(backend, values, chunks) -> tuple[float, list]:
    """Seconds for one full pass over ``chunks``; returns mini-tallies."""
    dtype = kernel.key_dtype_for(values.shape[0])
    out = np.empty((CHUNK, values.shape[0]))
    results = []
    start = time.perf_counter()
    for weights in chunks:
        results.append(
            backend.reduce_chunk(
                values, weights, kind="topk_set", k=K, key_dtype=dtype, out=out
            )
        )
    return time.perf_counter() - start, results


def _assert_chunk_parity(a: list, b: list) -> None:
    assert len(a) == len(b)
    for (ka, fa, na), (kb, fb, nb) in zip(a, b):
        assert np.array_equal(ka, kb), "packed keys diverged"
        assert np.array_equal(fa, fb), "counts diverged"
        assert na == nb, "row totals diverged"


def _reduction_benchmark(n_items: int, n_chunks: int) -> dict:
    """numpy vs numba on identical chunks; byte parity where both run."""
    values, chunks = _chunk_workload(n_items, n_chunks)
    numpy_backend = kernels.get_kernel("numpy")
    # Untimed warm-up pass (BLAS thread spin-up, page faults).
    _, reference = _time_reduction(numpy_backend, values, chunks)
    numpy_seconds, reference = _time_reduction(numpy_backend, values, chunks)

    numba_available = kernels.available_kernels().get("numba", False)
    numba_seconds = 0.0
    speedup = 0.0
    if numba_available:
        numba_backend = kernels.get_kernel("numba")
        # First call compiles; time the steady state.
        _, jitted = _time_reduction(numba_backend, values, chunks)
        _assert_chunk_parity(reference, jitted)
        numba_seconds, jitted = _time_reduction(numba_backend, values, chunks)
        _assert_chunk_parity(reference, jitted)
        speedup = numpy_seconds / numba_seconds if numba_seconds > 0 else 0.0
    return {
        "n_items": n_items,
        "k": K,
        "chunk": CHUNK,
        "chunks": n_chunks,
        "numpy_seconds": numpy_seconds,
        "numba_available": numba_available,
        "numba_seconds": numba_seconds,
        "speedup": speedup,
    }


def _qmc_truth() -> float:
    inner = QMC_THETA / math.e
    return cap_area(QMC_DIM, inner) / cap_area(QMC_DIM, QMC_THETA)


def _rmse(sampler: str, budget: int) -> float:
    axis = np.full(QMC_DIM, 1.0 / math.sqrt(QMC_DIM))
    threshold = math.cos(QMC_THETA / math.e)
    truth = _qmc_truth()
    errors = []
    for rep in range(QMC_REPLICATIONS):
        rng = np.random.default_rng([SEED, rep, budget])
        if sampler == "mc":
            points = sample_cap(axis, QMC_THETA, budget, rng)
        else:
            points = quasi_cap_points(axis, QMC_THETA, budget, rng=rng)
        errors.append(float(np.mean(points @ axis >= threshold)) - truth)
    return float(np.sqrt(np.mean(np.square(errors))))


def _samples_to_width(sampler: str, target: float, ladder) -> int:
    """Smallest ladder budget whose empirical RMSE meets ``target``
    (0 when even the top rung misses — the ratio then stays unmeasured
    rather than lying)."""
    for budget in ladder:
        if _rmse(sampler, budget) <= target:
            return budget
    return 0


def _qmc_benchmark(smoke: bool) -> dict:
    target = QMC_TARGET_RMSE_SMOKE if smoke else QMC_TARGET_RMSE
    ladder = QMC_LADDER_SMOKE if smoke else QMC_LADDER
    mc_samples = _samples_to_width("mc", target, ladder)
    qmc_samples = _samples_to_width("qmc", target, ladder)
    measured = mc_samples > 0 and qmc_samples > 0
    return {
        "target_rmse": target,
        "ladder": list(ladder),
        "replications": QMC_REPLICATIONS,
        "mc_samples_to_width": mc_samples,
        "qmc_samples_to_width": qmc_samples,
        "measured": measured,
        "ratio": qmc_samples / mc_samples if measured else 0.0,
    }


def _stage_breakdown(n_items: int, n_chunks: int) -> dict:
    """Cold serial observe under a trace: the shared ``"stages"``
    schema, with per-chunk sample/reduce/fold timings aggregated."""
    from repro import obs
    from repro.core.dataset import Dataset
    from repro.core.randomized import GetNextRandomized

    dataset = Dataset(
        np.random.default_rng(SEED + 1).uniform(0.05, 1.0, size=(n_items, 4))
    )
    op = GetNextRandomized(
        dataset, kind="topk_set", k=K, rng=np.random.default_rng(3)
    )
    with obs.trace("bench.kernel_observe") as t:
        op.observe(n_chunks * CHUNK)
    return obs.stage_report(t)


def run(*, smoke: bool = False, verbose: bool = True) -> dict:
    n_items = N_ITEMS_SMOKE if smoke else N_ITEMS
    n_chunks = N_CHUNKS_SMOKE if smoke else N_CHUNKS
    reduction = _reduction_benchmark(n_items, n_chunks)
    qmc = _qmc_benchmark(smoke)
    speed_armed = not smoke and reduction["numba_available"]
    qmc_armed = not smoke and qmc["measured"]
    metrics = {
        "mode": "smoke" if smoke else "full",
        "stages": _stage_breakdown(n_items, n_chunks),
        "kernels": kernels.available_kernels(),
        "reduction": reduction,
        "qmc": qmc,
        "tallies_byte_identical": True,
        "floors": [
            {
                "name": "numba_vs_numpy_reduction_speedup",
                "value": reduction["speedup"],
                "floor": MIN_COMPILED_SPEEDUP,
                "comparator": ">=",
                "asserted": speed_armed,
                "passed": reduction["speedup"] >= MIN_COMPILED_SPEEDUP,
            },
            {
                "name": "qmc_vs_mc_samples_to_width_ratio",
                "value": qmc["ratio"],
                "floor": MAX_QMC_SAMPLE_RATIO,
                "comparator": "<=",
                "asserted": qmc_armed,
                "passed": qmc["measured"]
                and qmc["ratio"] <= MAX_QMC_SAMPLE_RATIO,
            },
        ],
    }
    if verbose:
        print(
            f"  [{metrics['mode']}] reduction n={n_items} k={K} "
            f"chunk={CHUNK}x{n_chunks}"
        )
        if reduction["numba_available"]:
            print(
                f"  numpy {reduction['numpy_seconds'] * 1000:8.1f} ms   "
                f"numba {reduction['numba_seconds'] * 1000:8.1f} ms   "
                f"speedup {reduction['speedup']:5.2f}x "
                f"(floor {MIN_COMPILED_SPEEDUP}x); tallies byte-identical"
            )
        else:
            print(
                f"  numpy {reduction['numpy_seconds'] * 1000:8.1f} ms   "
                "numba not installed: speedup reported as 0, floor not armed"
            )
        print(
            f"  samples to rmse<={qmc['target_rmse']}: "
            f"mc {qmc['mc_samples_to_width']}   "
            f"qmc {qmc['qmc_samples_to_width']}   "
            f"ratio {qmc['ratio']:4.2f} (ceiling {MAX_QMC_SAMPLE_RATIO})"
        )
        if not (speed_armed and qmc_armed):
            print("  unarmed floors are reported, not asserted")
    return metrics


def check_floors(metrics: dict) -> list[str]:
    """Armed floors that failed (empty == pass)."""
    return [
        f"{floor['name']}: {floor['value']:.3f} vs floor {floor['floor']}"
        for floor in metrics["floors"]
        if floor["asserted"] and not floor["passed"]
    ]


def test_reduction_parity_and_structure():
    reduction = _reduction_benchmark(N_ITEMS_SMOKE, 2)
    assert reduction["numpy_seconds"] > 0
    if reduction["numba_available"]:
        assert reduction["speedup"] > 0


def test_smoke_metrics_structure():
    # Smoke sizes measure overhead, not throughput: floors must stay
    # unarmed, parity must have run, and the JSON payload must be
    # shaped for the trajectory tooling.
    metrics = run(smoke=True, verbose=False)
    assert metrics["tallies_byte_identical"] is True
    names = {floor["name"] for floor in metrics["floors"]}
    assert names == {
        "numba_vs_numpy_reduction_speedup",
        "qmc_vs_mc_samples_to_width_ratio",
    }
    assert all(not floor["asserted"] for floor in metrics["floors"])
    assert check_floors(metrics) == []


def test_qmc_needs_fewer_samples_than_mc():
    qmc = _qmc_benchmark(True)
    if not qmc["measured"]:
        return  # the smoke ladder may top out on slow hosts; full mode decides
    assert qmc["qmc_samples_to_width"] <= qmc["mc_samples_to_width"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    json_path = JSON_PATH
    if "--json" in sys.argv:
        json_path = sys.argv[sys.argv.index("--json") + 1]
    metrics = run(smoke=smoke, verbose=True)
    with open(json_path, "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {json_path}")
    failed = check_floors(metrics)
    for line in failed:
        print(f"  FLOOR REGRESSION: {line}", file=sys.stderr)
    raise SystemExit(1 if failed else 0)
