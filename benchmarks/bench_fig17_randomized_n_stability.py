"""Figure 17 — randomized GET-NEXT: top-10 stability series by size and kind.

Paper protocol: for n in {1K, 10K, 100K}, plot the stability of the
top-10 stable partial rankings for both top-k *sets* and *ranked* top-k.
Findings: sets are uniformly more stable than ranked prefixes (order
information adds fragility), and the per-n curves are similar — the
basis of "top-k is feasible for large settings".

Bench scale: n up to 50K.  Shape checks: for each n the top set
stability >= top ranked stability; curves decrease along h.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import bluenile_dataset

SIZES = [1_000, 10_000, 50_000]
K = 10
H = 10


def _top_h(ds, kind, seed):
    cone = Cone(np.ones(3), math.pi / 50)
    engine = GetNextRandomized(
        ds, region=cone, kind=kind, k=K, rng=np.random.default_rng(seed)
    )
    return [r.stability for r in engine.top_h(H, budget_first=5000, budget_rest=1000)]


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project(range(3))
    return {n: full.subset(range(n)) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_fig17_set_vs_ranked(benchmark, catalogs, n):
    ds = catalogs[n]

    def both_series():
        return _top_h(ds, "topk_set", 17), _top_h(ds, "topk_ranked", 18)

    sets, ranked = benchmark.pedantic(both_series, rounds=1, iterations=1)
    report(
        benchmark,
        n=n,
        set_series=[round(s, 4) for s in sets],
        ranked_series=[round(s, 4) for s in ranked],
    )
    # "the top-k sets are more stable than the top-k rankings".
    assert sets[0] >= ranked[0] - 0.02
    assert sum(sets) >= sum(ranked) - 0.05
    # Both series decrease (Monte-Carlo noise tolerance).
    assert sets[0] >= sets[-1] - 0.02
    assert ranked[0] >= ranked[-1] - 0.02
