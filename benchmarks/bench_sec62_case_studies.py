"""Section 6.2 narrative — the concrete case-study findings.

Beyond the figures, section 6.2 makes several point claims; this bench
re-derives each on the stand-in datasets:

- CSMetrics: the reference ranking is not among the most stable; a
  top-10 membership change occurs in the most stable ranking (the
  Cornell/Toronto swap), and some item moves several positions (the
  Northeastern 40 -> 35 move).
- FIFA: some pair of teams flips order between the published and the
  most stable ranking (the Tunisia/Mexico flip).
"""

import numpy as np

from benchmarks.conftest import report
from repro import Cone, GetNext2D, GetNextMD, verify_stability_2d
from repro.datasets import csmetrics_dataset, fifa_dataset
from repro.datasets.csmetrics import csmetrics_reference_function
from repro.datasets.fifa import fifa_reference_function


def test_sec62_csmetrics_findings(benchmark):
    institutions = csmetrics_dataset(100)
    reference = csmetrics_reference_function()

    def analyse():
        published = reference.rank(institutions)
        results = list(GetNext2D(institutions))
        verdict = verify_stability_2d(institutions, published)
        best = results[0]
        top10_published = set(published.order[:10])
        top10_best = set(best.ranking.order[:10])
        membership_changes = len(top10_published ^ top10_best) // 2
        max_move = max(
            abs(published.rank_of(i) - best.ranking.rank_of(i))
            for i in range(institutions.n_items)
        )
        position = 1 + sum(r.stability > verdict.stability for r in results)
        return position, len(results), membership_changes, max_move

    position, total, membership_changes, max_move = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )
    report(
        benchmark,
        reference_rank_among_stable=f"{position}/{total}",
        top10_membership_changes=membership_changes,
        max_rank_move=max_move,
    )
    # Paper: reference is 108th of 336; here it must at least be far from
    # the top.
    assert position > 10
    # Paper: Cornell replaces Toronto in the top-10 (>= 0 changes is
    # trivially true; demand at least some movement in ranks).
    assert max_move >= 2


def test_sec62_fifa_pair_flip(benchmark):
    teams = fifa_dataset(100)
    reference = fifa_reference_function()

    def analyse():
        rng = np.random.default_rng(62)
        published = reference.rank(teams)
        cone = Cone.from_cosine(reference.weights, 0.999)
        engine = GetNextMD(teams, region=cone, n_samples=8_000, rng=rng)
        best = engine.get_next()
        flips = sum(
            1
            for a in range(teams.n_items)
            for b in range(a + 1, teams.n_items)
            if (published.rank_of(a) < published.rank_of(b))
            != (best.ranking.rank_of(a) < best.ranking.rank_of(b))
        )
        return flips, best.ranking != published

    flips, differs = benchmark.pedantic(analyse, rounds=1, iterations=1)
    report(benchmark, pairwise_flips=flips, most_stable_differs=differs)
    # Paper: "while Tunisia holds a higher rank than Mexico in the
    # reference ranking, Mexico is ranked higher in the most stable
    # ranking" — at least one pair must flip.
    assert differs
    assert flips >= 1
