"""Ablation — top-k engine choices for the randomized operator's hot loop.

The randomized GET-NEXT operator (section 4.3) evaluates the top-k under
thousands of sampled scoring functions.  Three engines can serve each
evaluation:

1. the flat vectorised scan (``argpartition``, what the library ships);
2. Fagin's Threshold Algorithm over presorted lists (reference [22]);
3. the ONION convex-hull-layer index (reference [56]).

TA and ONION are access-efficient in the middleware cost model, but in a
NumPy in-memory setting the flat scan's constant factors win at these
sizes — the measurement that justifies the library's default.  The
extra_info records the engines' work measures (TA depth, ONION layers)
so the access-model story is visible alongside the wall clock.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.operators.onion import OnionIndex
from repro.operators.threshold import SortedLists, threshold_algorithm
from repro.operators.topk import top_k_indices

N_ITEMS = (1_000, 10_000)
K = 10
D = 3
N_QUERIES = 50


def _queries(rng: np.random.Generator) -> np.ndarray:
    return rng.random((N_QUERIES, D)) + 1e-3


@pytest.mark.parametrize("n", N_ITEMS)
def test_engine_flat_scan(benchmark, n):
    rng = np.random.default_rng(7)
    values = rng.random((n, D))
    queries = _queries(rng)

    def run():
        return [top_k_indices(values @ w, K) for w in queries]

    results = benchmark(run)
    report(benchmark, n=n, engine="flat")
    assert len(results) == N_QUERIES


@pytest.mark.parametrize("n", N_ITEMS)
def test_engine_threshold_algorithm(benchmark, n):
    rng = np.random.default_rng(7)
    values = rng.random((n, D))
    queries = _queries(rng)
    lists = SortedLists(values)  # index built outside the timed region

    def run():
        return [threshold_algorithm(lists, w, K) for w in queries]

    results = benchmark(run)
    depths = [r.depth for r in results]
    report(
        benchmark,
        n=n,
        engine="TA",
        mean_depth=float(np.mean(depths)),
        depth_fraction=float(np.mean(depths)) / n,
    )
    # TA's defining virtue: it stops far above the bottom of the lists.
    assert np.mean(depths) < n / 2
    # Exactness against the flat scan.
    for r, w in zip(results, queries):
        assert list(r.order) == top_k_indices(values @ w, K).tolist()


@pytest.mark.parametrize("n", N_ITEMS)
def test_engine_onion_index(benchmark, n):
    rng = np.random.default_rng(7)
    values = rng.random((n, D))
    queries = _queries(rng)
    index = OnionIndex(values)  # peeling happens outside the timed region

    def run():
        return [index.top_k(w, K) for w in queries]

    results = benchmark(run)
    layers = [touched for _, touched in results]
    report(
        benchmark,
        n=n,
        engine="ONION",
        n_layers_total=index.n_layers,
        mean_layers_touched=float(np.mean(layers)),
    )
    # The index answers from a small prefix of its layers.
    assert np.mean(layers) <= K
    for (order, _), w in zip(results, queries):
        assert list(order) == top_k_indices(values @ w, K).tolist()
