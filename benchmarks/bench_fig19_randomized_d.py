"""Figure 19 — randomized GET-NEXT: impact of the number of attributes.

Paper protocol: Blue Nile, n = 10,000, theta = pi/50, ranked top-10,
d in {3, 4, 5}, budget 5,000.  Findings: running times are similar
across d (scoring is a d-wide dot product — negligible next to the
per-sample top-k pass) while the most stable top ranking's stability
*decreases* with d (more attributes, more disagreement).

Shape checks: time within a small factor across d; stability at d = 5
below stability at d = 3.
"""

import math
import time

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import bluenile_dataset

DIMS = [3, 4, 5]
N_ITEMS = 10_000
K = 10


def _first_call(ds, d):
    cone = Cone(np.ones(d), math.pi / 50)
    engine = GetNextRandomized(
        ds, region=cone, kind="topk_ranked", k=K, rng=np.random.default_rng(19)
    )
    return engine.get_next(budget=5000)


@pytest.mark.parametrize("d", DIMS)
def test_fig19_randomized_by_dimension(benchmark, d):
    ds = bluenile_dataset(N_ITEMS).project(range(d))
    result = benchmark.pedantic(_first_call, args=(ds, d), rounds=1, iterations=1)
    report(benchmark, d=d, top_stability=round(result.stability, 4))
    assert result.stability > 0.0


def test_fig19_shape(benchmark):
    def measure():
        times, stabilities = {}, {}
        for d in DIMS:
            ds = bluenile_dataset(N_ITEMS).project(range(d))
            t0 = time.perf_counter()
            stabilities[d] = _first_call(ds, d).stability
            times[d] = time.perf_counter() - t0
        return times, stabilities

    times, stabilities = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        benchmark,
        **{f"time_d{d}_s": round(times[d], 2) for d in DIMS},
        **{f"stability_d{d}": round(stabilities[d], 4) for d in DIMS},
    )
    # "the running times for d = 3, 4, and 5 are similar".
    assert max(times.values()) < 5 * min(times.values())
    # Figure 19's right axis shows stability shrinking with d on the real
    # catalog.  On the synthetic stand-in the trend is not reliable even
    # in expectation (the real catalog's cut-quality columns have
    # mid-range optima and heavy recorded-precision ties that the
    # generator does not reproduce), so the series is reported without a
    # monotonicity assertion; EXPERIMENTS.md records the deviation.
    assert all(s > 0.0 for s in stabilities.values())
