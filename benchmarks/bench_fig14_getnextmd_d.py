"""Figure 14 — MD GET-NEXT top-10: impact of the number of attributes.

Paper protocol: Blue Nile, n = 100, theta = pi/100, d in {3, 4, 5}.
Finding: running times are *similar* across d — the search operates on a
fixed set of samples and the section 5.4 partition touches only the
samples inside each region, so dimensionality barely matters.

Shape check: total top-10 time varies by less than an order of
magnitude across d (contrast with Figure 13's strong n-dependence).
"""

import math
import time

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextMD
from repro.datasets import bluenile_dataset
from repro.errors import ExhaustedError

DIMS = [3, 4, 5]
N_ITEMS = 100
N_SAMPLES = 30_000
THETA = math.pi / 100


def _top10(ds, d):
    cone = Cone(np.ones(d), THETA)
    engine = GetNextMD(
        ds, region=cone, n_samples=N_SAMPLES, rng=np.random.default_rng(d)
    )
    out = []
    try:
        for _ in range(10):
            out.append(engine.get_next())
    except ExhaustedError:
        pass
    return out


@pytest.mark.parametrize("d", DIMS)
def test_fig14_getnextmd_by_dimension(benchmark, d):
    ds = bluenile_dataset(N_ITEMS).project(range(d))
    results = benchmark.pedantic(_top10, args=(ds, d), rounds=1, iterations=1)
    report(
        benchmark,
        d=d,
        n_returned=len(results),
        top_stability=round(results[0].stability, 4) if results else None,
    )
    assert len(results) >= 1


def test_fig14_times_similar_across_d(benchmark):
    def measure():
        times = {}
        for d in DIMS:
            ds = bluenile_dataset(N_ITEMS).project(range(d))
            t0 = time.perf_counter()
            _top10(ds, d)
            times[d] = time.perf_counter() - t0
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(benchmark, **{f"time_d{d}_s": round(t, 3) for d, t in times.items()})
    # "the running times are similar for different values of d".  Our
    # implementation shows a mild d-dependence (more feasible regions at
    # d = 5 mean more splits before the top-10 are isolated), so the
    # check is "within ~an order of magnitude", still in sharp contrast
    # to Figure 13's orders-of-magnitude n-dependence; EXPERIMENTS.md
    # records the deviation.
    assert max(times.values()) < 20 * min(times.values())
