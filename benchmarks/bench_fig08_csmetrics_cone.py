"""Figure 8 — CSMetrics: stability inside the producer's acceptable cone.

Paper protocol: restrict to 0.998 cosine similarity (theta = pi/50)
around the reference weight vector <0.3, 0.7>; 22 feasible rankings
remain and the reference ranking is still far below the maximum
stability.

Shape checks: a few dozen in-cone rankings; the reference ranking's
in-cone stability well below the in-cone maximum.
"""

from benchmarks.conftest import report
from repro import Cone, GetNext2D, verify_stability_2d
from repro.datasets import csmetrics_dataset
from repro.datasets.csmetrics import csmetrics_reference_function


def test_fig08_enumerate_in_cone(benchmark):
    institutions = csmetrics_dataset(100)
    reference = csmetrics_reference_function()
    cone = Cone.from_cosine(reference.weights, 0.998)

    def enumerate_cone():
        return list(GetNext2D(institutions, region=cone))

    results = benchmark.pedantic(enumerate_cone, rounds=3, iterations=1)
    verdict = verify_stability_2d(
        institutions, reference.rank(institutions), region=cone
    )
    position = 1 + sum(r.stability > verdict.stability for r in results)
    report(
        benchmark,
        n_in_cone_rankings=len(results),
        top_stability=round(results[0].stability, 5),
        reference_stability=round(verdict.stability, 5),
        reference_position=position,
    )
    # Paper: 22 feasible rankings in the narrow cone — same decade here.
    assert 5 <= len(results) <= 200
    # "Even in this narrow region of interest, the reference ranking is
    # far below the maximum stability."
    assert verdict.stability < results[0].stability / 2
    assert position > 1
