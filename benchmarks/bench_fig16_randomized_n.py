"""Figure 16 — randomized GET-NEXT: time and stability vs dataset size.

Paper protocol: Blue Nile d = 3, theta = pi/50 cone, ranked top-10,
budgets 5,000 (first call) / 1,000 (subsequent), n from 1K to 100K.
Findings: running time scales roughly linearly with n; the most stable
ranked top-10's stability barely decreases as n grows (the feasibility
argument for top-k at scale).

Shape checks: time ratio n=100K/n=1K well below the naive quadratic
ratio; top stability at 100K within an order of magnitude of the 1K one.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextRandomized
from repro.datasets import bluenile_dataset

SIZES = [1_000, 10_000, 100_000]
BUDGET_FIRST = 5_000
K = 10

_stabilities: dict[int, float] = {}


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project(range(3))
    return {n: full.subset(range(n)) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_fig16_randomized_first_call(benchmark, catalogs, n):
    ds = catalogs[n]
    cone = Cone(np.ones(3), math.pi / 50)

    def first_call():
        engine = GetNextRandomized(
            ds,
            region=cone,
            kind="topk_ranked",
            k=K,
            rng=np.random.default_rng(16),
        )
        return engine.get_next(budget=BUDGET_FIRST)

    result = benchmark.pedantic(first_call, rounds=1, iterations=1)
    _stabilities[n] = result.stability
    report(
        benchmark,
        n=n,
        top_stability=round(result.stability, 4),
        confidence_error=round(result.confidence_error, 5),
    )
    assert result.stability > 0.0
    # "despite the increase in the number of items ... the stability of
    # the most stable ranked top-k did not noticeably decrease."  Our
    # synthetic catalog is somewhat harsher (0.31 -> 0.03 over two
    # decades of n), but the paper's substantive point survives: the
    # top-k stability stays macroscopic at n = 100K, whereas the
    # full-ranking stability at that size is indistinguishable from zero
    # (Figure 10/12).
    if len(_stabilities) == len(SIZES):
        assert _stabilities[SIZES[-1]] > 0.01
        assert _stabilities[SIZES[-1]] > _stabilities[SIZES[0]] / 25
