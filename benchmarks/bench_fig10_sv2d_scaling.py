"""Figure 10 — 2D stability verification: impact of dataset size.

Paper protocol: Blue Nile projected to d = 2, default function
w = <1, 1>, n from 100 to 100,000.  Findings: running time grows
linearly (0.12 s at n = 100K) while the default ranking's stability
collapses from ~1e-2 at n = 100 to below 1e-6 at n = 100K.

Shape checks: near-linear time growth; stability decreasing by orders
of magnitude.
"""

import pytest

from benchmarks.conftest import report
from repro import ScoringFunction, verify_stability_2d
from repro.datasets import bluenile_dataset

SIZES = [100, 1_000, 10_000, 100_000]


@pytest.fixture(scope="module")
def catalogs():
    full = bluenile_dataset(max(SIZES)).project([0, 1])
    return {n: full.subset(range(n)) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_fig10_sv2d_time(benchmark, catalogs, n):
    ds = catalogs[n]
    f = ScoringFunction.equal_weights(2)
    ranking = f.rank(ds)
    result = benchmark(verify_stability_2d, ds, ranking)
    report(benchmark, n=n, stability=float(result.stability))


def test_fig10_stability_collapse(benchmark, catalogs):
    f = ScoringFunction.equal_weights(2)

    def series():
        return {
            n: verify_stability_2d(catalogs[n], f.rank(catalogs[n])).stability
            for n in SIZES
        }

    stabilities = benchmark.pedantic(series, rounds=1, iterations=1)
    report(benchmark, **{f"stability_n{n}": f"{s:.2e}" for n, s in stabilities.items()})
    # Stability decays monotonically and by orders of magnitude.
    values = [stabilities[n] for n in SIZES]
    assert all(a > b for a, b in zip(values, values[1:]))
    assert values[0] > 100 * values[-1]
    # Paper scale: ~1e-2 at n=100 and < 1e-5 by n=100K.
    assert values[0] > 1e-3
    assert values[-1] < 1e-4
