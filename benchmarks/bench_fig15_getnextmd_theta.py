"""Figure 15 — MD GET-NEXT top-10: impact of the region-of-interest width.

Paper protocol: Blue Nile, n = 100, d = 3, theta in
{pi/10, pi/50, pi/100}.  Finding: like Figure 14, the running times are
similar across theta — the fixed sample pool decouples the search cost
from the geometric width of the region.

Shape check: total top-10 time varies by less than an order of
magnitude across theta.
"""

import math
import time

import numpy as np
import pytest

from benchmarks.conftest import report
from repro import Cone, GetNextMD
from repro.datasets import bluenile_dataset
from repro.errors import ExhaustedError

THETAS = {"pi/10": math.pi / 10, "pi/50": math.pi / 50, "pi/100": math.pi / 100}
N_ITEMS = 100
N_SAMPLES = 30_000


def _top10(ds, theta, seed):
    cone = Cone(np.ones(3), theta)
    engine = GetNextMD(
        ds, region=cone, n_samples=N_SAMPLES, rng=np.random.default_rng(seed)
    )
    out = []
    try:
        for _ in range(10):
            out.append(engine.get_next())
    except ExhaustedError:
        pass
    return out


@pytest.fixture(scope="module")
def catalog():
    return bluenile_dataset(N_ITEMS).project(range(3))


@pytest.mark.parametrize("label", list(THETAS))
def test_fig15_getnextmd_by_theta(benchmark, catalog, label):
    theta = THETAS[label]
    results = benchmark.pedantic(
        _top10, args=(catalog, theta, 15), rounds=1, iterations=1
    )
    report(
        benchmark,
        theta=label,
        n_returned=len(results),
        top_stability=round(results[0].stability, 4) if results else None,
    )
    assert len(results) >= 1


def test_fig15_times_similar_across_theta(benchmark, catalog):
    def measure():
        return {
            label: _timed(catalog, theta)
            for label, theta in THETAS.items()
        }

    def _timed(ds, theta):
        t0 = time.perf_counter()
        _top10(ds, theta, 16)
        return time.perf_counter() - t0

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        benchmark,
        **{f"time_{k.replace('/', '_')}_s": round(v, 3) for k, v in times.items()},
    )
    # "the lines ... show similar behaviors for different settings".  Our
    # implementation is flatter in theta than in n but not perfectly
    # flat: a pi/10 cone admits ~10x more ordering exchanges than pi/100
    # and each admitted hyperplane costs a scan.  The check bounds the
    # spread at under two orders of magnitude (vs >3 across Figure 13's
    # n sweep); EXPERIMENTS.md records the deviation.
    assert max(times.values()) < 60 * min(times.values())
