"""Shim for environments whose setuptools cannot build PEP 517 wheels."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro-stability = repro.cli:main"]},
)
