"""CSMetrics case study: the consumer/producer dialogue of Example 1.

Acts out section 6.2's CSMetrics analysis on the synthetic stand-in:

- enumerate every feasible ranking of the top-100 institutions and plot
  (textually) the stability distribution (Figure 7);
- locate the published alpha = 0.3 ranking in that distribution and
  measure its stability (the paper finds 0.0032, rank 108 of 336);
- repeat inside the producer's acceptable cone of 0.998 cosine
  similarity around the reference weights (Figure 8);
- report which institutions move between the published and the most
  stable ranking (the paper's Cornell / Toronto anecdote).

Run with:  python examples/csmetrics_case_study.py
"""

import numpy as np

from repro import Cone, GetNext2D, verify_stability_2d
from repro.datasets import csmetrics_dataset
from repro.datasets.csmetrics import csmetrics_reference_function


def text_histogram(values, *, bins=12, width=48) -> list[str]:
    """Rows of a textual bar chart for a sorted stability series."""
    top = max(values)
    rows = []
    for i, v in enumerate(values[:bins]):
        bar = "#" * max(1, int(width * v / top))
        rows.append(f"  #{i + 1:>3}  {v:.4f}  {bar}")
    return rows


def main() -> None:
    institutions = csmetrics_dataset(100)
    reference = csmetrics_reference_function()  # alpha = 0.3
    published = reference.rank(institutions)

    # -- Figure 7: the full stability distribution ---------------------
    results = list(GetNext2D(institutions))
    print(f"Feasible rankings of the top-100 institutions: {len(results)}")
    print("Most stable rankings (stability, bar):")
    print("\n".join(text_histogram([r.stability for r in results])))

    # -- The consumer's check (Problem 1) ------------------------------
    verdict = verify_stability_2d(institutions, published)
    position = 1 + sum(r.stability > verdict.stability for r in results)
    uniform_baseline = 1.0 / len(results)
    print(f"\nPublished ranking (alpha=0.3): stability {verdict.stability:.4f}")
    print(f"  uniform baseline would be    {uniform_baseline:.4f}")
    print(f"  it is the #{position} most stable of {len(results)}")

    # -- Who moves under the most stable ranking? ----------------------
    most_stable = results[0]
    print(f"\nMost stable ranking: stability {most_stable.stability:.4f}")
    moves = []
    for item in range(institutions.n_items):
        before = published.rank_of(item)
        after = most_stable.ranking.rank_of(item)
        if before != after:
            moves.append((abs(before - after), item, before, after))
    moves.sort(reverse=True)
    print("Largest rank changes (institution: published -> most stable):")
    for delta, item, before, after in moves[:5]:
        label = institutions.label_of(item)
        print(f"  {label:<28} {before:>3} -> {after:>3}  (moved {delta})")
    top10_in = {most_stable.ranking.order[i] for i in range(10)} - {
        published.order[i] for i in range(10)
    }
    for item in top10_in:
        print(
            f"  {institutions.label_of(item)} enters the top-10 "
            f"(was #{published.rank_of(item)})"
        )

    # -- Figure 8: the producer's acceptable cone ----------------------
    cone = Cone.from_cosine(reference.weights, 0.998)
    in_cone = list(GetNext2D(institutions, region=cone))
    cone_verdict = verify_stability_2d(institutions, published, region=cone)
    cone_position = 1 + sum(r.stability > cone_verdict.stability for r in in_cone)
    print(
        f"\nInside the 0.998-cosine cone around alpha=0.3: "
        f"{len(in_cone)} feasible rankings"
    )
    print(
        f"  published ranking stability there: {cone_verdict.stability:.4f} "
        f"(#{cone_position}); best available: {in_cone[0].stability:.4f}"
    )
    best_weights = in_cone[0].region.midpoint_weights()
    alpha = best_weights[0] / best_weights.sum()
    print(f"  most stable in-cone weights correspond to alpha = {alpha:.3f}")


if __name__ == "__main__":
    main()
