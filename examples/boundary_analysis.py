"""Boundary and item-level analysis: the paper's future-work toolkit.

Section 8 of the paper sketches two extensions this library implements:
tolerating minor ranking changes, and characterising the boundaries of a
stable region.  This example applies both to the CSMetrics case:

- how much more stable does the published ranking look if rankings
  within a few pairwise swaps count as "the same"? (tolerant stability)
- which institution pairs actually bound the published ranking's region
  — the swaps a producer must defend? (boundary pairs)
- what is the max-margin weight vector realising the ranking, and how
  does each institution's rank vary across the acceptable cone?
  (Chebyshev direction + rank profiles)

Run with:  python examples/boundary_analysis.py
"""

import numpy as np

from repro import (
    Cone,
    boundary_pairs_2d,
    chebyshev_direction,
    rank_profile,
    ranking_region_md,
    tolerant_stability,
    verify_stability_2d,
)
from repro.datasets import csmetrics_dataset
from repro.datasets.csmetrics import csmetrics_reference_function


def main() -> None:
    rng = np.random.default_rng(8)
    institutions = csmetrics_dataset(100)
    reference = csmetrics_reference_function()
    published = reference.rank(institutions)

    # -- Tolerant stability: how much do minor swaps matter? -----------
    print("Stability of the published ranking, allowing tau pairwise swaps:")
    for tau in (0, 1, 3, 10, 30):
        res = tolerant_stability(
            institutions, published, tau=tau, n_samples=4000, rng=rng
        )
        print(
            f"  tau={tau:>3}:  S_tau = {res.stability:.4f} "
            f"(+/- {res.confidence_error:.4f})"
        )
    strict = verify_stability_2d(institutions, published)
    print(f"  (exact tau=0 value for reference: {strict.stability:.4f})")

    # -- Boundary pairs: which swaps end this ranking's region? --------
    lower, upper = boundary_pairs_2d(institutions, published)
    print("\nThe published ranking's region is clipped by:")
    for side, pair in (("lower", lower), ("upper", upper)):
        if pair is None:
            print(f"  {side} side: the edge of the weight space itself")
        else:
            print(
                f"  {side} side: {institutions.label_of(pair.higher)} / "
                f"{institutions.label_of(pair.lower)} swap at angle "
                f"{pair.angle:.4f}"
            )

    # -- Max-margin weights for the published ranking ------------------
    cone = ranking_region_md(institutions, published)
    robust_w = chebyshev_direction(cone)
    alpha = robust_w[0] / robust_w.sum()
    print(
        f"\nMax-margin weights realising the published ranking: "
        f"alpha = {alpha:.4f} (published alpha = 0.3)"
    )

    # -- Rank profiles inside the acceptable cone -----------------------
    acceptable = Cone.from_cosine(reference.weights, 0.998)
    watchlist = [published.order[9], published.order[10], published.order[11]]
    print("\nRank ranges across the 0.998-cosine cone (ranks 10-12 watchlist):")
    for profile in rank_profile(
        institutions, watchlist, region=acceptable, n_samples=2000, rng=rng
    ):
        label = institutions.label_of(profile.item)
        print(
            f"  {label:<28} published #{published.rank_of(profile.item):>3}  "
            f"range [{profile.min_rank}, {profile.max_rank}]  "
            f"median {profile.quantiles[0.5]:.0f}"
        )
    print(
        "\n(An institution whose range straddles rank 10 can gain or lose "
        "a top-10 spot on weight choices the producer considers equally "
        "acceptable — Example 1's Cornell situation.)"
    )


if __name__ == "__main__":
    main()
