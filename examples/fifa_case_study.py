"""FIFA case study: stability of a 4-attribute ranking (section 6.2).

Reproduces the Figure 9 analysis on the synthetic stand-in:

- build the top-100 teams with FIFA's four yearly performance columns;
- explore the hypercone of 0.999 cosine similarity around the published
  weights <1, 0.5, 0.3, 0.2> with the multi-dimensional GET-NEXT
  operator (100 calls, 10,000 cap samples — the paper's protocol);
- check whether the published ranking appears among the top-100 stable
  rankings (the paper: it does not), and exhibit a pair of teams whose
  order flips in the most stable ranking (the Tunisia/Mexico anecdote).

Run with:  python examples/fifa_case_study.py
"""

import numpy as np

from repro import Cone, GetNextMD, verify_stability_md
from repro.datasets import fifa_dataset
from repro.datasets.fifa import fifa_reference_function
from repro.errors import ExhaustedError
from repro.sampling.oracle import StabilityOracle


def main() -> None:
    rng = np.random.default_rng(2018)
    teams = fifa_dataset(100)
    reference = fifa_reference_function()
    published = reference.rank(teams)

    cone = Cone.from_cosine(reference.weights, 0.999)
    print("Region of interest: 0.999 cosine similarity around <1, .5, .3, .2>")

    # -- Figure 9: top-100 stable rankings in the cone -----------------
    engine = GetNextMD(teams, region=cone, n_samples=10_000, rng=rng)
    stable: list = []
    try:
        for _ in range(100):
            stable.append(engine.get_next())
    except ExhaustedError:
        pass
    print(f"Enumerated {len(stable)} stable rankings; top 10 stabilities:")
    for i, result in enumerate(stable[:10], start=1):
        print(f"  #{i:>3}  stability = {result.stability:.4f}")

    # -- Is the published ranking among them? ---------------------------
    rank_position = next(
        (
            i
            for i, result in enumerate(stable, start=1)
            if result.ranking == published
        ),
        None,
    )
    if rank_position is None:
        print(
            f"\nThe published FIFA ranking is NOT among the "
            f"{len(stable)} most stable rankings in its own cone"
        )
    else:
        print(f"\nThe published ranking is the #{rank_position} most stable")

    oracle = StabilityOracle(cone.sample(10_000, rng))
    verdict = verify_stability_md(teams, published, oracle=oracle)
    print(
        f"Published ranking stability: {verdict.stability:.5f} "
        f"(+/- {verdict.confidence_error:.5f})"
    )
    if stable:
        print(f"Most stable alternative:     {stable[0].stability:.5f}")

    # -- Which teams flip? ----------------------------------------------
    if stable:
        best = stable[0].ranking
        flips = [
            (teams.label_of(a), teams.label_of(b), published.rank_of(a))
            for a in range(teams.n_items)
            for b in range(teams.n_items)
            if a != b
            and published.rank_of(a) < published.rank_of(b)
            and best.rank_of(a) > best.rank_of(b)
        ]
        print(f"\nPairs whose order flips in the most stable ranking: {len(flips)}")
        for left, right, position in sorted(flips, key=lambda f: f[2])[:5]:
            print(
                f"  {left} (published above {right}) drops below it "
                "in the most stable ranking"
            )


if __name__ == "__main__":
    main()
