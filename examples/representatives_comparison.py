"""Stable top-k vs skyline vs regret vs representative skyline.

Section 2.2.5 argues that "the set of most-stable top-k items is in
general different from the skyline, or any of its subsets", using the
toy dataset D = {t1(1,0), t2(.99,.99), t3(.98,.98), t4(.97,.97),
t5(0,1)}.  This example runs all four notions of "the k items that
matter" side by side — first on the paper's toy, then on a synthetic
diamond catalog — and reports their overlaps:

- **stable top-k set** (the paper's contribution) — the set most weight
  vectors agree on;
- **skyline** (ref [8]) — items no other item dominates;
- **greedy regret-minimizing set** (refs [10, 11]) — bounds the score
  loss of answering top-1 queries from the subset;
- **k representative skyline** (ref [9]) — skyline members maximising
  dominance coverage.

Run with:  python examples/representatives_comparison.py
"""

import numpy as np

from repro import Dataset, GetNextRandomized
from repro.operators import (
    greedy_regret_set,
    k_representative_skyline,
    regret_ratio,
    skyline,
)


def stable_topk_set(dataset: Dataset, k: int, rng: np.random.Generator) -> frozenset:
    """The most stable top-k set via the randomized GET-NEXT operator."""
    engine = GetNextRandomized(dataset, kind="topk_set", k=k, rng=rng)
    result = engine.get_next(budget=8_000)
    assert result.top_k_set is not None
    return result.top_k_set


def describe(name: str, items, labels) -> None:
    names = ", ".join(labels[i] for i in sorted(items))
    print(f"  {name:<28} {{{names}}}")


def compare(dataset: Dataset, k: int, rng: np.random.Generator) -> None:
    labels = dataset.item_labels
    stable = stable_topk_set(dataset, k, rng)
    sky = skyline(dataset.values)
    regret = greedy_regret_set(dataset.values, k, rng=rng)
    representative, coverage = k_representative_skyline(dataset.values, k)

    describe(f"stable top-{k} set", stable, labels)
    describe("skyline", sky, labels)
    describe(f"greedy regret set (k={k})", regret, labels)
    describe(f"representative skyline", representative, labels)
    print(f"  skyline size                 {len(sky)}")
    print(
        f"  stable ∩ skyline             "
        f"{len(stable & set(sky.tolist()))} of {k}"
    )
    print(
        f"  regret ratio of stable set   "
        f"{regret_ratio(dataset.values, np.array(sorted(stable)), rng=rng):.4f}"
    )
    print(
        f"  regret ratio of greedy set   "
        f"{regret_ratio(dataset.values, regret, rng=rng):.4f}"
    )
    print(f"  coverage of representatives  {coverage} items dominated")


def main() -> None:
    rng = np.random.default_rng(20181218)

    # -- The section 2.2.5 toy ----------------------------------------
    print("Paper toy (section 2.2.5), k = 3:")
    toy = Dataset(
        np.array(
            [
                [1.00, 0.00],
                [0.99, 0.99],
                [0.98, 0.98],
                [0.97, 0.97],
                [0.00, 1.00],
            ]
        ),
        item_labels=["t1", "t2", "t3", "t4", "t5"],
    )
    compare(toy, k=3, rng=rng)
    stable = stable_topk_set(toy, 3, rng)
    assert stable == frozenset({1, 2, 3}), (
        "the paper predicts the stable top-3 is {t2, t3, t4}"
    )
    print("  -> matches the paper: stable top-3 = {t2, t3, t4}, "
          "only t2 of which is skyline\n")

    # -- A realistic catalog ------------------------------------------
    print("Synthetic diamond catalog (n=400, d=3), k = 8:")
    from repro.datasets import bluenile_dataset

    diamonds = bluenile_dataset(400, rng).project([0, 1, 2])
    compare(diamonds, k=8, rng=rng)


if __name__ == "__main__":
    main()
