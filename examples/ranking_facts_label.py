"""Produce a stability "Ranking Facts" label for a published ranking.

The paper's introduction argues stability is an ingredient of
algorithmic transparency and cites the authors' nutritional-label work
(reference [5]).  This example plays the role of a ranking *producer*
publishing a CSMetrics-like ranking: it builds the label a transparency
-minded producer would attach, then walks the stability/similarity
trade-off (Example 1's workflow) to see how much stability a small
weight adjustment could buy.

Run with:  python examples/ranking_facts_label.py
"""

import numpy as np

from repro import build_label, stability_similarity_tradeoff
from repro.datasets import csmetrics_dataset


def main() -> None:
    rng = np.random.default_rng(42)
    institutions = csmetrics_dataset(60, rng)
    # CSMetrics publishes alpha = 0.3 (section 6.1): weights (0.3, 0.7)
    # over (log M, log P).
    published = np.array([0.3, 0.7])

    # -- The label ------------------------------------------------------
    label = build_label(
        institutions,
        published,
        k=10,
        head=10,
        n_samples=6_000,
        rng=rng,
    )
    print(label.render(labels=institutions.item_labels))
    print()

    # -- Interpretation ---------------------------------------------------
    if label.reference_percentile < 0.5:
        print(
            "The published ranking is LESS stable than the typical sampled\n"
            "function's ranking — consumers may reasonably ask (as Cornell\n"
            "does in Example 1) why these exact weights were chosen.\n"
        )
    else:
        print("The published ranking is among the more stable options.\n")

    # -- The trade-off: what would a small weight change buy? ------------
    print("Stability attainable within a cosine-similarity budget:")
    points = stability_similarity_tradeoff(
        institutions,
        published,
        cosines=(0.9999, 0.999, 0.99, 0.97),
        rng=rng,
    )
    print(f"{'cosine':>8} {'best stability':>15} {'ref stability':>14} {'moves':>6}")
    for p in points:
        print(
            f"{p.cosine:8.4f} {p.best.stability:15.4f} "
            f"{p.reference_stability:14.4f} {p.displacement:6d}"
        )
    widest = points[-1]
    if widest.moved_items:
        item, old, new = widest.moved_items[0]
        print(
            f"\nLargest single move at cosine {widest.cosine}: "
            f"{institutions.label_of(item)} goes from rank {old} to {new}."
        )


if __name__ == "__main__":
    main()
