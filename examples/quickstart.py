"""Quickstart: assess and improve the stability of a small ranking.

Reproduces the paper's running example (the HR hiring scenario of
Examples 2-3) end to end:

1. score five candidates with equal weights and inspect the ranking;
2. verify how stable that ranking is (Problem 1);
3. enumerate all rankings by decreasing stability (Problems 2-3);
4. constrain the search to the HR officer's acceptable weights.

Run with:  python examples/quickstart.py
"""

import math

import numpy as np

from repro import (
    ConstrainedRegion,
    Dataset,
    GetNext2D,
    ScoringFunction,
    ray_sweep,
    verify_stability_2d,
)


def main() -> None:
    # -- The database of Figure 1a ------------------------------------
    candidates = Dataset(
        np.array(
            [
                [0.63, 0.71],
                [0.83, 0.65],
                [0.58, 0.78],
                [0.70, 0.68],
                [0.53, 0.82],
            ]
        ),
        item_labels=["t1", "t2", "t3", "t4", "t5"],
        attribute_names=["aptitude", "experience"],
    )

    # -- 1. Rank with the default function f = x1 + x2 ----------------
    f = ScoringFunction.equal_weights(2)
    ranking = f.rank(candidates)
    print("Ranking under f = aptitude + experience:")
    for position, item in enumerate(ranking, start=1):
        print(f"  {position}. {candidates.label_of(item)}")

    # -- 2. Consumer: how stable is this ranking? (Problem 1) ---------
    verdict = verify_stability_2d(candidates, ranking)
    print(f"\nStability of the published ranking: {verdict.stability:.4f}")
    print(
        f"It holds for angles in [{verdict.region.lo:.4f}, "
        f"{verdict.region.hi:.4f}] (radians from the aptitude axis)."
    )

    # -- 3. Producer: what are the stable alternatives? ---------------
    print(f"\nAll {len(ray_sweep(candidates))} feasible rankings, most stable first:")
    for i, result in enumerate(GetNext2D(candidates), start=1):
        labels = ", ".join(candidates.label_of(item) for item in result.ranking)
        print(f"  #{i:>2}  stability={result.stability:.4f}  <{labels}>")

    # -- 4. Producer with an acceptable region (Example 3) ------------
    # "aptitude should be twice as important as experience ... within
    # 20% of 2": 1.6 <= w1/w2 <= 2.4.
    acceptable = ConstrainedRegion(np.array([[1.0, -1.6], [-1.0, 2.4]]))
    print("\nWithin the acceptable region (w1/w2 in [1.6, 2.4]):")
    for result in GetNext2D(candidates, region=acceptable):
        labels = ", ".join(candidates.label_of(item) for item in result.ranking)
        w = result.region.midpoint_weights()
        ratio = w[0] / w[1]
        print(
            f"  stability={result.stability:.4f}  w1/w2={ratio:.2f}  <{labels}>"
        )


if __name__ == "__main__":
    main()
