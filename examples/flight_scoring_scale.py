"""DoT flight workload: stability analysis at 10^5-10^6 rows (Figure 18).

Demonstrates that the randomized operator is the only practical engine at
very large n, and that top-k set stability barely degrades as the
dataset grows (the paper's Figures 16-18 story):

- generate DoT-like flight datasets of increasing size;
- time the first and subsequent GET-NEXT-R calls (5,000 then 1,000
  samples, the paper's budgets);
- report the stability of the most stable top-10 set at each scale.

Run with:  python examples/flight_scoring_scale.py  [--full]
(--full runs the 10^6-row point; without it the example stops at 10^5.)
"""

import math
import sys
import time

import numpy as np

from repro import Cone, GetNextRandomized
from repro.datasets import dot_dataset


def run_scale(n_items: int, rng: np.random.Generator) -> tuple[float, float, float]:
    """Return (first-call seconds, next-call seconds, top stability)."""
    flights = dot_dataset(n_items, rng)
    cone = Cone(np.ones(flights.n_attributes), math.pi / 50)
    engine = GetNextRandomized(
        flights, region=cone, kind="topk_set", k=10, rng=rng
    )
    t0 = time.perf_counter()
    first = engine.get_next(budget=5000)
    t1 = time.perf_counter()
    engine.get_next(budget=1000)
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, first.stability


def main() -> None:
    sizes = [1_000, 10_000, 100_000]
    if "--full" in sys.argv:
        sizes.append(1_000_000)
    print(f"{'n':>10}  {'first call':>10}  {'next call':>10}  {'top stability':>13}")
    for n in sizes:
        rng = np.random.default_rng(n)
        first_s, next_s, stability = run_scale(n, rng)
        print(f"{n:>10}  {first_s:>9.2f}s  {next_s:>9.2f}s  {stability:>13.3f}")
    print(
        "\nExpected shape (Figures 16-18): time grows ~linearly with n, "
        "subsequent calls are ~5x cheaper than the first (budget ratio), "
        "and top-k stability stays roughly flat as n grows."
    )


if __name__ == "__main__":
    main()
