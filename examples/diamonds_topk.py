"""Blue Nile top-k study: stable shortlists at catalog scale (section 6.3).

For a large catalog nobody inspects a complete ranking of 100k+ items;
the randomized GET-NEXT operator finds stable *top-k* results instead.
This example:

- builds a 20,000-diamond catalog with the Blue Nile schema;
- compares the stable top-10 *set* against the top-10 under the default
  equal-weights function, inside a pi/50 cone;
- contrasts ranked top-k and top-k set stabilities (Figures 17/20's
  "sets are more stable than ranked lists" finding);
- contrasts the stable top-k set with the skyline (section 2.2.5).

Run with:  python examples/diamonds_topk.py
"""

import math

import numpy as np

from repro import Cone, GetNextRandomized, ScoringFunction
from repro.datasets import bluenile_dataset
from repro.operators import skyline


def main() -> None:
    rng = np.random.default_rng(43)
    catalog = bluenile_dataset(20_000, rng)
    print(f"Catalog: {catalog.n_items} diamonds, attributes {catalog.attribute_names}")

    default = ScoringFunction.equal_weights(catalog.n_attributes)
    cone = Cone(default.weights, math.pi / 50)
    k = 10

    # -- Default top-10 vs the most stable top-10 set -------------------
    default_top = default.rank(catalog, k=k)
    set_engine = GetNextRandomized(
        catalog, region=cone, kind="topk_set", k=k, rng=rng
    )
    stable_sets = set_engine.top_h(5, budget_first=5000, budget_rest=1000)
    best_set = stable_sets[0]
    print(f"\nDefault top-{k} (equal weights): {sorted(default_top.order)}")
    print(
        f"Most stable top-{k} set:         {sorted(best_set.top_k_set)} "
        f"(stability {best_set.stability:.3f} "
        f"+/- {best_set.confidence_error:.3f})"
    )
    overlap = len(set(default_top.order) & best_set.top_k_set)
    print(f"Overlap: {overlap}/{k} diamonds")
    print("\nNext most stable sets:")
    for i, result in enumerate(stable_sets[1:], start=2):
        print(f"  #{i}  stability={result.stability:.3f}  {sorted(result.top_k_set)}")

    # -- Ranked top-k is less stable than the set ------------------------
    ranked_engine = GetNextRandomized(
        catalog, region=cone, kind="topk_ranked", k=k, rng=rng
    )
    best_ranked = ranked_engine.get_next(budget=5000)
    print(
        f"\nMost stable ranked top-{k}: stability {best_ranked.stability:.3f} "
        f"(vs {best_set.stability:.3f} for the set — order adds fragility)"
    )

    # -- Skyline contrast (section 2.2.5) --------------------------------
    sky = set(skyline(catalog.values).tolist())
    inside = len(best_set.top_k_set & sky)
    print(
        f"\nSkyline of the catalog: {len(sky)} diamonds; "
        f"{inside}/{k} of the stable top-{k} are skyline members"
    )
    print(
        "(stable top-k items need not be skyline points — they are items "
        "that rank highly across many acceptable weightings)"
    )


if __name__ == "__main__":
    main()
