"""Constraint-shaped acceptable regions: a fair-hiring scenario.

Section 2.2.2's second way of specifying ``U*`` is a set of linear
constraints.  The paper's related work (reference [13], "Designing fair
ranking schemes") motivates exactly this: an employer may accept only
weight vectors satisfying policy constraints, then look for the most
stable ranking inside that region.

Scenario: candidates are scored on a skills test (x1), years of
experience (x2), and an interview score (x3).  Policy says:

- the interview (most subjective) may not outweigh the skills test:
  ``w3 <= w1``;
- experience must matter, at least half as much as the test:
  ``w2 >= 0.5 * w1``;
- no single criterion may exceed 60% of the total weight:
  ``0.6 * (w1 + w2 + w3) >= w_j`` for each j.

The example compares stable rankings inside the policy region against
the unconstrained function space, and certifies which candidate
comparisons are invariant across every policy-compliant weighting.

Run with:  python examples/fair_hiring_region.py
"""

import numpy as np

from repro import (
    ConstrainedRegion,
    Dataset,
    GetNextRandomized,
    stable_pairs,
)
from repro.viz import format_ranking, stability_bars


def policy_region() -> ConstrainedRegion:
    """The employer's acceptable weight region as linear constraints."""
    constraints = [
        [1.0, 0.0, -1.0],        # w1 - w3 >= 0       (interview <= test)
        [-0.5, 1.0, 0.0],        # w2 - 0.5 w1 >= 0   (experience matters)
        [-0.4, 0.6, 0.6],        # 0.6*sum >= w1
        [0.6, -0.4, 0.6],        # 0.6*sum >= w2
        [0.6, 0.6, -0.4],        # 0.6*sum >= w3
    ]
    return ConstrainedRegion(np.array(constraints))


def main() -> None:
    rng = np.random.default_rng(13)
    names = [
        "Asha", "Boris", "Chen", "Dalia", "Emre",
        "Farah", "Goran", "Hana", "Ivan", "Jun",
    ]
    candidates = Dataset(
        np.round(rng.uniform(0.2, 1.0, size=(10, 3)), 2),
        item_labels=names,
        attribute_names=["skills_test", "experience", "interview"],
    )
    region = policy_region()
    print("Policy region constraints satisfied by e.g.",
          np.round(region.reference_ray(), 3))

    # -- Stable rankings inside vs outside the policy region -----------
    inside = GetNextRandomized(candidates, region=region, rng=rng)
    top_inside = inside.top_h(5, budget_first=5000, budget_rest=1000)
    print("\nMost stable rankings under the policy:")
    print(
        stability_bars(
            top_inside,
            labels=[
                format_ranking(r.ranking.order, labels=names, limit=3)
                for r in top_inside
            ],
        )
    )

    unconstrained = GetNextRandomized(candidates, rng=rng)
    top_free = unconstrained.top_h(3, budget_first=5000, budget_rest=1000)
    print("\nMost stable rankings with no policy (for contrast):")
    for r in top_free:
        print(f"  {r.stability:.3f}  {format_ranking(r.ranking.order, labels=names, limit=5)}")
    same = top_inside[0].ranking == top_free[0].ranking
    print(f"\nPolicy changes the most stable ranking: {not same}")

    # -- Certified comparisons under every compliant weighting ----------
    certified = stable_pairs(candidates, region=region)
    n_certified = int(certified.sum())
    print(
        f"\n{n_certified} of {10 * 9} ordered pairs are certified: their "
        "relative order is identical under every policy-compliant weighting."
    )
    for i in range(10):
        beats = [names[j] for j in range(10) if certified[i, j]]
        if beats:
            print(f"  {names[i]:<6} always outranks: {', '.join(beats)}")


if __name__ == "__main__":
    main()
