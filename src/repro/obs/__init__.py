"""repro.obs — zero-dependency observability: traces, logs, metrics.

Small modules, threaded through every layer of the stack:

- :mod:`repro.obs.tracing` — contextvar-based hierarchical spans with a
  module-level disabled fast path (``obs.span(...)`` costs one int
  test when no trace is open).
- :mod:`repro.obs.logs` — structured event logging (JSON lines behind
  ``--log-json``), spawn-safe for procpool workers.
- :mod:`repro.obs.metrics` — a generalized counter/gauge registry with
  Prometheus rendering; ``server/metrics.py`` is a client.
- :mod:`repro.obs.flight` — bounded flight-recorder rings (events,
  traces, slow queries, metrics snapshots) dumped as JSON diag
  bundles on failure, ``SIGUSR2``, or the ``diag`` wire op.
- :mod:`repro.obs.profile` — stdlib sampling profiler producing
  collapsed stacks for flamegraphs, start/stoppable over the wire.
- :mod:`repro.obs.slo` — per-dataset latency/error objectives with
  burn-rate computation over the server's latency histograms.
- :mod:`repro.obs.promlint` — exposition-format linter used by tests
  and CI's metrics scrape.
"""

from repro.obs import flight, profile
from repro.obs.logs import (
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    register_resource_gauges,
    rss_bytes,
)
from repro.obs.slo import SloSpec, SloTracker, parse_slo
from repro.obs.tracing import (
    Span,
    Trace,
    current_trace,
    record,
    span,
    stage_report,
    trace,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "SloSpec",
    "SloTracker",
    "Span",
    "Trace",
    "configure_logging",
    "current_trace",
    "flight",
    "get_logger",
    "log_event",
    "parse_slo",
    "profile",
    "record",
    "register_resource_gauges",
    "rss_bytes",
    "span",
    "stage_report",
    "trace",
    "tracing_enabled",
]
