"""Stdlib-only sampling profiler producing collapsed stacks.

A daemon thread wakes ``hz`` times a second, snapshots every thread's
stack via :func:`sys._current_frames`, and folds each stack into a
collapsed root-first key (``a.f;b.g;c.h``) with a hit count — the
input format flamegraph tools consume.  No signals, no C extension,
no per-function tracing hooks: the profiled code pays nothing except
the GIL handoff during the snapshot, so it is safe to flip on against
a live server (the ``profile`` wire op does exactly that).

One process-global profiler mirrors the flight-recorder lifecycle:
:func:`start`/:func:`stop`/:func:`status` manage it, and
:func:`bundle_section` freezes it into a diag bundle.
"""

from __future__ import annotations

import sys
import threading
import time

__all__ = [
    "SamplingProfiler",
    "bundle_section",
    "start",
    "status",
    "stop",
]

#: Sampling rate bounds for the wire-facing API: below 1 hz the data
#: is useless, above 500 hz the sampler itself becomes the workload.
MIN_HZ = 1.0
MAX_HZ = 500.0
DEFAULT_HZ = 50.0

#: Frames kept per stack (deep recursion would otherwise make every
#: collapsed key unique and blow the stack-count cap instantly).
MAX_FRAMES = 64


def _fold(frame) -> str:
    """Collapse one frame chain into a root-first ``mod.func;...`` key."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_FRAMES:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Background thread sampling all thread stacks at ``hz``.

    ``max_stacks`` bounds the collapsed-count dict; once distinct
    stacks exceed it, new keys are counted in ``dropped`` instead
    (existing keys keep accumulating), so a pathological workload
    cannot grow profiler memory without bound.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, max_stacks: int = 4096):
        if not (MIN_HZ <= hz <= MAX_HZ):
            raise ValueError(
                f"hz must be in [{MIN_HZ:g}, {MAX_HZ:g}], got {hz!r}"
            )
        self.hz = float(hz)
        self.max_stacks = max(1, int(max_stacks))
        self.samples = 0
        self.dropped = 0
        self.started_unix: float | None = None
        self.stopped_unix: float | None = None
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self.started_unix = time.time()
        self.stopped_unix = None
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict[str, int]:
        """Stop sampling and return the collapsed-stack counts."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
            self.stopped_unix = time.time()
        return self.collapsed()

    # -- sampling ------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            with self._lock:
                self.samples += 1
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    key = _fold(frame)
                    if key in self._counts:
                        self._counts[key] += 1
                    elif len(self._counts) < self.max_stacks:
                        self._counts[key] = 1
                    else:
                        self.dropped += 1

    # -- views ---------------------------------------------------------
    def collapsed(self) -> dict[str, int]:
        """Collapsed-stack counts, heaviest first."""
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return dict(items)

    def collapsed_text(self) -> str:
        """``stack count`` lines — feed straight into flamegraph.pl."""
        return "\n".join(
            f"{stack} {count}" for stack, count in self.collapsed().items()
        )

    def snapshot(self) -> dict:
        with self._lock:
            samples = self.samples
            dropped = self.dropped
            n_stacks = len(self._counts)
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": samples,
            "distinct_stacks": n_stacks,
            "dropped_stacks": dropped,
            "started_unix": self.started_unix,
            "stopped_unix": self.stopped_unix,
        }


# ----------------------------------------------------------------------
# Process-global profiler (wire `profile` op + diag bundles)
# ----------------------------------------------------------------------
_LOCK = threading.Lock()
_PROFILER: SamplingProfiler | None = None


def start(hz: float = DEFAULT_HZ, *, max_stacks: int = 4096) -> dict:
    """Start (or report the already-running) global profiler.

    Starting while one is running is idempotent and keeps the running
    profiler's rate — two operators poking the same server must not
    silently reset each other's session.
    """
    global _PROFILER
    with _LOCK:
        if _PROFILER is not None and _PROFILER.running:
            return _PROFILER.snapshot()
        _PROFILER = SamplingProfiler(hz, max_stacks=max_stacks)
        _PROFILER.start()
        return _PROFILER.snapshot()


def stop() -> dict:
    """Stop the global profiler; returns its snapshot plus stacks."""
    with _LOCK:
        profiler = _PROFILER
        if profiler is None:
            return {"running": False, "samples": 0, "stacks": {}}
        stacks = profiler.stop()
        return {**profiler.snapshot(), "stacks": stacks}


def status() -> dict:
    """The global profiler's snapshot (``running: False`` if never on)."""
    with _LOCK:
        profiler = _PROFILER
    if profiler is None:
        return {"running": False, "samples": 0}
    return profiler.snapshot()


def bundle_section() -> dict | None:
    """Diag-bundle section: snapshot + stacks, ``None`` if never started."""
    with _LOCK:
        profiler = _PROFILER
    if profiler is None:
        return None
    return {**profiler.snapshot(), "stacks": profiler.collapsed()}
