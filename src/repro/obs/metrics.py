"""A generalized metrics registry: counters and callback gauges.

``server/metrics.py`` keeps its purpose-built request counters and
latency histograms but becomes a *client* of this registry: resource
gauges (RSS, live shm segments, per-session pool bytes, cache bytes)
registered here render into the same Prometheus text exposition and
the same ``stats`` snapshots.

Zero dependencies: RSS comes from ``/proc/self/statm`` with a
``resource.getrusage`` fallback.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

__all__ = [
    "Counter",
    "MetricsRegistry",
    "register_resource_gauges",
    "rss_bytes",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Resident-set size of this process in bytes (0 when unknowable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS; Linux is the target.
        return int(rss_kb) * 1024
    except Exception:
        return 0


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class _Gauge:
    __slots__ = ("name", "help", "fn")

    def __init__(self, name: str, help_text: str, fn: Callable[[], float]):
        self.name = name
        self.help = help_text
        self.fn = fn


class MetricsRegistry:
    """Named counters + callback gauges with Prometheus rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._gauges: dict[str, _Gauge] = {}
        self._counters: dict[str, Counter] = {}

    def register_gauge(self, name: str, fn: Callable[[], float], *,
                       help: str) -> None:
        """Register (or replace) a callback gauge; sampled at render time."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"metric {name!r} already registered as counter")
            self._gauges[name] = _Gauge(name, help, fn)

    def counter(self, name: str, *, help: str) -> Counter:
        """Get-or-create a counter (idempotent per name)."""
        with self._lock:
            if name in self._gauges:
                raise ValueError(f"metric {name!r} already registered as gauge")
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, help)
            return counter

    def attach_counter(self, counter: Counter) -> Counter:
        """Register an *existing* counter instance (replaces by name).

        Lets process-global counters (the resilience layer's retry /
        deadline / chaos totals) render through a per-server registry
        without the registry owning their lifetime — attaching the same
        instance to a second server lifecycle is a no-op rather than a
        reset.
        """
        with self._lock:
            if counter.name in self._gauges:
                raise ValueError(
                    f"metric {counter.name!r} already registered as gauge"
                )
            self._counters[counter.name] = counter
            return counter

    def unregister(self, name: str) -> None:
        with self._lock:
            self._gauges.pop(name, None)
            self._counters.pop(name, None)

    def collect(self) -> dict[str, float]:
        """JSON-safe snapshot of every metric's current value."""
        with self._lock:
            gauges = list(self._gauges.values())
            counters = list(self._counters.values())
        values: dict[str, float] = {}
        for gauge in gauges:
            try:
                values[gauge.name] = float(gauge.fn())
            except Exception:
                values[gauge.name] = float("nan")
        for counter in counters:
            values[counter.name] = counter.value
        return values

    def render_text(self) -> str:
        """Prometheus text exposition (HELP/TYPE pair per family)."""
        with self._lock:
            gauges = list(self._gauges.values())
            counters = list(self._counters.values())
        lines: list[str] = []
        for gauge in gauges:
            try:
                value = float(gauge.fn())
            except Exception:
                continue
            lines.append(f"# HELP {gauge.name} {gauge.help}")
            lines.append(f"# TYPE {gauge.name} gauge")
            lines.append(f"{gauge.name} {value:g}")
        for counter in counters:
            lines.append(f"# HELP {counter.name} {counter.help}")
            lines.append(f"# TYPE {counter.name} counter")
            lines.append(f"{counter.name} {counter.value}")
        return "\n".join(lines) + ("\n" if lines else "")


def register_resource_gauges(
    registry: MetricsRegistry,
    *,
    pool_bytes: Callable[[], int] | None = None,
    cache_bytes: Callable[[], int] | None = None,
) -> None:
    """Install the standard process-resource gauges on ``registry``.

    ``pool_bytes`` / ``cache_bytes`` are caller-supplied closures
    (e.g. summing over a server's active sessions); omitted gauges are
    skipped rather than reported as zero.

    Idempotent under re-registration: every standard gauge name is
    unregistered first, so a second server lifecycle in the same
    process (tests, embedded restarts) neither double-renders gauges
    nor leaves a previous server's closures sampling dead sessions
    when this call omits ``pool_bytes``/``cache_bytes``.
    """
    for name in ("repro_process_rss_bytes", "repro_shm_segments",
                 "repro_pool_bytes", "repro_cache_bytes"):
        registry.unregister(name)
    registry.register_gauge(
        "repro_process_rss_bytes", rss_bytes,
        help="Resident set size of the serving process.")

    def _shm_segments() -> int:
        from repro.service.procpool import live_segments

        return len(live_segments())

    registry.register_gauge(
        "repro_shm_segments", _shm_segments,
        help="Live shared-memory segments owned by this process.")
    if pool_bytes is not None:
        registry.register_gauge(
            "repro_pool_bytes", pool_bytes,
            help="Approximate bytes held by Monte-Carlo sample pools.")
    if cache_bytes is not None:
        registry.register_gauge(
            "repro_cache_bytes", cache_bytes,
            help="Approximate bytes held by result caches.")
