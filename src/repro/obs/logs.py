"""Structured event logging on the stdlib :mod:`logging` machinery.

Every noteworthy runtime event (pool growth jumps, checkpoint /
eviction / drain, worker crash rescue, budget exhaustion, slow
queries) flows through :func:`log_event` with a stable event name and
flat key/value fields.  Rendering is a formatter concern: the default
is human-readable text, ``--log-json`` switches the same records to
JSON lines.

The module installs **no handlers at import time**, so procpool
workers spawned with a fresh interpreter inherit nothing and stay
silent unless their parent explicitly configured them — spawn-safe by
construction.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, IO

from repro.obs import flight as _flight

__all__ = [
    "JsonLinesFormatter",
    "LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "log_event",
]

LOGGER_NAME = "repro"

#: Event-name vocabulary (documented in README's Observability section).
EVENTS = (
    "pool.grow",          # a Monte-Carlo pool drew new samples
    "budget.exhausted",   # precision budget hit its sample cap
    "checkpoint.save",    # a session snapshot was written
    "session.restore",    # a session was restored from a snapshot
    "session.evict",      # registry evicted an idle session
    "server.drain",       # graceful drain began / finished
    "worker.rescue",      # a broken process pool fell back in-process
    "slow_query",         # a query exceeded the slow-query threshold
    "diag.dump",          # a flight-recorder diag bundle was written
)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, event, then flat fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _TextFormatter(logging.Formatter):
    """``LEVEL logger event k=v k=v`` — the non-JSON default."""

    def format(self, record: logging.LogRecord) -> str:
        event = getattr(record, "event", None) or record.getMessage()
        fields = getattr(record, "fields", None) or {}
        tail = " ".join(f"{k}={v}" for k, v in fields.items())
        line = f"{record.levelname} {record.name} {event}"
        if tail:
            line = f"{line} {tail}"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` event logger, or a dotted child of it."""
    if name is None:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def log_event(event: str, *, level: int = logging.INFO,
              logger: logging.Logger | None = None, **fields: Any) -> None:
    """Emit one structured event; a no-op when the level is disabled.

    The flight recorder (when enabled) captures the event *before* the
    level check: it is a crash buffer, not a log sink, so a diag bundle
    holds recent INFO events even when the logger only emits warnings.
    The disabled path costs one module-int test.
    """
    if _flight._ENABLED:
        _flight.record_event(event, fields)
    log = logger if logger is not None else logging.getLogger(LOGGER_NAME)
    if not log.isEnabledFor(level):
        return
    log.log(level, event, extra={"event": event, "fields": fields})


def configure_logging(*, json_lines: bool = False, level: str | int = "warning",
                      stream: IO[str] | None = None) -> logging.Logger:
    """(Re)configure the ``repro`` logger; idempotent.

    Only handlers installed by this function are replaced, so embedding
    applications that attached their own handlers keep them.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    log = logging.getLogger(LOGGER_NAME)
    log.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else _TextFormatter())
    handler._repro_obs = True  # type: ignore[attr-defined]
    for existing in list(log.handlers):
        if getattr(existing, "_repro_obs", False):
            log.removeHandler(existing)
    log.addHandler(handler)
    log.propagate = False
    return log
