"""Flight recorder: a bounded in-memory ring of recent telemetry.

When a soak, chaos drill, or production incident fails, the final
report line is not evidence — the spans, events, and slow queries
*leading up to* the failure are.  The flight recorder passively
captures the last N of each into bounded, thread-safe ring buffers:

- **events** — every structured :func:`repro.obs.logs.log_event`,
  regardless of the logging level (the recorder is not a log sink;
  it is a crash buffer);
- **traces** — completed wire-trace stage reports (``"trace": true``
  requests), recorded by :func:`repro.server.protocol.dispatch`;
- **slow queries** — the server's ``slow_query`` records, carrying
  the ``trace_id`` when the request was traced so the wire trace and
  the server-side line can be joined;
- **metrics** — periodic :class:`~repro.server.metrics.ServerMetrics`
  snapshots (the server samples one every few seconds).

:func:`diag_bundle` freezes all four rings into one JSON-safe "diag
bundle", dumped on demand: ``SIGUSR2`` against a live server, the
``diag`` protocol op, a drain that hit checkpoint errors, or a failed
``loadgen.soak`` round.

Cost contract (the PR 7 rule): recorder **off** — the common case —
each instrumented call site pays one module-level integer truth test
(``if flight._ENABLED:``), exactly like the tracing fast path.
Recorder **on**: memory is bounded by the configured entry/byte caps;
each record pays one ``json.dumps`` to account its size (event rates
here are low — pool growth, slow queries, metrics ticks — not
per-request).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any

__all__ = [
    "FlightRecorder",
    "diag_bundle",
    "disable",
    "enable",
    "enabled",
    "get",
    "record_event",
    "record_metrics",
    "record_slow_query",
    "record_trace",
]

#: Bundle schema identifier; bump on incompatible layout changes.
DIAG_SCHEMA = "repro.diag/1"

# Module-level fast-path flag, mirroring repro.obs.tracing._ACTIVE:
# instrumented call sites guard with `if flight._ENABLED:` and pay one
# int truth test while the recorder is off.
_ENABLED = 0
_LOCK = threading.Lock()
_RECORDER: "FlightRecorder | None" = None
#: enable()/disable() nesting depth — a soak's hosted server and an
#: outer harness may both enable the process-global recorder.
_REFCOUNT = 0


def _entry_size(entry: dict) -> int:
    """The byte cost charged against a ring (also proves dumpability)."""
    return len(json.dumps(entry, default=str, separators=(",", ":")))


class _Ring:
    """A thread-safe ring bounded by entry count *and* total bytes."""

    __slots__ = ("max_entries", "max_bytes", "dropped", "_entries",
                 "_bytes", "_lock")

    def __init__(self, max_entries: int, max_bytes: int):
        self.max_entries = max(1, int(max_entries))
        self.max_bytes = max(1, int(max_bytes))
        self.dropped = 0
        self._entries: deque[tuple[dict, int]] = deque()
        self._bytes = 0
        self._lock = threading.Lock()

    def append(self, entry: dict) -> None:
        size = _entry_size(entry)
        with self._lock:
            if size > self.max_bytes:
                # One entry larger than the whole budget: dropping it
                # keeps the cap a hard invariant instead of a hope.
                self.dropped += 1
                return
            self._entries.append((entry, size))
            self._bytes += size
            while (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, old = self._entries.popleft()
                self._bytes -= old
                self.dropped += 1

    def snapshot(self) -> tuple[list[dict], int]:
        """``(entries oldest-first, dropped count)`` — consistent copy."""
        with self._lock:
            return [entry for entry, _ in self._entries], self.dropped

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class FlightRecorder:
    """Four bounded rings plus the bundle constructor.

    Parameters are per-ring entry caps and one per-ring byte cap
    (``max_bytes`` applies to *each* ring, so total recorder memory is
    bounded by ``4 * max_bytes`` worst case — 1 MiB at the defaults).
    """

    def __init__(
        self,
        *,
        max_events: int = 512,
        max_traces: int = 64,
        max_slow_queries: int = 128,
        max_metrics: int = 32,
        max_bytes: int = 256 * 1024,
    ):
        self.events = _Ring(max_events, max_bytes)
        self.traces = _Ring(max_traces, max_bytes)
        self.slow_queries = _Ring(max_slow_queries, max_bytes)
        self.metrics = _Ring(max_metrics, max_bytes)
        self.started_unix = time.time()

    # -- record --------------------------------------------------------
    def record_event(self, event: str, fields: dict | None = None) -> None:
        entry = {"t": round(time.time(), 3), "event": event}
        if fields:
            entry.update(fields)
        self.events.append(entry)

    def record_trace(self, report: dict) -> None:
        self.traces.append({"t": round(time.time(), 3), **report})

    def record_slow_query(self, record: dict) -> None:
        self.slow_queries.append({"t": round(time.time(), 3), **record})

    def record_metrics(self, snapshot: dict) -> None:
        self.metrics.append({"t": round(time.time(), 3), **snapshot})

    # -- dump ----------------------------------------------------------
    def bundle(
        self,
        reason: str,
        *,
        metrics_snapshot: dict | None = None,
        slo: dict | None = None,
    ) -> dict:
        """Freeze the rings into one JSON-safe diag bundle.

        ``metrics_snapshot`` (the caller's final metrics read) is
        appended to the metrics ring's entries so a bundle taken by a
        server always carries at least one snapshot even if the
        periodic sampler has not ticked yet.  The profiler section
        comes from the process-global sampling profiler (``None`` when
        it was never started).
        """
        from repro.obs import profile as obs_profile

        events, events_dropped = self.events.snapshot()
        traces, traces_dropped = self.traces.snapshot()
        slow, slow_dropped = self.slow_queries.snapshot()
        metrics, metrics_dropped = self.metrics.snapshot()
        if metrics_snapshot is not None:
            metrics = metrics + [
                {"t": round(time.time(), 3), **metrics_snapshot}
            ]
        doc: dict[str, Any] = {
            "schema": DIAG_SCHEMA,
            "reason": reason,
            "generated_unix": round(time.time(), 3),
            "recorder_started_unix": round(self.started_unix, 3),
            "events": events,
            "traces": traces,
            "slow_queries": slow,
            "metrics": metrics,
            "dropped": {
                "events": events_dropped,
                "traces": traces_dropped,
                "slow_queries": slow_dropped,
                "metrics": metrics_dropped,
            },
            "profile": obs_profile.bundle_section(),
        }
        if slo is not None:
            doc["slo"] = slo
        return doc


# ----------------------------------------------------------------------
# Process-global recorder (the instrumented call sites' target)
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True while the process-global recorder is capturing."""
    return _ENABLED > 0


def get() -> FlightRecorder | None:
    """The process-global recorder, or ``None`` while disabled."""
    return _RECORDER if _ENABLED else None


def enable(**caps) -> FlightRecorder:
    """Install (or re-enter) the process-global recorder.

    Nested enables share one recorder — a hosted server inside a test
    harness must not wipe the harness's rings; caps apply only to the
    outermost call.  Pair every call with :func:`disable`.
    """
    global _ENABLED, _RECORDER, _REFCOUNT
    with _LOCK:
        _REFCOUNT += 1
        if _RECORDER is None:
            _RECORDER = FlightRecorder(**caps)
        _ENABLED = 1
        return _RECORDER


def disable() -> None:
    """Leave one :func:`enable`; the last one out drops the recorder."""
    global _ENABLED, _RECORDER, _REFCOUNT
    with _LOCK:
        if _REFCOUNT == 0:
            return
        _REFCOUNT -= 1
        if _REFCOUNT == 0:
            _ENABLED = 0
            _RECORDER = None


def record_event(event: str, fields: dict | None = None) -> None:
    """Record one event on the global recorder (no-op while disabled).

    Hot call sites guard with ``if flight._ENABLED:`` themselves so
    the disabled path costs one int test, not a function call.
    """
    recorder = _RECORDER
    if _ENABLED and recorder is not None:
        recorder.record_event(event, fields)


def record_trace(report: dict) -> None:
    recorder = _RECORDER
    if _ENABLED and recorder is not None:
        recorder.record_trace(report)


def record_slow_query(record: dict) -> None:
    recorder = _RECORDER
    if _ENABLED and recorder is not None:
        recorder.record_slow_query(record)


def record_metrics(snapshot: dict) -> None:
    recorder = _RECORDER
    if _ENABLED and recorder is not None:
        recorder.record_metrics(snapshot)


def diag_bundle(
    reason: str,
    *,
    metrics_snapshot: dict | None = None,
    slo: dict | None = None,
) -> dict | None:
    """A bundle from the global recorder, or ``None`` while disabled."""
    recorder = _RECORDER
    if not _ENABLED or recorder is None:
        return None
    return recorder.bundle(
        reason, metrics_snapshot=metrics_snapshot, slo=slo
    )
