"""Per-dataset service-level objectives with burn-rate computation.

An operator states objectives once — ``--slo "p99:50ms,err:0.1%"`` —
and the tracker continuously scores each served dataset against them
using the per-dataset latency histograms and error counters that
:class:`repro.server.metrics.ServerMetrics` already maintains.  No
second measurement pipeline: the SLO engine is a pure *view* over
counters the hot path was already paying for.

The headline number per objective is the **burn rate**: the observed
violation fraction divided by the objective's allowance.  Burn 1.0
means the error budget is being consumed exactly as fast as the
objective permits; 2.0 means twice as fast (the classic page-at-burn
multi-window signal); 0 means no violations (or no traffic yet).

Latency violation counting is conservative against the fixed
histogram buckets: a request is "within objective" only when it
landed in a bucket whose upper bound is <= the target, so a target
that falls inside a bucket counts the whole bucket as violating.

Surfaces: the ``stats`` protocol op (``"slo"`` section), the
Prometheus exposition (``repro_slo_*`` families, labeled per dataset
and objective — rendered here because the generic
:class:`~repro.obs.metrics.MetricsRegistry` gauges are label-less),
and diag bundles.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

__all__ = ["SloSpec", "SloTracker", "parse_slo"]

_LATENCY_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")
_VALUE_RE = re.compile(r"^(\d+(?:\.\d+)?)(ms|s|us|%)?$")


@dataclass(frozen=True)
class SloSpec:
    """Parsed objectives: latency quantile targets + max error rate."""

    #: objective label -> (quantile in (0, 1), target seconds),
    #: e.g. ``{"p99": (0.99, 0.05)}``.
    latency: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: Maximum tolerated error fraction in [0, 1], or ``None``.
    error_rate: float | None = None
    #: The original spec string, echoed in snapshots.
    source: str = ""

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "latency": {
                label: {"quantile": q, "target_seconds": target}
                for label, (q, target) in self.latency.items()
            },
            "error_rate": self.error_rate,
        }


def parse_slo(spec: str) -> SloSpec:
    """Parse ``"p99:50ms,err:0.1%"`` into an :class:`SloSpec`.

    Grammar: comma-separated ``objective:value`` terms.  Objectives are
    ``pNN`` / ``pNN.N`` (latency quantile; value in ``us``/``ms``/``s``,
    default seconds) or ``err`` (value as a percentage with ``%`` or a
    bare fraction).  Raises :class:`ValueError` with the offending term
    on anything else.
    """
    latency: dict[str, tuple[float, float]] = {}
    error_rate: float | None = None
    text = spec.strip()
    if not text:
        raise ValueError("empty SLO spec")
    for term in text.split(","):
        term = term.strip()
        if not term:
            continue
        key, sep, raw = term.partition(":")
        key = key.strip().lower()
        raw = raw.strip().lower()
        if not sep or not raw:
            raise ValueError(f"SLO term {term!r} is not 'objective:value'")
        value_match = _VALUE_RE.match(raw)
        if value_match is None:
            raise ValueError(f"SLO term {term!r} has unparseable value {raw!r}")
        number = float(value_match.group(1))
        unit = value_match.group(2)
        if key == "err":
            if unit == "%":
                rate = number / 100.0
            elif unit is None:
                rate = number
            else:
                raise ValueError(
                    f"SLO term {term!r}: error rate takes '%' or a fraction"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"SLO term {term!r}: rate outside [0, 1]")
            if error_rate is not None:
                raise ValueError(f"duplicate 'err' objective in {spec!r}")
            error_rate = rate
            continue
        quantile_match = _LATENCY_RE.match(key)
        if quantile_match is None:
            raise ValueError(f"unknown SLO objective {key!r} in {term!r}")
        quantile = float(quantile_match.group(1)) / 100.0
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"SLO term {term!r}: quantile outside (0, 100)")
        if unit == "%":
            raise ValueError(f"SLO term {term!r}: latency target takes a duration")
        scale = {"us": 1e-6, "ms": 1e-3, "s": 1.0, None: 1.0}[unit]
        target = number * scale
        if target <= 0:
            raise ValueError(f"SLO term {term!r}: target must be positive")
        if key in latency:
            raise ValueError(f"duplicate {key!r} objective in {spec!r}")
        latency[key] = (quantile, target)
    if not latency and error_rate is None:
        raise ValueError(f"SLO spec {spec!r} defines no objectives")
    return SloSpec(latency=latency, error_rate=error_rate, source=text)


def _within(bounds, buckets, target: float) -> int:
    """Observations provably <= target (whole buckets only)."""
    within = 0
    for bound, n in zip(bounds, buckets):
        if bound <= target:
            within += n
        else:
            break
    return within


class SloTracker:
    """Scores per-dataset traffic against an :class:`SloSpec`.

    ``view`` is a zero-argument callable returning the per-dataset
    counters — :meth:`repro.server.metrics.ServerMetrics.dataset_view`
    — kept as a callable so the tracker holds no lock of its own and
    never calls back into a locked metrics object re-entrantly.
    Datasets named via :meth:`watch` (the registry's catalogue) appear
    in every snapshot even before their first request, so dashboards
    and the CI promlint see the series immediately.
    """

    def __init__(self, spec: SloSpec, view):
        self.spec = spec
        self._view = view
        self._known: set[str] = set()
        self._lock = threading.Lock()

    def watch(self, *datasets: str) -> None:
        """Pre-register dataset names so they export zeroed series."""
        with self._lock:
            self._known.update(d for d in datasets if d)

    # ------------------------------------------------------------------
    def _score(self, stats: dict) -> dict:
        requests = stats.get("requests", 0)
        errors = stats.get("errors", 0)
        bounds = stats.get("bounds") or ()
        buckets = stats.get("buckets") or ()
        count = stats.get("count", 0)
        out: dict = {"requests": requests, "errors": errors, "objectives": {}}
        compliant = True
        for label, (quantile, target) in self.spec.latency.items():
            allowed = 1.0 - quantile
            if count:
                violations = count - _within(bounds, buckets, target)
                violation_rate = violations / count
            else:
                violations = 0
                violation_rate = 0.0
            burn = (violation_rate / allowed) if allowed > 0 else 0.0
            ok = burn <= 1.0
            compliant = compliant and ok
            out["objectives"][label] = {
                "target_seconds": target,
                "violations": violations,
                "violation_rate": round(violation_rate, 6),
                "burn_rate": round(burn, 4),
                "compliant": ok,
            }
        if self.spec.error_rate is not None:
            rate = (errors / requests) if requests else 0.0
            target = self.spec.error_rate
            burn = (rate / target) if target > 0 else (
                0.0 if rate == 0 else float("inf")
            )
            ok = rate <= target
            compliant = compliant and ok
            out["objectives"]["err"] = {
                "target_rate": target,
                "observed_rate": round(rate, 6),
                "burn_rate": round(burn, 4) if burn != float("inf") else "inf",
                "compliant": ok,
            }
        out["compliant"] = compliant
        return out

    def snapshot(self) -> dict:
        """JSON-safe per-dataset scores for ``stats`` and diag bundles."""
        per_dataset = self._view()
        with self._lock:
            names = self._known | set(per_dataset)
        empty = {"requests": 0, "errors": 0, "count": 0}
        datasets = {
            name: self._score(per_dataset.get(name, empty))
            for name in sorted(names)
        }
        return {
            "spec": self.spec.to_dict(),
            "datasets": datasets,
            "compliant": all(d["compliant"] for d in datasets.values()),
        }

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus families: labeled burn rates, targets, compliance.

        Rendered here (not via :class:`MetricsRegistry`) because these
        series carry ``dataset``/``objective`` labels that the generic
        registry's scalar gauges cannot express.
        """
        snap = self.snapshot()
        lines = [
            "# HELP repro_slo_latency_target_seconds Configured latency objective.",
            "# TYPE repro_slo_latency_target_seconds gauge",
        ]
        for label, (quantile, target) in sorted(self.spec.latency.items()):
            lines.append(
                f'repro_slo_latency_target_seconds{{objective="{label}"}} '
                f"{target:g}"
            )
        lines.append(
            "# HELP repro_slo_burn_rate Error-budget burn rate per dataset "
            "and objective (1.0 = burning exactly at the allowance)."
        )
        lines.append("# TYPE repro_slo_burn_rate gauge")
        for name, score in snap["datasets"].items():
            for label, obj in sorted(score["objectives"].items()):
                burn = obj["burn_rate"]
                value = "+Inf" if burn == "inf" else f"{burn:g}"
                lines.append(
                    f'repro_slo_burn_rate{{dataset="{name}",'
                    f'objective="{label}"}} {value}'
                )
        lines.append(
            "# HELP repro_slo_compliant Whether the dataset currently "
            "meets every objective (1 = yes)."
        )
        lines.append("# TYPE repro_slo_compliant gauge")
        for name, score in snap["datasets"].items():
            lines.append(
                f'repro_slo_compliant{{dataset="{name}"}} '
                f"{1 if score['compliant'] else 0}"
            )
        if self.spec.error_rate is not None:
            lines.append(
                "# HELP repro_slo_error_rate Observed error fraction per dataset."
            )
            lines.append("# TYPE repro_slo_error_rate gauge")
            for name, score in snap["datasets"].items():
                obj = score["objectives"].get("err")
                if obj is not None:
                    lines.append(
                        f'repro_slo_error_rate{{dataset="{name}"}} '
                        f"{obj['observed_rate']:g}"
                    )
        return "\n".join(lines) + "\n"
