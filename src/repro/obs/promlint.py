"""A small linter for the Prometheus text exposition format.

Used both by unit tests and by CI's server-smoke job, which scrapes
the live ``--metrics-port`` endpoint and fails the build on a
malformed exposition.  Checks:

- every sample's metric family declares ``# HELP`` and ``# TYPE``
  (histogram samples ``*_bucket``/``*_sum``/``*_count`` resolve to
  their base family);
- at most one HELP and one TYPE line per family;
- no duplicate series (same name + label set);
- histogram buckets are cumulative (non-decreasing in ``le`` order),
  end in ``le="+Inf"``, and the +Inf bucket equals ``*_count``.
"""

from __future__ import annotations

import math
import re

__all__ = ["lint"]

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\S+)?$"  # optional timestamp
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family(name: str, types: dict[str, str]) -> str:
    """Resolve a sample name to its declared metric family."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def _parse_le(labels: str) -> tuple[str, float | None]:
    """Split a label string into (labels-without-le, le value)."""
    parts = [p for p in labels.split(",") if p]
    le: float | None = None
    rest = []
    for part in parts:
        if part.startswith("le="):
            raw = part[3:].strip('"')
            le = math.inf if raw == "+Inf" else float(raw)
        else:
            rest.append(part)
    return ",".join(sorted(rest)), le


def lint(text: str) -> list[str]:
    """Return a list of problems; an empty list means a clean exposition."""
    errors: list[str] = []
    helps: dict[str, int] = {}
    types: dict[str, str] = {}
    series: set[tuple[str, str]] = set()
    # (family, labels-without-le) -> [(le, value)], plus _count values.
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, str], float] = {}
    samples: list[tuple[str, str, float, int]] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(None, 3)[2]
            helps[name] = helps.get(name, 0) + 1
            if helps[name] > 1:
                errors.append(f"line {lineno}: duplicate HELP for {name}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 4)
            name, kind = parts[2], parts[3] if len(parts) > 3 else ""
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels") or ""
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value in {line!r}")
            continue
        key = (name, ",".join(sorted(p for p in labels.split(",") if p)))
        if key in series:
            errors.append(f"line {lineno}: duplicate series {name}{{{labels}}}")
        series.add(key)
        samples.append((name, labels, value, lineno))

    for name, labels, value, lineno in samples:
        family = _family(name, types)
        if family not in types:
            errors.append(f"line {lineno}: sample {name} has no TYPE")
        if family not in helps:
            errors.append(f"line {lineno}: sample {name} has no HELP")
        if name.endswith("_bucket") and types.get(family) == "histogram":
            rest, le = _parse_le(labels)
            if le is None:
                errors.append(f"line {lineno}: histogram bucket without le")
            else:
                buckets.setdefault((family, rest), []).append((le, value))
        elif name.endswith("_count") and types.get(family) == "histogram":
            rest, _ = _parse_le(labels)
            counts[(family, rest)] = value

    for (family, rest), entries in buckets.items():
        entries.sort(key=lambda pair: pair[0])
        last = -math.inf
        for le, value in entries:
            if value < last:
                errors.append(
                    f"{family}{{{rest}}}: bucket le={le!r} decreases "
                    f"({value} < {last})")
            last = value
        if not entries or entries[-1][0] != math.inf:
            errors.append(f"{family}{{{rest}}}: missing le=\"+Inf\" bucket")
        else:
            total = counts.get((family, rest))
            if total is not None and entries[-1][1] != total:
                errors.append(
                    f"{family}{{{rest}}}: +Inf bucket {entries[-1][1]} "
                    f"!= count {total}")
    return errors
