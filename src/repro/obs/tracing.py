"""Hierarchical tracing spans with a near-zero disabled fast path.

Tracing is *opt-in per operation*: a caller opens a :func:`trace`
context, and every :func:`span` / :func:`record` call reached *on that
thread* while the context is open attaches a timed node to the trace
tree.  When no trace is open — the overwhelmingly common case — the
instrumented call sites pay one module-level integer truth test and
receive a shared no-op singleton: no allocation, no contextvar read.

The span stack lives in a :class:`contextvars.ContextVar`, so traces
are isolated per thread (and per asyncio task).  Worker threads and
worker processes never open spans of their own: the sampling and the
plan-order tally folds both happen on the caller's thread, so
caller-side instrumentation accounts for the full pass.

>>> from repro import obs
>>> with obs.trace("query") as t:
...     with obs.span("observe.pass", n=1000):
...         pass
>>> t.stages()[0]["name"]
'observe.pass'
"""

from __future__ import annotations

import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "record",
    "span",
    "stage_report",
    "trace",
    "tracing_enabled",
]

# Module-level fast-path flag: number of traces currently open across
# the whole process.  Instrumented call sites test this single int
# before doing anything else; when it is zero (tracing disabled) the
# hot path allocates nothing.
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()

# (trace, current_span) for the thread/task that opened the trace.
_STACK: ContextVar[tuple["Trace", "Span"] | None] = ContextVar(
    "repro_obs_stack", default=None
)


def tracing_enabled() -> bool:
    """True when at least one trace is open somewhere in the process.

    Hot loops that *accumulate* timings (rather than opening spans)
    guard on this so the disabled path stays free of clock reads.
    """
    return _ACTIVE > 0


class Span:
    """One timed stage in a trace tree."""

    __slots__ = ("name", "fields", "seconds", "count", "children", "_start")

    def __init__(self, name: str, fields: dict[str, Any] | None = None):
        self.name = name
        self.fields = fields or {}
        self.seconds = 0.0
        self.count = 1
        self.children: list[Span] = []
        self._start = 0.0

    def set(self, **fields: Any) -> None:
        """Attach fields discovered after the span opened."""
        self.fields.update(fields)

    def as_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "count": self.count,
        }
        if self.fields:
            node["fields"] = dict(self.fields)
        if self.children:
            node["children"] = [c.as_dict() for c in self.children]
        return node


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **fields: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that times one span and pushes it on the stack."""

    __slots__ = ("_span", "_token")

    def __init__(self, trace: "Trace", parent: Span, name: str,
                 fields: dict[str, Any]):
        node = Span(name, fields)
        parent.children.append(node)
        self._span = node
        self._token = _STACK.set((trace, node))

    def __enter__(self) -> Span:
        self._span._start = time.perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._span.seconds = time.perf_counter() - self._span._start
        _STACK.reset(self._token)
        return False

    def set(self, **fields: Any) -> None:
        self._span.fields.update(fields)


def span(name: str, **fields: Any):
    """Open a child span under the current trace.

    Returns a shared no-op object when tracing is disabled (or when the
    calling thread has no open trace), so call sites never need their
    own enabled-check.
    """
    if not _ACTIVE:
        return _NULL_SPAN
    top = _STACK.get()
    if top is None:
        return _NULL_SPAN
    return _LiveSpan(top[0], top[1], name, fields)


def record(name: str, seconds: float, *, count: int = 1,
           merge: bool = True, **fields: Any) -> None:
    """Attach a pre-measured duration as a span under the current span.

    Used where per-event spans would be too fine-grained (per-chunk
    sample/reduce stages): the instrumented loop accumulates floats
    locally — guarded by :func:`tracing_enabled` — and records one
    aggregate node per pass.  With ``merge=True`` repeated records of
    the same name under the same parent fold into one node.
    """
    if not _ACTIVE:
        return
    top = _STACK.get()
    if top is None:
        return
    parent = top[1]
    if merge:
        for child in parent.children:
            if child.name == name and not child.children:
                child.seconds += seconds
                child.count += count
                if fields:
                    child.fields.update(fields)
                return
    node = Span(name, dict(fields))
    node.seconds = seconds
    node.count = count
    parent.children.append(node)


class Trace:
    """Collector for one traced operation (a tree of spans)."""

    def __init__(self, name: str, trace_id: str | None = None,
                 fields: dict[str, Any] | None = None):
        self.trace_id = str(trace_id) if trace_id else uuid.uuid4().hex[:16]
        self.root = Span(name, fields)
        self._token: object | None = None

    # -- collection ---------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return self.root.seconds

    def add_stage(self, name: str, seconds: float, **fields: Any) -> None:
        """Graft an externally measured stage onto the root.

        Used by the server for stages measured outside the dispatch
        thread's context (e.g. event-loop-side RW-lock waits).
        """
        node = Span(name, dict(fields))
        node.seconds = seconds
        self.root.children.append(node)

    # -- summaries ----------------------------------------------------

    def stages(self) -> list[dict[str, Any]]:
        """Flatten the tree into per-name aggregates, first-seen order."""
        order: list[str] = []
        agg: dict[str, dict[str, Any]] = {}

        def walk(node: Span) -> None:
            for child in node.children:
                entry = agg.get(child.name)
                if entry is None:
                    order.append(child.name)
                    agg[child.name] = {
                        "name": child.name,
                        "seconds": child.seconds,
                        "count": child.count,
                    }
                else:
                    entry["seconds"] += child.seconds
                    entry["count"] += child.count
                walk(child)

        walk(self.root)
        for entry in agg.values():
            entry["seconds"] = round(entry["seconds"], 9)
        return [agg[name] for name in order]

    def coverage(self) -> float:
        """Fraction of root wall-clock accounted for by direct stages."""
        total = self.root.seconds
        if total <= 0.0:
            return 1.0
        covered = sum(c.seconds for c in self.root.children)
        return min(covered / total, 1.0)

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "total_seconds": round(self.total_seconds, 9),
            "coverage": round(self.coverage(), 4),
            "stages": self.stages(),
            "spans": self.root.as_dict(),
        }


def stage_report(trace: Trace) -> dict[str, Any]:
    """The shared ``"stages"`` schema written by benches and the wire.

    ``{"total_seconds": float, "coverage": float,
       "stages": [{"name", "seconds", "count"}, ...]}``
    """
    return {
        "total_seconds": round(trace.total_seconds, 9),
        "coverage": round(trace.coverage(), 4),
        "stages": trace.stages(),
    }


class _TraceContext:
    __slots__ = ("_trace", "_token")

    def __init__(self, trace: Trace):
        self._trace = trace
        self._token = None

    def __enter__(self) -> Trace:
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE += 1
        self._token = _STACK.set((self._trace, self._trace.root))
        self._trace.root._start = time.perf_counter()
        return self._trace

    def __exit__(self, *exc: object) -> bool:
        global _ACTIVE
        root = self._trace.root
        root.seconds = time.perf_counter() - root._start
        _STACK.reset(self._token)
        with _ACTIVE_LOCK:
            _ACTIVE -= 1
        return False


def trace(name: str, *, trace_id: str | None = None, **fields: Any):
    """Open a trace: every span on this thread nests under ``name``."""
    return _TraceContext(Trace(name, trace_id=trace_id, fields=fields))


def current_trace() -> Trace | None:
    """The trace open on the calling thread, if any."""
    if not _ACTIVE:
        return None
    top = _STACK.get()
    return top[0] if top is not None else None
