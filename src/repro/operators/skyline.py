"""Skyline (Pareto-optimal set) computation.

The skyline of a dataset is the set of items not dominated by any other
item (Börzsönyi, Kossmann & Stocker, ICDE 2001 — reference [8] of the
paper).  Section 2.2.5 contrasts it with the most stable top-k set:
stable top-k items need not be skyline members, as the paper's toy
example ``{t1(1,0), t2(.99,.99), ..., t5(0,1)}`` shows.  The test-suite
reproduces that example against this implementation.

A block-nested-loops style algorithm with presorting is used: items are
ordered by descending attribute sum, which guarantees no later item can
dominate an earlier *skyline* member, so one pass with an incrementally
grown window suffices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["skyline", "is_dominated", "dominance_count", "k_skyband"]


def skyline(values: np.ndarray) -> np.ndarray:
    """Indices of the skyline (non-dominated) items, ascending.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix; larger is better on every attribute.

    Notes
    -----
    Exact duplicates of a skyline point are all kept: dominance requires
    strict superiority in at least one attribute, so equal items do not
    dominate each other (matching :func:`repro.geometry.dual.dominates`).
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("values must be a 2-D array (n, d)")
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # Presort by descending sum: a dominator's sum is mathematically
    # strictly larger, so it is *almost* always processed first.  The
    # exception is floating point: a dominating margin smaller than the
    # sum's rounding unit yields an equal computed sum and an arbitrary
    # order, so an undominated candidate must still evict window members
    # it dominates (standard block-nested-loops behaviour).
    order = np.argsort(-pts.sum(axis=1), kind="stable")
    window: list[int] = []
    window_pts: list[np.ndarray] = []
    for idx in order:
        candidate = pts[idx]
        dominated = False
        for w in window_pts:
            if np.all(w >= candidate) and np.any(w > candidate):
                dominated = True
                break
        if not dominated:
            alive = [
                j
                for j, w in enumerate(window_pts)
                if not (np.all(candidate >= w) and np.any(candidate > w))
            ]
            if len(alive) != len(window):
                window = [window[j] for j in alive]
                window_pts = [window_pts[j] for j in alive]
            window.append(int(idx))
            window_pts.append(candidate)
    return np.array(sorted(window), dtype=np.intp)


def k_skyband(values: np.ndarray, k: int, *, chunk: int = 512) -> np.ndarray:
    """Indices of items with fewer than ``k`` *strict* dominators, ascending.

    The strict k-skyband (Papadias et al., dominance with ``>`` in
    *every* attribute) is a sound top-k candidate set for non-negative
    linear scoring: if ``x`` beats ``z`` in every attribute then
    ``f_w(x) > f_w(z)`` for every non-zero ``w >= 0``, so an item with
    ``k`` strict dominators can never enter a top-k.  The engine's
    randomized backend uses this as a pruning index for its top-k
    observe path.

    A windowed one-pass algorithm: items are processed in descending
    attribute-sum order (a strict dominator always has a strictly larger
    sum) and each item is counted only against *kept* items — sufficient
    because dominance is transitive, so any excluded dominator certifies
    ``k`` kept dominators.  Cost ``O(n * band * d)`` instead of the
    naive ``O(n^2 d)``.

    When a dominating margin is below the sum's floating-point rounding
    unit the processing order between the two items is arbitrary and a
    dominator may go uncounted; the result is then a *superset* of the
    exact band — the safe direction for pruning, which only requires
    that no viable candidate is excluded.
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("values must be a 2-D array (n, d)")
    n = pts.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 0:
        return np.empty(0, dtype=np.intp)
    sums = pts.sum(axis=1)
    order = np.argsort(-sums, kind="stable")
    sorted_pts = np.ascontiguousarray(pts[order])
    sorted_sums = sums[order]
    kept_blocks: list[np.ndarray] = []
    kept_idx: list[np.ndarray] = []
    kept = np.empty((0, pts.shape[1]))
    for start in range(0, n, chunk):
        block = sorted_pts[start : start + chunk]
        block_sums = sorted_sums[start : start + chunk]
        counts = np.zeros(block.shape[0], dtype=np.int64)
        if kept.shape[0]:
            counts += (kept[None, :, :] > block[:, None, :]).all(axis=2).sum(axis=1)
        # Within the block only strictly-larger-sum items can dominate.
        inner = (block[None, :, :] > block[:, None, :]).all(axis=2)
        inner &= block_sums[None, :] > block_sums[:, None]
        counts += inner.sum(axis=1)
        keep = counts < k
        if keep.any():
            kept_blocks.append(block[keep])
            kept_idx.append(order[start : start + chunk][keep])
            kept = np.concatenate(kept_blocks, axis=0)
    return np.sort(np.concatenate(kept_idx)).astype(np.intp)


def is_dominated(values: np.ndarray, index: int) -> bool:
    """Is item ``index`` dominated by any other item in ``values``?"""
    pts = np.asarray(values, dtype=np.float64)
    candidate = pts[index]
    geq = np.all(pts >= candidate, axis=1)
    gt = np.any(pts > candidate, axis=1)
    geq[index] = False
    return bool(np.any(geq & gt))


def dominance_count(values: np.ndarray) -> np.ndarray:
    """For each item, the number of items it dominates.

    Used by analyses of attribute correlation (section 6.2's Figure 21
    explanation: correlated data produce many dominance relationships,
    fewer feasible rankings, and a more skewed stability distribution).
    Quadratic; intended for datasets up to a few thousand items.
    """
    pts = np.asarray(values, dtype=np.float64)
    n = pts.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        geq = np.all(pts[i] >= pts, axis=1)
        gt = np.any(pts[i] > pts, axis=1)
        geq[i] = False
        counts[i] = int(np.sum(geq & gt))
    return counts
