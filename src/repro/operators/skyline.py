"""Skyline (Pareto-optimal set) computation.

The skyline of a dataset is the set of items not dominated by any other
item (Börzsönyi, Kossmann & Stocker, ICDE 2001 — reference [8] of the
paper).  Section 2.2.5 contrasts it with the most stable top-k set:
stable top-k items need not be skyline members, as the paper's toy
example ``{t1(1,0), t2(.99,.99), ..., t5(0,1)}`` shows.  The test-suite
reproduces that example against this implementation.

A block-nested-loops style algorithm with presorting is used: items are
ordered by descending attribute sum, which guarantees no later item can
dominate an earlier *skyline* member, so one pass with an incrementally
grown window suffices.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "skyline",
    "is_dominated",
    "dominance_count",
    "k_skyband",
    "KSkybandIndex",
]


def skyline(values: np.ndarray) -> np.ndarray:
    """Indices of the skyline (non-dominated) items, ascending.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix; larger is better on every attribute.

    Notes
    -----
    Exact duplicates of a skyline point are all kept: dominance requires
    strict superiority in at least one attribute, so equal items do not
    dominate each other (matching :func:`repro.geometry.dual.dominates`).
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("values must be a 2-D array (n, d)")
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # Presort by descending sum: a dominator's sum is mathematically
    # strictly larger, so it is *almost* always processed first.  The
    # exception is floating point: a dominating margin smaller than the
    # sum's rounding unit yields an equal computed sum and an arbitrary
    # order, so an undominated candidate must still evict window members
    # it dominates (standard block-nested-loops behaviour).
    order = np.argsort(-pts.sum(axis=1), kind="stable")
    window: list[int] = []
    window_pts: list[np.ndarray] = []
    for idx in order:
        candidate = pts[idx]
        dominated = False
        for w in window_pts:
            if np.all(w >= candidate) and np.any(w > candidate):
                dominated = True
                break
        if not dominated:
            alive = [
                j
                for j, w in enumerate(window_pts)
                if not (np.all(candidate >= w) and np.any(candidate > w))
            ]
            if len(alive) != len(window):
                window = [window[j] for j in alive]
                window_pts = [window_pts[j] for j in alive]
            window.append(int(idx))
            window_pts.append(candidate)
    return np.array(sorted(window), dtype=np.intp)


class KSkybandIndex:
    """Reusable strict k-skyband index over one attribute matrix.

    The strict k-skyband (Papadias et al., dominance with ``>`` in
    *every* attribute) is a sound top-k candidate set for non-negative
    linear scoring: if ``x`` beats ``z`` in every attribute then
    ``f_w(x) > f_w(z)`` for every non-zero ``w >= 0``, so an item with
    ``k`` strict dominators can never enter a top-k.  The engine's
    randomized backend uses the band as a pruning index for its top-k
    observe path, and a :class:`repro.service.StabilitySession` shares
    one index across every operator it creates — bands are cached per
    ``k``, and the sum-order presort is computed once.

    Build paths:

    - ``d == 2`` — an exact incremental heap sweep: items are processed
      in descending ``x1`` order while a size-``k`` min-heap tracks the
      ``k`` largest ``x2`` values among strictly-``x1``-greater items,
      so each item's "has >= k strict dominators" test is one heap
      peek.  ``O(n log n)`` total, independent of the band size, and
      exact even under attribute ties.
    - ``d > 2`` — the windowed sum-order scan, counting each candidate
      only against *kept* items (sufficient: dominance is transitive,
      so any excluded dominator certifies ``k`` kept dominators) — but
      processed against the kept set block-by-block with saturating
      counts: a candidate stops scanning the moment it reaches ``k``
      dominators.  Because kept blocks arrive in descending sum order,
      heavily dominated items saturate against the first blocks, which
      avoids the ``O(n * band)`` full-window blowup at ``n >= 100_000``
      (and the quadratic re-concatenation of the window) that the
      previous implementation paid.

    For ``d > 2``, when a dominating margin is below the sum's
    floating-point rounding unit the processing order between the two
    items is arbitrary and a dominator may go uncounted; the result is
    then a *superset* of the exact band — the safe direction for
    pruning, which only requires that no viable candidate is excluded.
    """

    def __init__(self, values: np.ndarray, *, chunk: int = 512):
        pts = np.asarray(values, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("values must be a 2-D array (n, d)")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self._pts = pts
        self._chunk = int(chunk)
        # Lazy sum-descending presort, shared by every band(k) build.
        self._order: np.ndarray | None = None
        self._sorted_pts: np.ndarray | None = None
        self._sorted_sums: np.ndarray | None = None
        self._bands: dict[int, np.ndarray] = {}

    @property
    def n_items(self) -> int:
        return self._pts.shape[0]

    @property
    def built_bands(self) -> tuple[int, ...]:
        """The ``k`` values whose bands are already cached, ascending."""
        return tuple(sorted(self._bands))

    def band(self, k: int) -> np.ndarray:
        """Indices of items with fewer than ``k`` strict dominators, ascending.

        Cached per ``k``; repeated calls return the same array.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k not in self._bands:
            band = self._build(k)
            band.setflags(write=False)
            self._bands[k] = band
        return self._bands[k]

    # ------------------------------------------------------------------
    def _build(self, k: int) -> np.ndarray:
        n, d = self._pts.shape
        if n == 0:
            return np.empty(0, dtype=np.intp)
        if k >= n:
            return np.arange(n, dtype=np.intp)
        if d == 2:
            return self._build_2d(k)
        return self._build_md(k)

    def _build_2d(self, k: int) -> np.ndarray:
        pts = self._pts
        # Descending x1, then descending x2 (tie order within an equal-
        # x1 group is irrelevant: equal x1 precludes strict dominance).
        order = np.lexsort((-pts[:, 1], -pts[:, 0]))
        xs = pts[order, 0]
        ys = pts[order, 1]
        n = order.shape[0]
        kept: list[int] = []
        heap: list[float] = []  # min-heap of the k largest x2 so far
        i = 0
        while i < n:
            j = i
            while j < n and xs[j] == xs[i]:
                j += 1
            # Heap holds only strictly-x1-greater items here: an item is
            # excluded iff the k-th largest of their x2 values beats it.
            for p in range(i, j):
                if len(heap) < k or heap[0] <= ys[p]:
                    kept.append(int(order[p]))
            for p in range(i, j):
                if len(heap) < k:
                    heapq.heappush(heap, float(ys[p]))
                elif ys[p] > heap[0]:
                    heapq.heapreplace(heap, float(ys[p]))
            i = j
        return np.array(sorted(kept), dtype=np.intp)

    def _build_md(self, k: int) -> np.ndarray:
        pts = self._pts
        chunk = self._chunk
        n = pts.shape[0]
        if self._order is None:
            self._order = np.argsort(-pts.sum(axis=1), kind="stable")
            self._sorted_pts = np.ascontiguousarray(pts[self._order])
            self._sorted_sums = self._sorted_pts.sum(axis=1)
        order = self._order
        sorted_pts = self._sorted_pts
        sorted_sums = self._sorted_sums
        kept_blocks: list[np.ndarray] = []
        kept_idx: list[np.ndarray] = []
        for start in range(0, n, chunk):
            block = sorted_pts[start : start + chunk]
            block_sums = sorted_sums[start : start + chunk]
            counts = np.zeros(block.shape[0], dtype=np.int64)
            # Saturating scan: kept blocks are in descending sum order —
            # the strongest dominators first — so most non-band items
            # reach k within the first block and drop out of the scan.
            alive = np.arange(block.shape[0])
            for kb in kept_blocks:
                if alive.size == 0:
                    break
                sub = block[alive]
                counts[alive] += (
                    (kb[None, :, :] > sub[:, None, :]).all(axis=2).sum(axis=1)
                )
                alive = alive[counts[alive] < k]
            # Within the block only strictly-larger-sum items can dominate.
            inner = (block[None, :, :] > block[:, None, :]).all(axis=2)
            inner &= block_sums[None, :] > block_sums[:, None]
            counts += inner.sum(axis=1)
            keep = counts < k
            if keep.any():
                kept_blocks.append(np.ascontiguousarray(block[keep]))
                kept_idx.append(order[start : start + chunk][keep])
        return np.sort(np.concatenate(kept_idx)).astype(np.intp)


def k_skyband(values: np.ndarray, k: int, *, chunk: int = 512) -> np.ndarray:
    """Indices of items with fewer than ``k`` *strict* dominators, ascending.

    One-shot convenience over :class:`KSkybandIndex` (which callers
    needing several ``k`` values or repeated builds should hold on to).
    """
    return KSkybandIndex(values, chunk=chunk).band(k)


def is_dominated(values: np.ndarray, index: int) -> bool:
    """Is item ``index`` dominated by any other item in ``values``?"""
    pts = np.asarray(values, dtype=np.float64)
    candidate = pts[index]
    geq = np.all(pts >= candidate, axis=1)
    gt = np.any(pts > candidate, axis=1)
    geq[index] = False
    return bool(np.any(geq & gt))


def dominance_count(values: np.ndarray) -> np.ndarray:
    """For each item, the number of items it dominates.

    Used by analyses of attribute correlation (section 6.2's Figure 21
    explanation: correlated data produce many dominance relationships,
    fewer feasible rankings, and a more skewed stability distribution).
    Quadratic; intended for datasets up to a few thousand items.
    """
    pts = np.asarray(values, dtype=np.float64)
    n = pts.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        geq = np.all(pts[i] >= pts, axis=1)
        gt = np.any(pts[i] > pts, axis=1)
        geq[i] = False
        counts[i] = int(np.sum(geq & gt))
    return counts
