"""Skyline (Pareto-optimal set) computation.

The skyline of a dataset is the set of items not dominated by any other
item (Börzsönyi, Kossmann & Stocker, ICDE 2001 — reference [8] of the
paper).  Section 2.2.5 contrasts it with the most stable top-k set:
stable top-k items need not be skyline members, as the paper's toy
example ``{t1(1,0), t2(.99,.99), ..., t5(0,1)}`` shows.  The test-suite
reproduces that example against this implementation.

A block-nested-loops style algorithm with presorting is used: items are
ordered by descending attribute sum, which guarantees no later item can
dominate an earlier *skyline* member, so one pass with an incrementally
grown window suffices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["skyline", "is_dominated", "dominance_count"]


def skyline(values: np.ndarray) -> np.ndarray:
    """Indices of the skyline (non-dominated) items, ascending.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix; larger is better on every attribute.

    Notes
    -----
    Exact duplicates of a skyline point are all kept: dominance requires
    strict superiority in at least one attribute, so equal items do not
    dominate each other (matching :func:`repro.geometry.dual.dominates`).
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("values must be a 2-D array (n, d)")
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # Presort by descending sum: if sum(a) >= sum(b) then b cannot
    # dominate a unless they are equal in every attribute.
    order = np.argsort(-pts.sum(axis=1), kind="stable")
    window: list[int] = []
    window_pts: list[np.ndarray] = []
    for idx in order:
        candidate = pts[idx]
        dominated = False
        for w in window_pts:
            if np.all(w >= candidate) and np.any(w > candidate):
                dominated = True
                break
        if not dominated:
            window.append(int(idx))
            window_pts.append(candidate)
    return np.array(sorted(window), dtype=np.intp)


def is_dominated(values: np.ndarray, index: int) -> bool:
    """Is item ``index`` dominated by any other item in ``values``?"""
    pts = np.asarray(values, dtype=np.float64)
    candidate = pts[index]
    geq = np.all(pts >= candidate, axis=1)
    gt = np.any(pts > candidate, axis=1)
    geq[index] = False
    return bool(np.any(geq & gt))


def dominance_count(values: np.ndarray) -> np.ndarray:
    """For each item, the number of items it dominates.

    Used by analyses of attribute correlation (section 6.2's Figure 21
    explanation: correlated data produce many dominance relationships,
    fewer feasible rankings, and a more skewed stability distribution).
    Quadratic; intended for datasets up to a few thousand items.
    """
    pts = np.asarray(values, dtype=np.float64)
    n = pts.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        geq = np.all(pts[i] >= pts, axis=1)
        gt = np.any(pts[i] > pts, axis=1)
        geq[i] = False
        counts[i] = int(np.sum(geq & gt))
    return counts
