"""Top-k retrieval primitives.

The randomized GET-NEXT operator evaluates thousands of sampled scoring
functions and needs the top-k under each in better than ``O(n log n)``.
These helpers provide deterministic linear-time top-k selection with the
paper's tie-break-by-identifier convention, plus the score threshold
separating the top-k from the rest (useful in analyses).
"""

from __future__ import annotations

import numpy as np

from repro.core.ranking import _top_k_order

__all__ = ["top_k_indices", "top_k_threshold"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, ordered by (score desc, id asc).

    ``O(n)`` selection via ``argpartition`` with exact, deterministic
    handling of ties at the k-th score boundary (lowest identifiers win,
    matching the ranking convention of section 2.1.1).
    """
    return np.asarray(_top_k_order(np.asarray(scores, dtype=np.float64), k), dtype=np.intp)


def top_k_threshold(scores: np.ndarray, k: int) -> float:
    """The k-th largest score — the admission threshold of the top-k."""
    s = np.asarray(scores, dtype=np.float64)
    if not 1 <= k <= s.shape[0]:
        raise ValueError(f"k must be in [1, {s.shape[0]}], got {k}")
    return float(np.partition(-s, k - 1)[k - 1] * -1.0)
