"""Top-k retrieval primitives.

The randomized GET-NEXT operator evaluates thousands of sampled scoring
functions and needs the top-k under each in better than ``O(n log n)``.
Selection is served by the shared vectorized kernel
(:func:`repro.engine.kernel.batch_topk_indices`), which also accepts a
whole ``(batch, n)`` block of score rows at once; this module keeps the
operator-level names plus the score threshold separating the top-k from
the rest (useful in analyses).
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernel import batch_topk_indices

__all__ = ["top_k_indices", "top_k_threshold"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, ordered by (score desc, id asc).

    ``O(n)`` selection via the kernel's ``argpartition`` path with
    exact, deterministic handling of ties at the k-th score boundary
    (lowest identifiers win, matching the ranking convention of
    section 2.1.1).  Accepts a single score row or a ``(batch, n)``
    block (one result row per input row).
    """
    return np.asarray(
        batch_topk_indices(np.asarray(scores, dtype=np.float64), k), dtype=np.intp
    )


def top_k_threshold(scores: np.ndarray, k: int) -> float:
    """The k-th largest score — the admission threshold of the top-k."""
    s = np.asarray(scores, dtype=np.float64)
    if not 1 <= k <= s.shape[0]:
        raise ValueError(f"k must be in [1, {s.shape[0]}], got {k}")
    return float(np.partition(-s, k - 1)[k - 1] * -1.0)
