"""Regret-minimizing representative sets (references [10, 11, 49]).

Section 7 of the paper contrasts stable top-k sets with "extensive
recent work [10, 11] aim[ing] to find a small subset of the skyline
that minimizes some notion of regret".  This module implements that
baseline so the comparison can be run:

- :func:`regret_ratio` — the maximum regret ratio of a subset ``S``:
  over all non-negative linear scoring functions, the worst relative
  score loss from answering a top-1 query with ``S`` instead of ``D``
  (Nanongkai et al., PVLDB 2010).  Evaluated exactly per sampled
  direction, with the maximisation over functions performed either on a
  dense function sample (default) or an LP-free vertex argument.
- :func:`greedy_regret_set` — the standard greedy heuristic: grow ``S``
  by the item that most reduces the current maximum regret.
- :func:`cube_regret_set` — the CUBE algorithm of Nanongkai et al.:
  pick the best item per attribute, then one representative per cell of
  a ``t^(d-1)`` grid over the remaining attributes; gives the classical
  ``O(1/t)`` regret guarantee independent of ``n``.

These operators answer a different question than stability — they bound
score loss, while stable top-k maximises agreement volume — and the
example ``examples/representatives_comparison.py`` shows the two can
disagree on the same data (the section 2.2.5 toy makes this vivid).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidDatasetError
from repro.sampling.uniform import sample_orthant

__all__ = ["regret_ratio", "greedy_regret_set", "cube_regret_set"]


def _validate_values(values: np.ndarray) -> np.ndarray:
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidDatasetError(f"values must be 2-D (n, d), got shape {pts.shape}")
    if not np.all(np.isfinite(pts)):
        raise InvalidDatasetError("attribute values must be finite")
    if np.any(pts < 0):
        raise InvalidDatasetError(
            "regret ratios assume non-negative attribute values (normalise first)"
        )
    return pts


def _direction_grid(
    dim: int, n_directions: int, rng: np.random.Generator
) -> np.ndarray:
    """Non-negative unit directions: axes + diagonal + uniform samples.

    The deterministic axes/diagonal rows guarantee that the exactly-
    extreme functions (single-attribute scoring) are always probed;
    the random remainder covers the interior of the orthant.
    """
    fixed = np.vstack([np.eye(dim), np.full((1, dim), 1.0 / math.sqrt(dim))])
    n_random = max(n_directions - fixed.shape[0], 0)
    if n_random > 0:
        return np.vstack([fixed, sample_orthant(dim, n_random, rng)])
    return fixed[:n_directions]


def regret_ratio(
    values: np.ndarray,
    subset: np.ndarray,
    *,
    n_directions: int = 2_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Maximum regret ratio of ``subset`` against the full dataset.

    For direction ``w``, the regret ratio is
    ``(max_D w.t - max_S w.t) / max_D w.t`` (clamped at 0); the result
    is the maximum over the probed directions — a lower bound on the
    true supremum that converges as ``n_directions`` grows, which is
    the estimation strategy of the regret literature's experimental
    sections.

    Parameters
    ----------
    values:
        ``(n, d)`` non-negative attribute matrix.
    subset:
        Item identifiers forming the representative set ``S``.
    n_directions:
        Number of scoring directions probed (axes and the diagonal are
        always included).
    rng:
        Source of randomness for the probe directions.
    """
    pts = _validate_values(values)
    idx = np.asarray(subset, dtype=np.intp)
    if idx.size == 0:
        raise ValueError("subset must contain at least one item")
    generator = rng if rng is not None else np.random.default_rng(0)
    directions = _direction_grid(pts.shape[1], n_directions, generator)
    full_best = (directions @ pts.T).max(axis=1)
    sub_best = (directions @ pts[idx].T).max(axis=1)
    positive = full_best > 0
    if not np.any(positive):
        return 0.0
    ratios = (full_best[positive] - sub_best[positive]) / full_best[positive]
    return float(np.clip(ratios, 0.0, 1.0).max())


def greedy_regret_set(
    values: np.ndarray,
    k: int,
    *,
    n_directions: int = 2_000,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Greedy k-item regret-minimizing set (the GREEDY heuristic of [10]).

    Starts from the item with the largest attribute sum, then repeatedly
    adds the item that minimises the maximum regret over the probed
    directions.  Returns ascending item identifiers.

    ``O(k * n * n_directions)`` via incremental best-score updates.
    """
    pts = _validate_values(values)
    n, d = pts.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    generator = rng if rng is not None else np.random.default_rng(0)
    directions = _direction_grid(d, n_directions, generator)
    scores = directions @ pts.T  # (m, n)
    full_best = scores.max(axis=1)
    safe_full = np.where(full_best > 0, full_best, 1.0)
    chosen: list[int] = [int(np.argmax(pts.sum(axis=1)))]
    current_best = scores[:, chosen[0]].copy()
    while len(chosen) < k:
        # For every candidate c: new per-direction best is
        # max(current_best, scores[:, c]); regret = 1 - best/full.
        cand_best = np.maximum(scores, current_best[:, None])  # (m, n)
        cand_regret = ((full_best[:, None] - cand_best) / safe_full[:, None]).max(
            axis=0
        )
        cand_regret[chosen] = np.inf
        pick = int(np.argmin(cand_regret))
        chosen.append(pick)
        current_best = np.maximum(current_best, scores[:, pick])
    return np.array(sorted(chosen), dtype=np.intp)


def cube_regret_set(
    values: np.ndarray,
    k: int,
) -> np.ndarray:
    """The CUBE algorithm of Nanongkai et al. (reference [10]).

    Reserves one slot per attribute for the per-attribute maximum, then
    splits the domain of the first ``d-1`` attributes into ``t`` equal
    intervals each (``t`` the largest integer with ``d + t^(d-1) <= k``)
    and keeps, per occupied cell, the item maximising the last
    attribute.  Guarantees a maximum regret ratio of ``O(1/t)``.

    Returns at most ``k`` ascending item identifiers (fewer when cells
    are unoccupied).
    """
    pts = _validate_values(values)
    n, d = pts.shape
    if not d <= k <= max(n, d):
        raise ValueError(f"k must be at least d={d} for CUBE, got {k}")
    chosen: set[int] = {int(np.argmax(pts[:, j])) for j in range(d)}
    budget = k - d
    if budget >= 1 and n > len(chosen):
        t = max(int(math.floor(budget ** (1.0 / max(d - 1, 1)))), 1)
        # Cell of an item: floor(t * v_j / max_j) per leading attribute,
        # clipped into [0, t-1].
        leading = pts[:, : d - 1]
        col_max = leading.max(axis=0)
        col_max = np.where(col_max > 0, col_max, 1.0)
        cells = np.clip(
            np.floor(t * leading / col_max).astype(np.int64), 0, t - 1
        )
        best_in_cell: dict[tuple[int, ...], int] = {}
        last = pts[:, d - 1]
        for i in range(n):
            key = tuple(cells[i])
            incumbent = best_in_cell.get(key)
            if incumbent is None or last[i] > last[incumbent]:
                best_in_cell[key] = i
        # Fill remaining slots with cell representatives, largest last
        # attribute first, skipping already-chosen items.
        reps = sorted(best_in_cell.values(), key=lambda i: -last[i])
        for i in reps:
            if len(chosen) >= k:
                break
            chosen.add(int(i))
    return np.array(sorted(chosen), dtype=np.intp)
