"""Threshold-based top-k query processing (Fagin's TA and NRA).

The paper's related work (section 7) situates stable-ranking discovery
against "extensive effort on efficient processing of top-k queries [21]:
threshold-based algorithms [22] consider parsing presorted lists along
each attribute".  This module implements that substrate — the Threshold
Algorithm (TA) and the No-Random-Access algorithm (NRA) of Fagin, Lotem
& Naor (JCSS 2003) — over in-memory presorted attribute lists.

Both operate on a :class:`SortedLists` access structure:

- **TA** performs sorted access round-robin across the ``d`` lists, uses
  random access to complete each newly seen item's score, and stops as
  soon as the k-th best seen score reaches the *threshold* — the score
  of a hypothetical item holding the current sorted-access frontier
  value in every list.
- **NRA** never uses random access; it maintains per-item lower/upper
  score bounds and stops when the k best lower bounds dominate every
  other item's upper bound.

Neither algorithm changes *what* the top-k is — :func:`repro.operators.
top_k_indices` computes the same answer by full scan — but they model
the access-cost behaviour of a middleware top-k engine, and the
benchmark ``bench_ablation_topk_engines`` contrasts their sorted/random
access counts with the flat scan the randomized GET-NEXT operator uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ranking import _top_k_order
from repro.errors import InvalidWeightsError

__all__ = ["SortedLists", "TopKResult", "threshold_algorithm", "no_random_access"]


class SortedLists:
    """Presorted per-attribute access lists over an ``(n, d)`` matrix.

    For every attribute ``j`` the structure stores item identifiers in
    descending attribute-value order; this is the access model of the
    middleware scenario in Fagin et al. (reference [22]).  Building the
    lists costs ``O(d n log n)`` once; they are then shared by every
    query against the same dataset.
    """

    def __init__(self, values: np.ndarray):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"values must be 2-D (n, d), got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("attribute values must be finite")
        self._values = arr
        # Stable argsort on negated values: ties broken by ascending id,
        # keeping every downstream traversal deterministic.
        self._orders = np.argsort(-arr, axis=0, kind="stable")

    @property
    def n_items(self) -> int:
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        return self._values

    def sorted_entry(self, attribute: int, depth: int) -> tuple[int, float]:
        """The ``depth``-th best (item, value) pair of one attribute list."""
        item = int(self._orders[depth, attribute])
        return item, float(self._values[item, attribute])

    def random_access(self, item: int, attribute: int) -> float:
        """Value of ``item`` on ``attribute`` (the TA random-access probe)."""
        return float(self._values[item, attribute])


@dataclass(frozen=True)
class TopKResult:
    """Outcome of a threshold-based top-k evaluation.

    Attributes
    ----------
    order:
        The top-k item identifiers, best first (score desc, id asc).
    scores:
        Scores aligned with ``order``.
    sorted_accesses:
        Total sorted-access operations performed.
    random_accesses:
        Total random-access probes performed (0 for NRA).
    depth:
        Number of rounds of sorted access (rows consumed per list).
    """

    order: tuple[int, ...]
    scores: tuple[float, ...]
    sorted_accesses: int
    random_accesses: int
    depth: int


def _validate_query(lists: SortedLists, weights: np.ndarray, k: int) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (lists.n_attributes,):
        raise InvalidWeightsError(
            f"expected {lists.n_attributes} weights, got shape {w.shape}"
        )
    if not np.all(np.isfinite(w)) or np.any(w < 0) or not np.any(w > 0):
        raise InvalidWeightsError("weights must be non-negative, finite, not all zero")
    if not 1 <= k <= lists.n_items:
        raise ValueError(f"k must be in [1, {lists.n_items}], got {k}")
    return w


def _finalize(seen_scores: dict[int, float], k: int, n_items: int) -> tuple[
    tuple[int, ...], tuple[float, ...]
]:
    """Deterministic (score desc, id asc) top-k among the seen items."""
    ids = np.fromiter(seen_scores.keys(), dtype=np.intp, count=len(seen_scores))
    vals = np.fromiter(seen_scores.values(), dtype=np.float64, count=len(seen_scores))
    # Reuse the exact boundary handling of the ranking module by scoring
    # unseen items at -inf (they can never enter the top-k at the stop
    # condition, but the helper wants a dense vector).
    dense = np.full(n_items, -np.inf)
    dense[ids] = vals
    order = _top_k_order(dense, k)
    return tuple(order), tuple(float(dense[i]) for i in order)


def threshold_algorithm(
    lists: SortedLists, weights: np.ndarray, k: int
) -> TopKResult:
    """Fagin's TA: sorted access round-robin plus random-access completion.

    Stops at the first depth where the k-th best completed score is at
    least the threshold ``sum_j w_j * frontier_j``.  Instance-optimal in
    the number of accesses among algorithms using both access kinds.

    Parameters
    ----------
    lists:
        The presorted access structure.
    weights:
        Non-negative linear scoring weights (Definition 1).
    k:
        Number of results.
    """
    w = _validate_query(lists, weights, k)
    n, d = lists.n_items, lists.n_attributes
    seen: dict[int, float] = {}
    sorted_accesses = 0
    random_accesses = 0
    depth = 0
    values = lists.values
    while depth < n:
        frontier = np.empty(d)
        for j in range(d):
            item, value = lists.sorted_entry(j, depth)
            sorted_accesses += 1
            frontier[j] = value
            if item not in seen:
                # Complete the item's score by random access to the
                # remaining d-1 lists (counted individually).
                seen[item] = float(values[item] @ w)
                random_accesses += d - 1
        depth += 1
        if len(seen) >= k:
            threshold = float(frontier @ w)
            kth_best = np.partition(
                np.fromiter(seen.values(), dtype=np.float64, count=len(seen)),
                len(seen) - k,
            )[len(seen) - k]
            if kth_best >= threshold:
                break
    order, scores = _finalize(seen, k, n)
    return TopKResult(
        order=order,
        scores=scores,
        sorted_accesses=sorted_accesses,
        random_accesses=random_accesses,
        depth=depth,
    )


def no_random_access(
    lists: SortedLists, weights: np.ndarray, k: int
) -> TopKResult:
    """Fagin's NRA: sorted access only, with lower/upper score bounds.

    Each item seen so far has a lower bound (known fields, 0 elsewhere —
    valid because attributes and weights are non-negative) and an upper
    bound (known fields, the list frontier elsewhere).  The algorithm
    stops when the k-th best lower bound is at least every other item's
    upper bound; the reported scores are then exact for the winners
    whose fields were all observed, and completed from ``lists.values``
    for reporting otherwise (reporting does not count as random access
    for the access-cost accounting, matching the usual NRA analysis
    where only the *stopping* is access-constrained).
    """
    w = _validate_query(lists, weights, k)
    n, d = lists.n_items, lists.n_attributes
    # known[i, j] = observed value or nan.
    known = np.full((n, d), np.nan)
    seen_mask = np.zeros(n, dtype=bool)
    sorted_accesses = 0
    depth = 0
    frontier = np.array([lists.sorted_entry(j, 0)[1] for j in range(d)])
    while depth < n:
        for j in range(d):
            item, value = lists.sorted_entry(j, depth)
            sorted_accesses += 1
            known[item, j] = value
            seen_mask[item] = True
            frontier[j] = value
        depth += 1
        seen_idx = np.flatnonzero(seen_mask)
        if seen_idx.shape[0] < k:
            continue
        block = known[seen_idx]
        missing = np.isnan(block)
        lower = np.where(missing, 0.0, block) @ w
        upper = np.where(missing, frontier[None, :], block) @ w
        # T = the k seen items with the best lower bounds; stop when the
        # worst lower bound in T beats the best upper bound outside T
        # (seen items outside T, and the frontier score for unseen ones).
        top_t = np.argpartition(-lower, k - 1)[:k]
        kth_lower = float(lower[top_t].min())
        outside = np.ones(lower.shape[0], dtype=bool)
        outside[top_t] = False
        max_other_upper = float(upper[outside].max()) if outside.any() else -np.inf
        unseen_upper = float(frontier @ w) if seen_idx.shape[0] < n else -np.inf
        if kth_lower >= max(max_other_upper, unseen_upper):
            break
    exact = {int(i): float(lists.values[i] @ w) for i in np.flatnonzero(seen_mask)}
    order, scores = _finalize(exact, k, n)
    return TopKResult(
        order=order,
        scores=scores,
        sorted_accesses=sorted_accesses,
        random_accesses=0,
        depth=depth,
    )
