"""ONION: convex-hull-layer indexing for linear top-k queries.

Reference [56] of the paper (Chang et al., SIGMOD 2000) observed that
the top-1 item under *any* linear scoring function is a vertex of the
convex hull of the data, and more generally that the top-k is contained
in the first k convex-hull layers.  The ONION technique therefore peels
the dataset into layers (hull of all items, hull of the rest, ...) at
index-build time, and answers a query by evaluating layers outward
until the running top-k can no longer improve.

The structure serves two roles in this reproduction:

- a faithful substrate for the "indexing-based methods [56] create
  layers of extreme points for efficient processing" line of related
  work (section 7), benchmarked against TA/NRA and the flat scan;
- a fast exact ``∇_f(D)`` top-k evaluator for the randomized GET-NEXT
  operator when the same dataset is queried under thousands of sampled
  weight vectors (the index is built once, each query touches only the
  outer layers).

Degeneracies (d+1 or fewer points left, coplanar residues) fall back to
"every remaining item is its own layer member" — correctness never
depends on qhull succeeding.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from repro.core.ranking import _top_k_order
from repro.errors import InvalidWeightsError

__all__ = ["OnionIndex", "hull_layers"]


def hull_layers(values: np.ndarray) -> list[np.ndarray]:
    """Peel ``values`` into convex-hull layers (outermost first).

    Each layer is an ascending array of item identifiers.  Layer 0 is
    the set of convex-hull vertices of the full dataset; layer ``i`` the
    hull vertices of what remains after removing layers ``0..i-1``.

    Notes
    -----
    Only hull *vertices* are returned by qhull; interior points of hull
    facets belong to later layers, which is the original ONION
    convention and keeps the per-layer candidate sets minimal.
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"values must be 2-D (n, d), got shape {pts.shape}")
    n, d = pts.shape
    remaining = np.arange(n)
    layers: list[np.ndarray] = []
    while remaining.size > 0:
        if remaining.size <= d + 1:
            layers.append(np.sort(remaining))
            break
        try:
            hull = ConvexHull(pts[remaining])
            vertex_local = np.unique(hull.vertices)
        except QhullError:
            # Degenerate residue (e.g. all points coplanar): treat the
            # whole residue as one final layer rather than guessing.
            layers.append(np.sort(remaining))
            break
        layers.append(np.sort(remaining[vertex_local]))
        keep = np.ones(remaining.size, dtype=bool)
        keep[vertex_local] = False
        remaining = remaining[keep]
    return layers


class OnionIndex:
    """Layered convex-hull index answering linear top-k queries exactly.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix, larger-is-better on every attribute.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> data = rng.random((500, 3))
    >>> index = OnionIndex(data)
    >>> order, layers_touched = index.top_k(np.array([1.0, 1.0, 1.0]), 5)
    >>> len(order)
    5
    """

    def __init__(self, values: np.ndarray):
        self._values = np.asarray(values, dtype=np.float64)
        if self._values.ndim != 2:
            raise ValueError(
                f"values must be 2-D (n, d), got shape {self._values.shape}"
            )
        if not np.all(np.isfinite(self._values)):
            raise ValueError("attribute values must be finite")
        self._layers = hull_layers(self._values)

    @property
    def n_items(self) -> int:
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        return self._values.shape[1]

    @property
    def n_layers(self) -> int:
        return len(self._layers)

    @property
    def layers(self) -> list[np.ndarray]:
        """The hull layers, outermost first (copies; the index is immutable)."""
        return [layer.copy() for layer in self._layers]

    def layer_sizes(self) -> np.ndarray:
        """Number of items in each layer, outermost first."""
        return np.array([layer.size for layer in self._layers], dtype=np.intp)

    def top_k(self, weights: np.ndarray, k: int) -> tuple[tuple[int, ...], int]:
        """Exact top-k under non-negative linear ``weights``.

        Evaluates layers outward.  Two facts bound the work:

        - the item ranked ``i``-th under any linear function lies in the
          first ``i`` layers, so at most ``k`` layers are ever needed;
        - the best score within layer ``L+1`` is at most the best score
          within layer ``L`` (layer ``L`` is the hull of a superset), so
          the scan can stop early once the running k-th best score
          reaches the best score of the layer just scanned.

        With continuous data this is exact; when scores tie exactly at
        the stopping boundary, an equal-scoring item in a deeper layer
        with a smaller identifier may be passed over (ties across layers
        resolve toward the outer layer).

        Returns
        -------
        (order, layers_touched):
            ``order`` — top-k ids, (score desc, id asc); and how many
            layers were evaluated (the query's work measure).
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.n_attributes,):
            raise InvalidWeightsError(
                f"expected {self.n_attributes} weights, got shape {w.shape}"
            )
        if not np.all(np.isfinite(w)) or np.any(w < 0) or not np.any(w > 0):
            raise InvalidWeightsError(
                "weights must be non-negative, finite, not all zero"
            )
        if not 1 <= k <= self.n_items:
            raise ValueError(f"k must be in [1, {self.n_items}], got {k}")
        candidate_ids: list[np.ndarray] = []
        candidate_scores: list[np.ndarray] = []
        n_candidates = 0
        layers_touched = 0
        for layer in self._layers:
            layer_scores = self._values[layer] @ w
            candidate_ids.append(layer)
            candidate_scores.append(layer_scores)
            n_candidates += layer.size
            layers_touched += 1
            if layers_touched >= k:
                break  # top-k is contained in the first k layers
            if n_candidates >= k:
                pooled = np.concatenate(candidate_scores)
                kth_best = np.partition(pooled, pooled.size - k)[pooled.size - k]
                if kth_best >= float(layer_scores.max()):
                    break  # deeper layers cannot score above the k-th best
        ids = np.concatenate(candidate_ids)
        scores = np.full(self.n_items, -np.inf)
        scores[ids] = np.concatenate(candidate_scores)
        return tuple(_top_k_order(scores, k)), layers_touched

    def rank_all(self, weights: np.ndarray) -> tuple[int, ...]:
        """Full ranking via flat scoring (the index cannot help beyond top-k)."""
        w = np.asarray(weights, dtype=np.float64)
        scores = self._values @ w
        return tuple(np.argsort(-scores, kind="stable").tolist())
