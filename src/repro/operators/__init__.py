"""Query-processing substrates: skyline, top-k engines, representatives.

The paper positions stable top-k sets against the skyline operator
(section 2.2.5: "the stable top-k items are not necessarily a subset of
the skyline") and builds its randomized operator on standard top-k
retrieval.  These substrates are implemented here from scratch:

- :mod:`repro.operators.skyline` — the Pareto-optimal set (ref [8]);
- :mod:`repro.operators.topk` — flat-scan top-k selection;
- :mod:`repro.operators.threshold` — Fagin's TA and NRA middleware
  algorithms over presorted lists (ref [22]);
- :mod:`repro.operators.onion` — the ONION convex-hull-layer index for
  linear top-k queries (ref [56]);
- :mod:`repro.operators.regret` — regret-minimizing representative
  sets, GREEDY and CUBE (refs [10, 11]);
- :mod:`repro.operators.representative` — the k most representative
  skyline points by dominance coverage (ref [9]).
"""

from repro.operators.onion import OnionIndex, hull_layers
from repro.operators.regret import cube_regret_set, greedy_regret_set, regret_ratio
from repro.operators.representative import (
    coverage_of,
    dominance_matrix,
    k_representative_skyline,
)
from repro.operators.skyline import (
    KSkybandIndex,
    dominance_count,
    is_dominated,
    k_skyband,
    skyline,
)
from repro.operators.threshold import (
    SortedLists,
    TopKResult,
    no_random_access,
    threshold_algorithm,
)
from repro.operators.topk import top_k_indices, top_k_threshold

__all__ = [
    "skyline",
    "k_skyband",
    "KSkybandIndex",
    "is_dominated",
    "dominance_count",
    "top_k_indices",
    "top_k_threshold",
    "SortedLists",
    "TopKResult",
    "threshold_algorithm",
    "no_random_access",
    "OnionIndex",
    "hull_layers",
    "regret_ratio",
    "greedy_regret_set",
    "cube_regret_set",
    "dominance_matrix",
    "coverage_of",
    "k_representative_skyline",
]
