"""k most representative skyline points (reference [9]).

Lin et al. (ICDE 2007) — cited in section 7 as "[9] finds a subset of k
skyline points that dominate the maximum number of points" — select the
k skyline members whose *joint* dominance coverage is largest.  The
exact problem is NP-hard for d >= 3; like the original paper we use the
classical greedy algorithm for the monotone submodular coverage
objective, which carries the ``1 - 1/e`` approximation guarantee.

This baseline participates in the representative-set comparison of
``examples/representatives_comparison.py``: dominance coverage, regret
(:mod:`repro.operators.regret`) and stability (the paper's stable top-k
set) are three different notions of "the k items that matter", and the
section 2.2.5 toy dataset already separates them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDatasetError
from repro.operators.skyline import skyline

__all__ = ["dominance_matrix", "k_representative_skyline", "coverage_of"]


def dominance_matrix(values: np.ndarray) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``M[i, j]`` iff item ``i`` dominates ``j``.

    Dominance is the strict Pareto relation of section 3: ``i`` is at
    least as good everywhere and strictly better somewhere.  Quadratic
    in ``n``; intended for the few-thousand-item datasets where the
    representative-skyline question is asked.
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidDatasetError(f"values must be 2-D (n, d), got shape {pts.shape}")
    n = pts.shape[0]
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        geq = np.all(pts[i] >= pts, axis=1)
        gt = np.any(pts[i] > pts, axis=1)
        geq[i] = False
        out[i] = geq & gt
    return out


def coverage_of(dominance: np.ndarray, subset: np.ndarray) -> int:
    """Number of items dominated by at least one member of ``subset``."""
    idx = np.asarray(subset, dtype=np.intp)
    if idx.size == 0:
        return 0
    return int(np.any(dominance[idx], axis=0).sum())


def k_representative_skyline(
    values: np.ndarray, k: int
) -> tuple[np.ndarray, int]:
    """Greedy k most representative skyline points.

    Repeatedly adds the skyline member covering the most not-yet-covered
    items.  Ties break toward the smaller item identifier, keeping the
    output deterministic.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix, larger-is-better.
    k:
        Number of representatives; when the skyline has fewer than ``k``
        members, the whole skyline is returned.

    Returns
    -------
    (subset, coverage):
        Ascending representative identifiers and the number of items
        they jointly dominate.
    """
    pts = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2:
        raise InvalidDatasetError(f"values must be 2-D (n, d), got shape {pts.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sky = skyline(pts)
    dom = dominance_matrix(pts)
    if sky.size <= k:
        return sky, coverage_of(dom, sky)
    covered = np.zeros(pts.shape[0], dtype=bool)
    chosen: list[int] = []
    candidates = set(int(i) for i in sky)
    while len(chosen) < k and candidates:
        best_gain = -1
        best_item = -1
        for i in sorted(candidates):
            gain = int(np.sum(dom[i] & ~covered))
            if gain > best_gain:
                best_gain = gain
                best_item = i
        chosen.append(best_item)
        candidates.discard(best_item)
        covered |= dom[best_item]
    subset = np.array(sorted(chosen), dtype=np.intp)
    return subset, int(covered.sum())
