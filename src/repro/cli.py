"""Command-line interface for quick stability analyses on CSV files.

The per-query subcommands mirror the library's workflows::

    python -m repro.cli verify data.csv --weights 1,1
    python -m repro.cli enumerate data.csv --top 5
    python -m repro.cli topk data.csv --k 10 --kind set --budget 5000
    python -m repro.cli profile data.csv --items 0,1,2

and two service-layer commands run mixed workloads through a
:class:`~repro.service.StabilitySession` (shared sample pools, result
cache, batch-amortized sampling)::

    python -m repro.cli batch data.csv --requests requests.json
    python -m repro.cli serve data.csv                  # JSON-lines on stdio
    python -m repro.cli serve data.csv --tcp :7701      # asyncio TCP server

``requests.json`` holds a list of request objects, e.g.
``[{"op": "top_stable", "m": 3, "kind": "topk_set", "k": 5}]``;
``serve`` reads one such object per line and answers with one JSON
line each, speaking the versioned protocol of
:mod:`repro.server.protocol` (control ops ``hello``/``ping``/
``stats``/``invalidate``/``checkpoint``/``shutdown``; structured
``{"error": {"code", "message"}}`` failures).  ``--tcp HOST:PORT``
serves many concurrent clients over one shared session registry with
backpressure and graceful, checkpointed drain on SIGTERM.

The CSV must contain one numeric column per scoring attribute (a header
row is auto-detected); an optional ``--label-column NAME`` column holds
item names.  All attributes are min-max normalised, with
``--lower-is-better COL1,COL2`` flipping the named columns.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    Cone,
    Dataset,
    FullSpace,
    ScoringFunction,
    StabilityEngine,
    StabilitySession,
    execute_batch,
    rank_profile,
)
from repro.server.protocol import value_to_json as _value_to_json

__all__ = ["main", "load_csv_dataset"]


def load_csv_dataset(
    path: str | Path,
    *,
    label_column: str | None = None,
    lower_is_better: tuple[str, ...] = (),
) -> Dataset:
    """Read a CSV of scoring attributes into a normalised :class:`Dataset`.

    A header row is assumed when the first row contains any non-numeric
    cell; otherwise columns are named ``x1..xd``.
    """
    rows: list[list[str]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if row:
                rows.append(row)
    if not rows:
        raise ValueError(f"{path} is empty")

    def _is_number(cell: str) -> bool:
        try:
            float(cell)
        except ValueError:
            return False
        return True

    has_header = not all(_is_number(cell) for cell in rows[0])
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    else:
        header = [f"x{j + 1}" for j in range(len(rows[0]))]
        body = rows
    if label_column is not None:
        if label_column not in header:
            raise ValueError(f"label column {label_column!r} not in header {header}")
        label_idx = header.index(label_column)
        labels = [row[label_idx] for row in body]
        attr_idx = [j for j in range(len(header)) if j != label_idx]
    else:
        labels = None
        attr_idx = list(range(len(header)))
    names = [header[j] for j in attr_idx]
    values = np.array(
        [[float(row[j]) for j in attr_idx] for row in body], dtype=np.float64
    )
    unknown = set(lower_is_better) - set(names)
    if unknown:
        raise ValueError(f"--lower-is-better columns not found: {sorted(unknown)}")
    higher = [name not in lower_is_better for name in names]
    return Dataset(values, item_labels=labels, attribute_names=names).normalized(
        higher_is_better=higher
    )


def _parse_weights(text: str, dim: int) -> np.ndarray:
    parts = [float(p) for p in text.split(",")]
    if len(parts) != dim:
        raise SystemExit(f"expected {dim} weights, got {len(parts)}")
    return np.array(parts)


def _region_for(args, dim: int, weights: np.ndarray | None):
    if args.cone_theta is not None:
        centre = weights if weights is not None else np.ones(dim)
        return Cone(centre, args.cone_theta)
    return FullSpace(dim)


def _budget_arg(text: str):
    """Argparse type for ``--budget``: a count or ``ci:WIDTH[@MAX]`` spec."""
    from repro.service.budget import parse_budget

    try:
        return parse_budget(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_engine_dials(
    parser: argparse.ArgumentParser, *, sampling: bool = True
) -> None:
    """The kernel/sampling dials shared by the session subcommands."""
    parser.add_argument(
        "--kernel",
        default=None,
        help="reduction kernel backend (numpy, numba, or auto; default "
        "auto picks the fastest available; REPRO_KERNEL overrides the "
        "default — tallies are byte-identical across backends)",
    )
    if sampling:
        parser.add_argument(
            "--sampling",
            choices=["mc", "qmc"],
            default="mc",
            help="weight sampling: plain Monte-Carlo or quasi-MC "
            "(Halton; full-space and in-orthant cone regions only)",
        )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("csv", help="input CSV of scoring attributes")
    parser.add_argument("--label-column", default=None)
    parser.add_argument(
        "--lower-is-better",
        default="",
        help="comma-separated columns where smaller raw values are better",
    )
    parser.add_argument(
        "--cone-theta",
        type=float,
        default=None,
        help="restrict to a cone of this angle around the weights",
    )
    parser.add_argument("--seed", type=int, default=0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Stable-rankings analyses on CSV data"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="warning",
        help="threshold for structured event logs on stderr "
        "(default warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit event logs as JSON lines instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="stability of the ranking under given weights")
    _add_common(p_verify)
    p_verify.add_argument("--weights", required=True, help="comma-separated weights")
    p_verify.add_argument("--samples", type=int, default=20_000)

    p_enum = sub.add_parser("enumerate", help="most stable rankings, best first")
    _add_common(p_enum)
    p_enum.add_argument("--top", type=int, default=5)
    p_enum.add_argument("--samples", type=int, default=20_000)

    p_topk = sub.add_parser("topk", help="most stable top-k sets / ranked prefixes")
    _add_common(p_topk)
    p_topk.add_argument("--k", type=int, required=True)
    p_topk.add_argument("--kind", choices=["set", "ranked"], default="set")
    p_topk.add_argument("--top", type=int, default=3)
    p_topk.add_argument("--budget", type=int, default=5_000)

    p_profile = sub.add_parser("profile", help="per-item rank ranges")
    _add_common(p_profile)
    p_profile.add_argument("--items", default=None, help="comma-separated item ids")
    p_profile.add_argument("--samples", type=int, default=2_000)

    p_label = sub.add_parser(
        "label", help="stability 'ranking facts' label for published weights"
    )
    _add_common(p_label)
    p_label.add_argument("--weights", required=True, help="comma-separated weights")
    p_label.add_argument("--k", type=int, default=10)
    p_label.add_argument("--samples", type=int, default=4_000)

    p_tradeoff = sub.add_parser(
        "tradeoff", help="stability vs cosine-similarity frontier around weights"
    )
    _add_common(p_tradeoff)
    p_tradeoff.add_argument("--weights", required=True, help="comma-separated weights")
    p_tradeoff.add_argument(
        "--cosines",
        default="0.9999,0.999,0.99,0.97",
        help="comma-separated cosine levels",
    )

    p_batch = sub.add_parser(
        "batch", help="run a JSON batch of requests through one session"
    )
    _add_common(p_batch)
    p_batch.add_argument(
        "--requests",
        required=True,
        help="path to a JSON list of request objects ('-' for stdin)",
    )
    p_batch.add_argument(
        "--budget",
        type=_budget_arg,
        default=None,
        help="default pool target: a sample count or 'ci:WIDTH[@MAX]' "
        "precision spec (grow until the leading CI half-width fits)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=None, help="observe thread-pool width"
    )
    p_batch.add_argument(
        "--no-parallel", action="store_true", help="force serial observe"
    )
    p_batch.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="observe executor: serial, thread pool, or shared-memory "
        "process pool (default auto; REPRO_EXECUTOR overrides)",
    )
    _add_engine_dials(p_batch)

    p_serve = sub.add_parser(
        "serve",
        help="JSON-lines request/response service on stdio or TCP",
    )
    _add_common(p_serve)
    p_serve.add_argument(
        "--budget",
        type=_budget_arg,
        default=None,
        help="default pool target: a sample count or 'ci:WIDTH[@MAX]' "
        "precision spec",
    )
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument("--no-parallel", action="store_true")
    p_serve.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="observe executor: serial, thread pool, or shared-memory "
        "process pool (default auto; REPRO_EXECUTOR overrides)",
    )
    _add_engine_dials(p_serve)
    p_serve.add_argument(
        "--state-dir",
        default=None,
        help="directory of durable session snapshots: restore this "
        "dataset+region's snapshot on start (cold start if absent or "
        "untrusted), checkpoint it while serving",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        metavar="N",
        help="checkpoint after every N handled requests (0: only at exit)",
    )
    p_serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="serve many concurrent clients over TCP instead of stdio "
        "(PORT alone binds 127.0.0.1; port 0 picks a free port); "
        "SIGTERM or {\"op\": \"shutdown\"} drains gracefully, "
        "checkpointing every dirty session",
    )
    p_serve.add_argument(
        "--dataset-name",
        default="default",
        metavar="NAME",
        help="registry name of the served dataset in TCP mode "
        "(requests may address it with {\"dataset\": NAME})",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="TCP: global admission cap; requests beyond it are shed "
        "with a structured 'busy' error instead of queued",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=8,
        metavar="N",
        help="TCP: per-connection pipelining depth; beyond it the "
        "server stops reading that socket (TCP backpressure)",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="TCP: how long a graceful drain waits for in-flight "
        "requests before checkpointing and exiting",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="TCP: also serve a plain-text metrics endpoint (HTTP) "
        "on this port",
    )
    p_serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="TCP: log a slow_query event for requests slower than "
        "this many milliseconds",
    )
    p_serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help='TCP: per-dataset objectives, e.g. "p99:50ms,err:0.1%%"; '
        "burn rates surface in stats and as repro_slo_* metrics",
    )
    p_serve.add_argument(
        "--diag-dir",
        default=None,
        metavar="DIR",
        help="TCP: directory for flight-recorder diag bundles "
        "(SIGUSR2, drain-on-error); default: current directory",
    )
    p_serve.add_argument(
        "--no-flight",
        action="store_true",
        help="TCP: disable the flight recorder (recent events, traces, "
        "slow queries, and metrics snapshots stop being captured)",
    )
    p_serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="TCP: inject faults at the transport layer, e.g. "
        "'delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005' "
        "(kinds: delay, error, drop; seeded and deterministic)",
    )
    p_serve.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="TCP: seed of the chaos injector's RNG (default 0)",
    )
    p_serve.add_argument(
        "--memory-watermark",
        default=None,
        metavar="SIZE",
        help="TCP: degrade instead of growing past SIZE (e.g. '256mb') "
        "of pool+cache memory — cold queries are shed with "
        "'overloaded' until usage falls below the low watermark",
    )

    p_diag = sub.add_parser(
        "diag",
        help="fetch a running TCP server's flight-recorder diag bundle",
    )
    p_diag.add_argument(
        "address", metavar="HOST:PORT", help="address of a running server"
    )
    p_diag.add_argument(
        "--json",
        action="store_true",
        help="print the raw bundle as one JSON object",
    )
    p_diag.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the bundle to PATH",
    )

    p_stats = sub.add_parser(
        "stats",
        help="fetch and pretty-print a running TCP server's stats",
    )
    p_stats.add_argument(
        "address", metavar="HOST:PORT", help="address of a running server"
    )
    p_stats.add_argument(
        "--dataset", default=None, help="registry name to query stats for"
    )
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="print the raw stats response as one JSON object",
    )

    p_snapshot = sub.add_parser(
        "snapshot",
        help="warm a session (optionally with a request batch) and save it",
    )
    _add_common(p_snapshot)
    p_snapshot.add_argument(
        "--out", required=True, help="snapshot file to write"
    )
    p_snapshot.add_argument(
        "--requests",
        default=None,
        help="optional JSON list of warmup requests ('-' for stdin); "
        "their outcomes print to stdout, one JSON line each",
    )
    p_snapshot.add_argument(
        "--budget",
        type=_budget_arg,
        default=None,
        help="default pool target: a sample count or 'ci:WIDTH[@MAX]' "
        "precision spec",
    )
    p_snapshot.add_argument("--workers", type=int, default=None)
    p_snapshot.add_argument("--no-parallel", action="store_true")
    p_snapshot.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="observe executor: serial, thread pool, or shared-memory "
        "process pool (default auto; REPRO_EXECUTOR overrides)",
    )
    _add_engine_dials(p_snapshot)

    p_restore = sub.add_parser(
        "restore",
        help="restore a session snapshot (the dataset must fingerprint-match)",
    )
    _add_common(p_restore)
    p_restore.add_argument(
        "--snapshot", required=True, help="snapshot file to restore"
    )
    p_restore.add_argument(
        "--requests",
        default=None,
        help="optional JSON list of requests ('-' for stdin) to answer "
        "from the restored session; outcomes print to stdout",
    )
    p_restore.add_argument(
        "--inspect",
        action="store_true",
        help="print the verified snapshot header instead of restoring",
    )
    p_restore.add_argument("--workers", type=int, default=None)
    p_restore.add_argument("--no-parallel", action="store_true")
    p_restore.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="observe executor: serial, thread pool, or shared-memory "
        "process pool (default auto; REPRO_EXECUTOR overrides)",
    )
    _add_engine_dials(p_restore, sampling=False)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a server with a deterministic synthetic workload "
        "(self-hosted unless --address), optionally recording a "
        "replayable trace or running a bounded soak",
    )
    p_loadgen.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="drive a running server instead of self-hosting one",
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=200, help="requests per run"
    )
    p_loadgen.add_argument("--connections", type=int, default=8)
    p_loadgen.add_argument(
        "--rate", type=float, default=400.0,
        help="mean open-loop arrival rate, requests/second",
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument(
        "--burstiness", type=float, default=4.0,
        help="peak/trough arrival-rate ratio (1 = flat)",
    )
    p_loadgen.add_argument(
        "--churn", type=float, default=0.05,
        help="probability a batch reconnects first",
    )
    p_loadgen.add_argument(
        "--pipeline", type=float, default=0.25,
        help="probability consecutive requests pipeline into one batch",
    )
    p_loadgen.add_argument(
        "--configs", type=int, default=8,
        help="query-configuration vocabulary size",
    )
    p_loadgen.add_argument(
        "--skew", type=float, default=1.2,
        help="Zipf exponent of config popularity",
    )
    p_loadgen.add_argument("--dataset-items", type=int, default=400)
    p_loadgen.add_argument("--dataset-attributes", type=int, default=3)
    p_loadgen.add_argument(
        "--dataset-family", default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    p_loadgen.add_argument("--dataset-seed", type=int, default=20180905)
    p_loadgen.add_argument(
        "--server-seed", type=int, default=7,
        help="session seed of the (self-hosted) server",
    )
    p_loadgen.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a replayable JSONL trace to PATH",
    )
    p_loadgen.add_argument(
        "--soak", type=float, default=None, metavar="SECONDS",
        help="run a bounded soak instead: sustained load for SECONDS, "
        "asserting flat RSS and zero shm segments via /metrics",
    )
    p_loadgen.add_argument(
        "--rss-limit", type=float, default=0.10,
        help="soak: max fractional RSS growth over the warm baseline",
    )
    p_loadgen.add_argument(
        "--diag", default=None, metavar="PATH",
        help="soak: write the server's flight-recorder diag bundle to "
        "PATH when the soak fails",
    )
    p_loadgen.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="soak: run the sampling profiler at HZ for the whole soak "
        "(collapsed stacks land in the report and diag bundle)",
    )
    p_loadgen.add_argument(
        "--inject-failure", action="store_true",
        help="soak: force an invariant failure at the end (exercises "
        "the diag-bundle path; the run exits non-zero)",
    )
    p_loadgen.add_argument(
        "--retry", action="store_true",
        help="run the workers with the default client retry policy "
        "(idempotent ops only)",
    )
    p_loadgen.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject faults into the self-hosted server, e.g. "
        "'delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005' "
        "(soak mode: also enables retries and the answer oracle)",
    )
    p_loadgen.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the chaos injector's RNG (default 0)",
    )

    p_replay = sub.add_parser(
        "replay",
        help="re-run a recorded loadgen trace and assert answer "
        "equivalence (exit 1 on divergence)",
    )
    p_replay.add_argument("trace", metavar="TRACE", help="trace file to replay")
    p_replay.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="replay against a running server instead of self-hosting "
        "the build under test",
    )
    p_replay.add_argument(
        "--time-scale", type=float, default=1.0,
        help="compress (<1) or stretch (>1) the recorded arrival schedule",
    )
    p_replay.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject faults into the replaying (self-hosted) server; "
        "get_next is judged in subset mode",
    )
    p_replay.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the chaos injector's RNG (default 0)",
    )
    p_replay.add_argument(
        "--retry", action="store_true",
        help="replay with the default client retry policy "
        "(idempotent ops only)",
    )

    args = parser.parse_args(argv)

    from repro.obs import configure_logging

    configure_logging(json_lines=args.log_json, level=args.log_level)

    if args.command == "stats":
        # Pure network client: no CSV to load, no session to build.
        return _run_stats(args)

    if args.command == "diag":
        return _run_diag(args)

    if args.command == "loadgen":
        # Workload harness: synthesizes its own dataset from the spec.
        return _run_loadgen(args)

    if args.command == "replay":
        return _run_replay(args)

    if args.command == "restore" and args.inspect:
        # Header inspection needs no dataset — an orphaned snapshot must
        # be inspectable without (or with an unparseable) CSV, and a
        # header read should not pay a full CSV load+normalize.
        from repro.errors import SnapshotError
        from repro.service.persist import read_snapshot_header

        try:
            header = read_snapshot_header(args.snapshot)
        except SnapshotError as exc:
            raise SystemExit(f"cannot inspect {args.snapshot}: {exc}")
        header.pop("sections", None)
        print(json.dumps(header))
        return 0

    lower = tuple(c for c in args.lower_is_better.split(",") if c)
    ds = load_csv_dataset(
        args.csv, label_column=args.label_column, lower_is_better=lower
    )
    rng = np.random.default_rng(args.seed)
    out = sys.stdout

    if args.command == "verify":
        weights = _parse_weights(args.weights, ds.n_attributes)
        region = _region_for(args, ds.n_attributes, weights)
        ranking = ScoringFunction(weights).rank(ds)
        if ds.n_attributes == 2:
            engine = StabilityEngine(ds, region=region, backend="twod_exact")
        else:
            engine = StabilityEngine(
                ds,
                region=region,
                backend="md_arrangement",
                rng=rng,
                n_samples=args.samples,
            )
        result = engine.stability_of(ranking)
        print(f"stability: {result.stability:.6f}", file=out)
        if result.confidence_error:
            print(f"confidence_error: {result.confidence_error:.6f}", file=out)
        top = ", ".join(ds.label_of(i) for i in ranking.order[:10])
        print(f"ranking (top 10): {top}", file=out)
        return 0

    if args.command == "enumerate":
        region = _region_for(args, ds.n_attributes, None)
        engine = StabilityEngine(ds, region=region, rng=rng)
        for i in range(args.top):
            try:
                result = engine.get_next()
            except Exception:
                break
            head = ", ".join(ds.label_of(j) for j in result.ranking.order[:5])
            print(f"#{i + 1} stability={result.stability:.6f}  [{head}, ...]", file=out)
        return 0

    if args.command == "topk":
        region = _region_for(args, ds.n_attributes, None)
        kind = "topk_set" if args.kind == "set" else "topk_ranked"
        engine = StabilityEngine(
            ds, region=region, kind=kind, k=args.k, rng=rng
        )
        results = engine.top_stable(
            args.top, budget_first=args.budget, budget_rest=max(args.budget // 5, 1)
        )
        for i, result in enumerate(results, start=1):
            if result.top_k_set is not None:
                members = ", ".join(ds.label_of(j) for j in sorted(result.top_k_set))
            else:
                members = ", ".join(ds.label_of(j) for j in result.ranking)
            print(
                f"#{i} stability={result.stability:.4f} "
                f"(+/- {result.confidence_error:.4f})  {{{members}}}",
                file=out,
            )
        return 0

    if args.command == "profile":
        region = _region_for(args, ds.n_attributes, None)
        items = (
            [int(i) for i in args.items.split(",")] if args.items else None
        )
        for p in rank_profile(
            ds, items, region=region, n_samples=args.samples, rng=rng
        ):
            print(
                f"{ds.label_of(p.item):<24} ranks [{p.min_rank}, {p.max_rank}] "
                f"mean {p.mean_rank:.1f}",
                file=out,
            )
        return 0

    if args.command == "label":
        from repro.core.label import build_label

        weights = _parse_weights(args.weights, ds.n_attributes)
        region = _region_for(args, ds.n_attributes, weights)
        label = build_label(
            ds,
            weights,
            region=region,
            k=args.k,
            n_samples=args.samples,
            rng=rng,
        )
        print(label.render(labels=ds.item_labels), file=out)
        return 0

    if args.command == "tradeoff":
        from repro.core.tradeoff import stability_similarity_tradeoff

        weights = _parse_weights(args.weights, ds.n_attributes)
        cosines = tuple(float(c) for c in args.cosines.split(",") if c)
        points = stability_similarity_tradeoff(
            ds, weights, cosines=cosines, rng=rng
        )
        print(
            f"{'cosine':>8} {'theta':>9} {'best_stab':>10} "
            f"{'ref_stab':>10} {'moves':>6}",
            file=out,
        )
        for p in points:
            print(
                f"{p.cosine:8.4f} {p.theta:9.5f} {p.best.stability:10.5f} "
                f"{p.reference_stability:10.5f} {p.displacement:6d}",
                file=out,
            )
        return 0

    if args.command in ("batch", "serve", "snapshot", "restore"):
        return _run_service_command(args, ds, out)

    raise AssertionError("unreachable")


def _run_service_command(args, ds: Dataset, out) -> int:
    """Dispatch the session-backed subcommands (batch/serve/snapshot/restore)."""
    from repro.errors import SnapshotError

    region = _region_for(args, ds.n_attributes, None)
    parallel = False if args.no_parallel else "auto"

    if args.command == "serve" and args.tcp is not None:
        return _run_serve_tcp(args, ds, region, parallel)

    if args.command == "restore":
        try:
            session = StabilitySession.restore(
                args.snapshot,
                ds,
                region=region,
                parallel=parallel,
                executor=args.executor,
                max_workers=args.workers,
                kernel=args.kernel,
            )
        except SnapshotError as exc:
            raise SystemExit(f"cannot restore {args.snapshot}: {exc}")
        if args.seed != 0:
            print(
                "restored session state comes from the snapshot; "
                "--seed has no effect on restore",
                file=sys.stderr,
            )
        all_ok = True
        with session:
            if args.requests:
                all_ok = _print_outcomes(
                    session, ds, _load_requests(args.requests), out
                )
            print(json.dumps(session.stats()), file=sys.stderr)
        return 0 if all_ok else 1

    if args.command == "snapshot":
        session = StabilitySession(
            ds,
            region=region,
            seed=args.seed,
            budget=args.budget,
            parallel=parallel,
            executor=args.executor,
            max_workers=args.workers,
            kernel=args.kernel,
            sampling=args.sampling,
        )
        all_ok = True
        with session:
            if args.requests:
                all_ok = _print_outcomes(
                    session, ds, _load_requests(args.requests), out
                )
            try:
                info = session.save(args.out)
            except SnapshotError as exc:
                raise SystemExit(f"cannot snapshot to {args.out}: {exc}")
        print(
            json.dumps(
                {
                    "snapshot": info.path,
                    "format_version": info.format_version,
                    "fingerprint": info.fingerprint,
                    "configs": info.n_configs,
                    "cache_entries": info.cache_entries,
                    "bytes": info.file_bytes,
                }
            ),
            file=sys.stderr,
        )
        return 0 if all_ok else 1

    state_path = None
    if args.command == "serve" and args.state_dir is not None:
        from repro.server.registry import snapshot_path_for

        state_dir = Path(args.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        state_path = snapshot_path_for(state_dir, ds, region)
    session = None
    if state_path is not None and state_path.exists():
        try:
            session = StabilitySession.restore(
                state_path,
                ds,
                region=region,
                parallel=parallel,
                executor=args.executor,
                max_workers=args.workers,
                kernel=args.kernel,
            )
        except SnapshotError as exc:
            # The state dir is an opportunistic warm-start cache: a
            # snapshot that cannot be trusted costs the warmth, never
            # the server.  The next checkpoint overwrites it.
            print(
                f"ignoring snapshot {state_path} ({exc}); starting cold",
                file=sys.stderr,
            )
        else:
            # Durable identity comes from the snapshot; flags that only
            # apply to a fresh session must not be silently dropped.
            if args.seed != 0 or args.budget is not None or args.sampling != "mc":
                print(
                    f"restored session state from {state_path}; "
                    "--seed/--budget/--sampling apply only to a cold start",
                    file=sys.stderr,
                )
    if session is None:
        session = StabilitySession(
            ds,
            region=region,
            seed=args.seed,
            budget=args.budget,
            parallel=parallel,
            executor=args.executor,
            max_workers=args.workers,
            kernel=args.kernel,
            sampling=args.sampling,
        )
    with session:
        if args.command == "batch":
            return _run_batch(session, ds, args, out)
        return _run_serve(
            session,
            ds,
            out,
            state_path=state_path,
            checkpoint_every=args.checkpoint_every,
        )


def _load_requests(source: str) -> list:
    """A JSON request list from a file path or ``-`` (stdin)."""
    if source == "-":
        requests = json.load(sys.stdin)
    else:
        with open(source) as handle:
            requests = json.load(handle)
    if not isinstance(requests, list):
        raise SystemExit("requests must be a JSON list of request objects")
    return requests


def _print_outcomes(session: StabilitySession, ds: Dataset, requests, out) -> bool:
    """One deterministic JSON line per outcome (no timing, no cache flag).

    The snapshot/restore commands share this printer so a snapshot-time
    warmup and a restore-time replay of the same requests produce
    byte-identical stdout — the cross-version CI round-trip diffs them.
    Returns whether every outcome succeeded (the commands' exit code).
    """
    all_ok = True
    for i, outcome in enumerate(execute_batch(session, requests)):
        request = outcome.request
        op = (
            request.get("op") if isinstance(request, dict)
            else getattr(request, "op", None)
        )
        record = {"index": i, "op": op, "ok": outcome.ok}
        if outcome.ok:
            record["result"] = _value_to_json(ds, outcome.value)
        else:
            record["error"] = f"{type(outcome.error).__name__}: {outcome.error}"
            all_ok = False
        print(json.dumps(record), file=out)
    return all_ok




def _run_batch(session: StabilitySession, ds: Dataset, args, out) -> int:
    """The ``batch`` subcommand: one amortized pass over a request file."""
    requests = _load_requests(args.requests)
    start = time.perf_counter()
    outcomes = execute_batch(session, requests)
    elapsed = time.perf_counter() - start
    for i, outcome in enumerate(outcomes):
        request = outcome.request
        op = (
            request.get("op") if isinstance(request, dict)
            else getattr(request, "op", None)
        )
        record = {"index": i, "op": op, "ok": outcome.ok,
                  "cached": outcome.cached}
        if outcome.ok:
            record["result"] = _value_to_json(ds, outcome.value)
        else:
            record["error"] = f"{type(outcome.error).__name__}: {outcome.error}"
        print(json.dumps(record), file=out)
    stats = session.stats()
    print(
        json.dumps(
            {
                "batch_seconds": round(elapsed, 6),
                "requests": len(outcomes),
                "cache": stats["cache"],
                "configs": stats["configs"],
            }
        ),
        file=out,
    )
    return 0 if all(o.ok for o in outcomes) else 1


def _run_serve(
    session: StabilitySession,
    ds: Dataset,
    out,
    *,
    state_path=None,
    checkpoint_every: int = 0,
) -> int:
    """The ``serve`` subcommand: a JSON-lines request loop on stdio.

    One transport of the versioned protocol in
    :mod:`repro.server.protocol` — the asyncio TCP server frames the
    same requests and dispatches through the same function, so stdio
    and network clients see identical semantics (structured error
    codes included: malformed JSON, an unknown op, or an oversized
    line each earn one ``{"error": {"code", "message"}}`` response and
    the loop keeps serving).  With ``state_path`` set the session is
    durable: every ``checkpoint_every`` handled requests (and at end
    of input) its pools, cursors, and warm cache are snapshotted
    atomically, and ``{"op": "checkpoint"}`` forces one on demand.
    ``{"op": "shutdown"}`` ends the loop exactly like end-of-input.
    """
    from repro.server import protocol

    hello_extra = protocol.hello_fields(
        transport="stdio",
        datasets=["default"],
        default_dataset="default",
        durable=state_path is not None,
    )
    since_checkpoint = 0

    def checkpoint() -> dict:
        nonlocal since_checkpoint
        info = session.save(state_path)
        since_checkpoint = 0
        return {"path": info.path, "bytes": info.file_bytes}

    def checkpoint_quietly() -> None:
        """Auto-checkpoints must never kill the serving loop.

        A full disk or revoked state dir costs durability, not
        availability: the failure is reported on stderr (stdout stays
        strictly one response per request) and serving continues.  The
        explicit ``{"op": "checkpoint"}`` path still reports failures
        in its response.
        """
        try:
            checkpoint()
        except Exception as exc:
            print(
                f"checkpoint to {state_path} failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )

    stop = False
    for line in _bounded_lines(sys.stdin, protocol.MAX_LINE_BYTES):
        payload = None
        try:
            if line is None:
                raise protocol.RequestError(
                    "line_too_long",
                    f"request line exceeded {protocol.MAX_LINE_BYTES} bytes",
                )
            if not line.strip():
                continue
            payload = protocol.parse_request(line)
            handled = protocol.dispatch(
                session,
                ds,
                payload,
                checkpoint=checkpoint if state_path is not None else None,
                hello_extra=hello_extra,
            )
            response, advanced, stop = (
                handled.response, handled.advanced, handled.stop,
            )
        except protocol.RequestError as exc:
            response, advanced = (
                protocol.error_payload(
                    exc.code, exc.message, request_id=exc.request_id
                ),
                True,
            )
        except Exception as exc:  # a dispatch bug — report, keep serving
            response, advanced = (
                protocol.error_payload(
                    *protocol.classify_exception(exc),
                    request_id=(
                        payload.get("id")
                        if isinstance(payload, dict)
                        else None
                    ),
                ),
                True,
            )
        print(protocol.encode_response(response), file=out, flush=True)
        # Count requests since the last successful save (an explicit
        # checkpoint op resets it), so an on-demand checkpoint landing
        # on the periodic boundary never writes twice back-to-back.
        if advanced:
            since_checkpoint += 1
        if (
            state_path is not None
            and checkpoint_every > 0
            and since_checkpoint >= checkpoint_every
        ):
            checkpoint_quietly()
        if stop:
            break
    if state_path is not None and since_checkpoint > 0:
        checkpoint_quietly()
    return 0


def _bounded_lines(stream, limit: int):
    """Lines from ``stream``, reading at most ``limit`` bytes per line.

    ``None`` marks an oversized line (its remainder is discarded
    through the newline) — the loop answers it with ``line_too_long``
    instead of letting ``for line in stream`` materialise a
    multi-gigabyte frame in memory first.  Works on byte and text
    streams (tests monkeypatch ``sys.stdin`` with ``StringIO``).
    """
    stream = getattr(stream, "buffer", stream)
    newline = b"\n" if isinstance(stream.read(0), bytes) else "\n"
    while True:
        line = stream.readline(limit + 1)
        if not line:
            return
        if len(line) > limit and not line.endswith(newline):
            while True:  # discard through the oversized line's newline
                rest = stream.readline(1 << 20)
                if not rest or rest.endswith(newline):
                    break
            yield None
            continue
        yield line


def _run_stats(args) -> int:
    """The ``stats`` subcommand: one stats op against a TCP server.

    ``--json`` dumps the raw response; the default view summarizes the
    serving state an operator checks first — uptime, request counts,
    per-dataset cache behaviour and pool sizes, resource gauges.
    """
    from repro.server.client import ServeClient

    with ServeClient(args.address, connect_retries=1) as client:
        response = client.stats(
            **({"dataset": args.dataset} if args.dataset else {})
        )
    if not response.get("ok"):
        print(json.dumps(response), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response))
        return 0
    stats = response.get("stats", {})
    server = response.get("server", {})
    metrics = server.get("metrics", {})
    registry = server.get("registry", {})
    print(f"uptime_seconds: {metrics.get('uptime_seconds', stats.get('uptime_seconds'))}")
    print(f"inflight: {server.get('inflight')}  draining: {server.get('draining')}")
    connections = metrics.get("connections", {})
    print(
        f"connections: active={connections.get('active')} "
        f"opened={connections.get('opened')}"
    )
    for op, count in sorted(metrics.get("requests_total", {}).items()):
        latency = metrics.get("latency", {}).get(op, {})
        print(
            f"op {op}: {count} requests, "
            f"p50={latency.get('p50_seconds')}s p95={latency.get('p95_seconds')}s"
        )
    for code, count in sorted(metrics.get("errors_total", {}).items()):
        print(f"error {code}: {count}")
    for name, entry in sorted(registry.get("active", {}).items()):
        print(
            f"dataset {name}: executor={entry.get('executor')} "
            f"kernel={entry.get('kernel')} "
            f"cache_hit_rate={entry.get('cache_hit_rate')} "
            f"pool_samples={entry.get('pool_samples')} "
            f"pool_bytes={entry.get('pool_bytes')} dirty={entry.get('dirty')}"
        )
    for name, value in sorted(metrics.get("resources", {}).items()):
        print(f"resource {name}: {value}")
    slo = metrics.get("slo")
    if slo:
        for name, score in sorted(slo.get("datasets", {}).items()):
            objectives = " ".join(
                f"{label}:burn={obj.get('burn_rate')}"
                for label, obj in sorted(score.get("objectives", {}).items())
            )
            verdict = "ok" if score.get("compliant") else "VIOLATED"
            print(f"slo {name}: {verdict} {objectives}")
    return 0


def _run_diag(args) -> int:
    """The ``diag`` subcommand: fetch and summarize a diag bundle.

    The pretty view answers the first incident questions — what ran
    recently, what was slow, where the time went — without the
    operator parsing JSON by hand; ``--out`` keeps the full bundle.
    """
    from repro.server.client import ServeClient

    with ServeClient(args.address, connect_retries=1) as client:
        response = client.diag()
    if not response.get("ok"):
        print(json.dumps(response), file=sys.stderr)
        return 1
    bundle = response.get("diag")
    if bundle is None:
        print(
            "flight recorder is disabled on the server (started with "
            "--no-flight); no bundle available",
            file=sys.stderr,
        )
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle)
            handle.write("\n")
    if args.json:
        print(json.dumps(bundle))
        return 0
    dropped = bundle.get("dropped", {})
    for ring in ("events", "traces", "slow_queries", "metrics"):
        entries = bundle.get(ring, [])
        print(f"{ring}: {len(entries)} entries, {dropped.get(ring, 0)} dropped")
    for entry in bundle.get("slow_queries", [])[-5:]:
        trace_id = entry.get("trace_id")
        join = f" trace_id={trace_id}" if trace_id else ""
        print(
            f"slow_query op={entry.get('op')} seconds={entry.get('seconds')} "
            f"dataset={entry.get('dataset')} error={entry.get('error')}{join}"
        )
    for entry in bundle.get("events", [])[-10:]:
        print(f"event {entry.get('event')}: {json.dumps(entry)}")
    profile = bundle.get("profile")
    if profile:
        print(
            f"profiler: running={profile.get('running')} "
            f"samples={profile.get('samples')} "
            f"stacks={profile.get('distinct_stacks')}"
        )
        stacks = profile.get("stacks") or {}
        for stack, count in list(stacks.items())[:5]:
            leaf = stack.rsplit(";", 2)[-2:]
            print(f"  {count:>6}  ...{';'.join(leaf)}")
    slo = bundle.get("slo")
    if slo:
        for name, score in sorted(slo.get("datasets", {}).items()):
            verdict = "ok" if score.get("compliant") else "VIOLATED"
            print(f"slo {name}: {verdict}")
    if args.out:
        print(f"bundle written to {args.out}")
    return 0


def _run_loadgen(args) -> int:
    """The ``loadgen`` command: synthetic load, traces, and soaks."""
    from repro.loadgen import WorkloadSpec, generate_plan, run_load, run_soak

    if args.soak is not None:
        if args.address is not None:
            raise SystemExit(
                "--soak self-hosts its server (it needs the /metrics "
                "endpoint); drop --address"
            )
        report = run_soak(
            seconds=args.soak,
            connections=args.connections,
            seed=args.seed,
            rss_limit=args.rss_limit,
            arrival_rate=args.rate,
            profile_hz=args.profile_hz,
            inject_failure=args.inject_failure,
            diag_path=args.diag,
            chaos=args.chaos,
            log=lambda message: print(message, file=sys.stderr),
        )
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.passed else 1

    spec = WorkloadSpec(
        seed=args.seed,
        requests=args.requests,
        connections=args.connections,
        arrival_rate=args.rate,
        burstiness=args.burstiness,
        churn=args.churn,
        pipeline=args.pipeline,
        n_configs=args.configs,
        config_skew=args.skew,
        dataset_family=args.dataset_family,
        dataset_items=args.dataset_items,
        dataset_attributes=args.dataset_attributes,
        dataset_seed=args.dataset_seed,
        server_seed=args.server_seed,
    )
    plan = generate_plan(spec)
    config_fields = {}
    if args.chaos is not None:
        if args.address is not None:
            raise SystemExit(
                "--chaos configures the self-hosted server; drop --address"
            )
        config_fields = {"chaos": args.chaos, "chaos_seed": args.chaos_seed}
    result = run_load(
        plan,
        address=args.address,
        trace_path=args.trace,
        retry=args.retry,
        **config_fields,
    )
    doc = result.to_dict()
    if args.trace:
        doc["trace"] = args.trace
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _run_replay(args) -> int:
    """The ``replay`` command: trace in, equivalence verdict out."""
    from repro.loadgen import TraceError, replay_trace

    try:
        report = replay_trace(
            args.trace,
            address=args.address,
            time_scale=args.time_scale,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            retry=args.retry,
        )
    except (TraceError, ValueError) as exc:
        raise SystemExit(f"cannot replay {args.trace}: {exc}")
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.equivalent else 1


def _run_serve_tcp(args, ds: Dataset, region, parallel) -> int:
    """The ``serve --tcp`` mode: the asyncio multi-client front-end.

    Builds a :class:`~repro.server.SessionRegistry` over the one
    loaded dataset (restore-on-start and checkpointing live there),
    binds :class:`~repro.server.StabilityServer`, and serves until
    SIGTERM/SIGINT or a ``shutdown`` op, then drains gracefully —
    in-flight requests finish and every dirty session is checkpointed
    before exit.
    """
    import asyncio

    from repro.server import (
        ServerConfig,
        SessionRegistry,
        StabilityServer,
        parse_hostport,
    )

    host, port = parse_hostport(args.tcp)
    watermark = None
    if args.memory_watermark is not None:
        from repro.server.resilience import parse_size

        try:
            watermark = parse_size(args.memory_watermark)
        except ValueError as exc:
            raise SystemExit(f"bad --memory-watermark: {exc}")
    registry = SessionRegistry(
        state_dir=args.state_dir,
        seed=args.seed,
        budget=args.budget,
        parallel=parallel,
        executor=args.executor,
        max_workers=args.workers,
        kernel=args.kernel,
        sampling=args.sampling,
    )
    registry.add_dataset(args.dataset_name, ds, region=region)
    try:
        config = ServerConfig(
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            max_pending_per_connection=args.max_pending,
            drain_grace=args.drain_grace,
            checkpoint_every=args.checkpoint_every,
            metrics_port=args.metrics_port,
            slow_query_seconds=(
                args.slow_query_ms / 1000.0
                if args.slow_query_ms is not None
                else None
            ),
            slo=args.slo,
            diag_dir=args.diag_dir,
            flight=not args.no_flight,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            memory_watermark_bytes=watermark,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    server = StabilityServer(registry, config=config)

    async def serve() -> None:
        bound_host, bound_port = await server.start()
        print(
            json.dumps(
                {
                    "serving": f"{bound_host}:{bound_port}",
                    "dataset": args.dataset_name,
                    "durable": args.state_dir is not None,
                    "metrics_port": args.metrics_port,
                }
            ),
            file=sys.stderr,
            flush=True,
        )
        await server.serve_until_shutdown(install_signal_handlers=True)

    asyncio.run(serve())
    for entry in server.drain_report:
        print(json.dumps({"checkpointed": entry}), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
