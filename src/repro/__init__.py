"""repro — a reproduction of "On Obtaining Stable Rankings" (PVLDB 2018).

The library assesses and improves the *stability* of rankings produced by
linear scoring functions ``f_w(t) = sum_j w_j t[j]``: the fraction of the
space of acceptable weight vectors that induces a given ranking.

Quick tour
----------
>>> import numpy as np
>>> from repro import Dataset, ScoringFunction, verify_stability_2d
>>> data = Dataset(np.array([[0.63, 0.71], [0.83, 0.65], [0.58, 0.78],
...                          [0.70, 0.68], [0.53, 0.82]]))
>>> f = ScoringFunction.equal_weights(2)
>>> result = verify_stability_2d(data, f.rank(data))
>>> 0 < result.stability < 1
True

The documented entry point is the :class:`StabilityEngine` facade,
which dispatches on ``(d, n, kind, budget)`` over four registered
backends (verification, batch enumeration, iterative GET-NEXT):

>>> engine = StabilityEngine(data)
>>> engine.backend_name
'twod_exact'
>>> best = engine.get_next()
>>> 0 < best.stability <= 1
True

- ``twod_exact`` — the exact 2D sweep (:class:`repro.core.GetNext2D`);
- ``twod_topk`` — the exact 2D top-k sweep
  (:mod:`repro.core.twod_topk`) serving partial kinds at ``d = 2``;
- ``md_arrangement`` — lazy hyperplane-arrangement construction for
  d > 2 (:class:`repro.core.GetNextMD`);
- ``randomized`` — the Monte-Carlo operator, the only one supporting
  top-k partial rankings beyond 2D
  (:class:`repro.core.GetNextRandomized`), whose hot path runs on the
  vectorized :mod:`repro.engine.kernel`.

Serving workloads (repeated, incremental, or batched queries over one
dataset) go through the service layer (:mod:`repro.service`): a
:class:`StabilitySession` keeps cumulative sample pools, the shared
k-skyband index, and a keyed LRU result cache alive across calls, and
:func:`execute_batch` amortizes one sampling pass over a whole batch
of :class:`StabilityRequest`\\ s, shard-parallel when it pays.
"""

from repro import errors
from repro.core import (
    AngularRegion,
    BoundaryPair,
    RankProfile,
    Cone,
    ConstrainedRegion,
    Dataset,
    FullSpace,
    GetNext2D,
    GetNextMD,
    GetNextRandomized,
    Ranking,
    RegionOfInterest,
    ScoringFunction,
    StabilityResult,
    enumerate_stable_rankings,
    exchange_hyperplanes,
    make_get_next,
    rank_items,
    ranking_from_scores,
    ranking_region_md,
    boundary_pairs_2d,
    chebyshev_direction,
    facet_pairs_md,
    kendall_tau_within,
    rank_profile,
    ray_sweep,
    stable_pairs,
    sweep_boundaries,
    tight_constraints,
    tolerant_stability,
    top_h_stable_rankings,
    topk_membership_probability,
    verify_stability_2d,
    verify_stability_md,
    verify_topk_ranking_stability,
    verify_topk_set_stability,
)
from repro.core import (
    RankingLabel,
    TradeoffPoint,
    absolute_best_volumes,
    build_label,
    enumerate_topk_2d,
    most_stable_within,
    stability_similarity_tradeoff,
    sweep_topk_2d,
    verify_topk_2d,
)
from repro.engine import kernel
from repro.engine.backends import (
    StabilityBackend,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.engine.engine import StabilityEngine
from repro.service import (
    ObserveExecutor,
    ResultCache,
    StabilityRequest,
    StabilitySession,
    execute_batch,
    parallel_observe,
)

__version__ = "1.1.0"

#: Server-tier names resolved lazily: ``repro.server`` pulls in asyncio
#: machinery no library-only consumer should pay for at import time.
_SERVER_EXPORTS = (
    "ServeClient",
    "ServerConfig",
    "SessionRegistry",
    "StabilityServer",
    "serve_in_thread",
)


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        import repro.server as _server

        return getattr(_server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "errors",
    "ServeClient",
    "ServerConfig",
    "SessionRegistry",
    "StabilityServer",
    "serve_in_thread",
    "StabilityEngine",
    "StabilitySession",
    "StabilityRequest",
    "ResultCache",
    "execute_batch",
    "parallel_observe",
    "ObserveExecutor",
    "StabilityBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "resolve_backend",
    "kernel",
    "Dataset",
    "Ranking",
    "rank_items",
    "ranking_from_scores",
    "ScoringFunction",
    "RegionOfInterest",
    "FullSpace",
    "Cone",
    "ConstrainedRegion",
    "AngularRegion",
    "StabilityResult",
    "verify_stability_2d",
    "ray_sweep",
    "sweep_boundaries",
    "GetNext2D",
    "verify_stability_md",
    "ranking_region_md",
    "exchange_hyperplanes",
    "GetNextMD",
    "GetNextRandomized",
    "make_get_next",
    "enumerate_stable_rankings",
    "top_h_stable_rankings",
    "tolerant_stability",
    "kendall_tau_within",
    "BoundaryPair",
    "boundary_pairs_2d",
    "facet_pairs_md",
    "tight_constraints",
    "chebyshev_direction",
    "RankProfile",
    "rank_profile",
    "topk_membership_probability",
    "stable_pairs",
    "verify_topk_set_stability",
    "verify_topk_ranking_stability",
    "RankingLabel",
    "build_label",
    "TradeoffPoint",
    "most_stable_within",
    "stability_similarity_tradeoff",
    "absolute_best_volumes",
    "sweep_topk_2d",
    "enumerate_topk_2d",
    "verify_topk_2d",
    "__version__",
]
