"""The stability service layer: sessions, caching, batching, sharding.

The engine answers one query at a time from scratch; this package
turns it into a serving tier:

- :mod:`repro.service.session` — :class:`StabilitySession`, reusable
  per-dataset state (cumulative Monte-Carlo pools, the shared k-skyband
  index, cached exact enumerations) behind pool-based query semantics;
- :mod:`repro.service.cache` — :class:`ResultCache`, a keyed LRU over
  ``(dataset fingerprint, query kind, params, budget)`` with hit/miss
  stats and per-dataset invalidation;
- :mod:`repro.service.batch` — :class:`StabilityRequest` /
  :func:`execute_batch`, grouping heterogeneous requests by backend and
  amortizing one sampling pass across a whole batch;
- :mod:`repro.service.parallel` — :class:`ObserveExecutor` /
  :func:`parallel_observe`, shard-parallel observe over the kernel's
  scoring chunks (serial / thread pool / process pool behind one dial)
  with exact serial tally equivalence and a serial fallback below the
  auto threshold;
- :mod:`repro.service.procpool` — :class:`ProcessObserveEngine`, the
  persistent process pool behind ``executor="process"``: the dataset
  lives in shared memory once, workers map zero-copy views and run the
  pure chunk reduction out-of-process;
- :mod:`repro.service.persist` — versioned snapshot/restore for
  sessions (:meth:`StabilitySession.save` /
  :meth:`StabilitySession.restore`): byte-packed tallies, rng streams,
  cursors, and warm cache entries in one checksummed container, so a
  service restart keeps its pools.
"""

from repro.service.batch import (
    BatchOutcome,
    BatchPlanner,
    StabilityRequest,
    execute_batch,
)
from repro.service.cache import (
    MISS,
    CacheStats,
    ResultCache,
    dataset_fingerprint,
    make_key,
)
from repro.service.parallel import (
    ObserveExecutor,
    default_workers,
    parallel_observe,
    should_parallelize,
)
from repro.service.procpool import ProcessObserveEngine, live_segments
from repro.service.persist import (
    SNAPSHOT_VERSION,
    SnapshotInfo,
    load_session,
    read_snapshot_header,
    save_session,
)
from repro.service.session import VERIFY_MIN_SAMPLES, StabilitySession

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotInfo",
    "save_session",
    "load_session",
    "read_snapshot_header",
    "StabilitySession",
    "VERIFY_MIN_SAMPLES",
    "ResultCache",
    "CacheStats",
    "MISS",
    "dataset_fingerprint",
    "make_key",
    "StabilityRequest",
    "BatchOutcome",
    "BatchPlanner",
    "execute_batch",
    "parallel_observe",
    "should_parallelize",
    "ObserveExecutor",
    "ProcessObserveEngine",
    "default_workers",
    "live_segments",
]
