"""Shard-parallel observe for the randomized backend.

The kernel's observe pass is embarrassingly parallel across scoring
chunks: each chunk's BLAS product, ranking-key reduction, and byte-pack
is independent, and numpy releases the GIL inside all three, so a
thread pool scales the pass across cores without pickling the dataset.

Exact serial equivalence is preserved by construction:

1. the pruning-index build and chunk plan run first, exactly as the
   serial path would (:meth:`GetNextRandomized.prepare_observe` /
   :meth:`~GetNextRandomized.plan_chunks` — deterministic, and pinnable
   via the ``REPRO_SCORING_CHUNK`` environment variable);
2. weight sampling stays on the caller's thread, one chunk at a time in
   plan order, so the operator's rng consumes the identical stream;
3. workers run only the pure chunk reduction
   (:meth:`~GetNextRandomized.rows_for_weights` + byte-pack +
   ``np.unique``), producing a mergeable mini-tally per chunk;
4. mini-tallies fold into the operator's tally **in plan order**
   (:meth:`RankingTally.observe_packed`), reproducing the serial
   tally byte-for-byte — counts, totals, and first-seen tie-breaks.

A serial fallback runs when the dataset or the pass is too small to
amortise thread handoff, or the host has a single core.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ThreadPoolExecutor

import numpy as np

from repro.core.randomized import GetNextRandomized
from repro.engine import kernel

__all__ = [
    "PARALLEL_MIN_ITEMS",
    "PARALLEL_MIN_CHUNKS",
    "default_workers",
    "should_parallelize",
    "parallel_observe",
]

#: Below this many (effective) items a chunk reduction is too cheap for
#: thread handoff to pay off — the serial fallback runs instead.
PARALLEL_MIN_ITEMS = 2_048

#: A pass needs at least this many chunks for sharding to matter.
PARALLEL_MIN_CHUNKS = 2


def default_workers() -> int:
    """Worker count for an auto-configured pool (cores minus one, >= 1)."""
    return max((os.cpu_count() or 1) - 1, 1)


def should_parallelize(
    n_items: int,
    n_chunks: int,
    max_workers: int,
    *,
    min_items: int = PARALLEL_MIN_ITEMS,
    min_chunks: int = PARALLEL_MIN_CHUNKS,
) -> bool:
    """The auto threshold: shard only when the pass can win."""
    return (
        max_workers > 1
        and n_items >= min_items
        and n_chunks >= min_chunks
    )


def _reduce_chunk(op: GetNextRandomized, weights: np.ndarray):
    """Worker body: one chunk's rows, byte-packed and pre-reduced."""
    rows = op.rows_for_weights(weights)
    packed = kernel.pack_rows(rows, op.tally.dtype)
    uniques, freqs = np.unique(packed, return_counts=True)
    return [key.tobytes() for key in uniques], freqs, rows.shape[0]


def parallel_observe(
    op,
    n_new: int,
    *,
    executor: Executor | None = None,
    max_workers: int | None = None,
    min_items: int = PARALLEL_MIN_ITEMS,
) -> int:
    """Grow ``op``'s sample pool by ``n_new``, sharding across workers.

    Parameters
    ----------
    op:
        A :class:`~repro.core.randomized.GetNextRandomized` operator or
        a backend wrapping one (anything with a ``.raw`` attribute).
    n_new:
        Number of new sampled functions to observe.
    executor:
        An existing pool to run chunk reductions on.  Passing one
        forces the sharded path (no auto threshold) — callers owning a
        pool have already decided to shard; ``None`` creates a
        transient :class:`~concurrent.futures.ThreadPoolExecutor` when
        the auto threshold passes, and falls back to the serial
        ``op.observe`` otherwise.
    max_workers:
        Pool width for the transient pool (default: cores minus one).
        ``max_workers <= 1`` forces the serial fallback.
    min_items:
        Auto-threshold override on the effective item count.

    Returns
    -------
    int
        The number of chunks reduced on the pool, or ``0`` when the
        serial fallback ran.  Either way the pool has grown by
        ``n_new`` and the tally matches the serial result exactly.
    """
    op = getattr(op, "raw", op)
    if not isinstance(op, GetNextRandomized):
        raise TypeError(
            f"parallel_observe requires a randomized operator, got {type(op).__name__}"
        )
    if n_new <= 0:
        return 0
    op.prepare_observe(n_new)
    sizes = op.plan_chunks(n_new)
    workers = max_workers if max_workers is not None else default_workers()
    if executor is None and not should_parallelize(
        op.dataset.n_items, len(sizes), workers, min_items=min_items
    ):
        op.observe(n_new)
        return 0
    # Sampling consumes the rng serially in plan order — the stream is
    # identical to the serial path's.
    weight_chunks = [op.region.sample(batch, op.rng) for batch in sizes]
    own_pool: ThreadPoolExecutor | None = None
    pool = executor
    if pool is None:
        own_pool = ThreadPoolExecutor(
            max_workers=min(workers, len(sizes)),
            thread_name_prefix="repro-observe",
        )
        pool = own_pool
    try:
        futures = [pool.submit(_reduce_chunk, op, w) for w in weight_chunks]
        for future in futures:  # plan order — NOT completion order
            keys, freqs, n_rows = future.result()
            op.tally.observe_packed(keys, freqs, n_rows)
    finally:
        if own_pool is not None:
            own_pool.shutdown(wait=True)
    return len(sizes)
