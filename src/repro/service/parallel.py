"""Shard-parallel observe for the randomized backend.

The kernel's observe pass is embarrassingly parallel across scoring
chunks: each chunk's BLAS product, ranking-key reduction, and byte-pack
is independent, and numpy releases the GIL inside all three, so a
thread pool scales the pass across cores without pickling the dataset;
a *process* pool (:mod:`repro.service.procpool`) goes further, moving
the whole reduction — including the GIL-bound byte-pack/unique tail —
out of the serving process over zero-copy shared-memory views.

Exact serial equivalence is preserved by construction (both pools):

1. the pruning-index build and chunk plan run first, exactly as the
   serial path would (:meth:`GetNextRandomized.prepare_observe` /
   :meth:`~GetNextRandomized.plan_chunks` — deterministic, and pinnable
   via the ``REPRO_SCORING_CHUNK`` environment variable);
2. weight sampling stays on the caller's thread, one chunk at a time in
   plan order, so the operator's rng consumes the identical stream;
3. workers run only the pure chunk reduction
   (:meth:`~GetNextRandomized.rows_for_weights` + byte-pack +
   ``np.unique``), producing a mergeable mini-tally per chunk;
4. mini-tallies fold into the operator's tally **in plan order**
   (:meth:`RankingTally.observe_packed`), reproducing the serial
   tally byte-for-byte — counts, totals, and first-seen tie-breaks.

:class:`ObserveExecutor` is the one dial over all of it: ``serial`` /
``thread`` / ``process`` backends behind a single ``observe`` call,
with an ``auto`` mode that picks per pass from the work size
(``n_items`` x chunks x cores) and the packed-key width.  The
``REPRO_EXECUTOR`` environment variable overrides the mode,
``REPRO_MAX_WORKERS`` caps the auto-sized pools.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ThreadPoolExecutor

import numpy as np

from repro.core.randomized import GetNextRandomized
from repro.obs import tracing as obs_trace

__all__ = [
    "PARALLEL_MIN_ITEMS",
    "PARALLEL_MIN_CHUNKS",
    "PROCESS_MIN_ITEMS",
    "PROCESS_MAX_KEY_BYTES",
    "EXECUTOR_ENV_VAR",
    "MAX_WORKERS_ENV_VAR",
    "EXECUTOR_MODES",
    "default_workers",
    "should_parallelize",
    "resolve_executor_mode",
    "parallel_observe",
    "ObserveExecutor",
]

#: Below this many (effective) items a chunk reduction is too cheap for
#: thread handoff to pay off — the serial fallback runs instead.
PARALLEL_MIN_ITEMS = 2_048

#: A pass needs at least this many chunks for sharding to matter.
PARALLEL_MIN_CHUNKS = 2

#: Below this many items the per-chunk IPC (pickle weights out, packed
#: uniques back) outweighs what a worker process saves over a thread.
PROCESS_MIN_ITEMS = 50_000

#: Auto mode never routes a pass whose packed ranking keys are wider
#: than this to the process pool: result transport is ``O(rows x
#: key_bytes)``, so full-ranking keys at large ``n`` (4 bytes per item
#: per sample) would drown the win in IPC.  Top-k keys are a few dozen
#: bytes and ship for free.
PROCESS_MAX_KEY_BYTES = 256

#: Environment override forcing the executor mode for every pass.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment cap on auto-sized worker pools (see :func:`default_workers`).
MAX_WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"

EXECUTOR_MODES = ("auto", "serial", "thread", "process")


def default_workers() -> int:
    """Worker count for an auto-configured pool.

    Precedence (an explicit ``max_workers`` argument anywhere in the
    stack always wins over all of this):

    1. ``REPRO_MAX_WORKERS`` — a hard cap on the derived value;
    2. ``os.sched_getaffinity`` — the CPUs this process may actually
       run on (cgroup/taskset limits), where the platform has it;
    3. ``os.cpu_count()`` — the host's logical cores.

    The derived value is "available cores minus one" (the caller's
    thread keeps sampling weights while workers reduce), floored at 1.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    workers = max(available - 1, 1)
    cap = os.environ.get(MAX_WORKERS_ENV_VAR)
    if cap:
        capped = int(cap)
        if capped < 1:
            raise ValueError(
                f"{MAX_WORKERS_ENV_VAR} must be a positive integer, got {cap!r}"
            )
        workers = min(workers, capped)
    return workers


def should_parallelize(
    n_items: int,
    n_chunks: int,
    max_workers: int,
    *,
    min_items: int = PARALLEL_MIN_ITEMS,
    min_chunks: int = PARALLEL_MIN_CHUNKS,
) -> bool:
    """The auto threshold: shard only when the pass can win."""
    return (
        max_workers > 1
        and n_items >= min_items
        and n_chunks >= min_chunks
    )


def resolve_executor_mode(
    n_items: int,
    n_chunks: int,
    max_workers: int,
    *,
    key_bytes: int | None = None,
) -> str:
    """Auto-select ``serial`` / ``thread`` / ``process`` for one pass.

    The decision surface (also the README's executor-selection table):

    - too small to shard (``n_items < 2_048``, fewer than 2 chunks, or
      a single worker) -> ``serial``;
    - shardable but under 50_000 items, or packed keys wider than
      :data:`PROCESS_MAX_KEY_BYTES` (full rankings at large ``n``) ->
      ``thread`` — the GIL-releasing numpy sections dominate there and
      IPC would eat the process win;
    - at least 50_000 items with narrow keys -> ``process``.
    """
    if not should_parallelize(n_items, n_chunks, max_workers):
        return "serial"
    if n_items < PROCESS_MIN_ITEMS:
        return "thread"
    if key_bytes is not None and key_bytes > PROCESS_MAX_KEY_BYTES:
        return "thread"
    return "process"


def _reduce_chunk(op: GetNextRandomized, weights: np.ndarray):
    """Worker body: one chunk's rows, byte-packed and pre-reduced.

    Returns the packed ``np.unique`` arrays as-is —
    :meth:`~repro.engine.kernel.RankingTally.observe_packed` consumes
    array keys directly, so no per-key Python list is built here.  The
    reduction runs on the operator's kernel backend
    (:meth:`~GetNextRandomized.reduce_for_weights`); the jitted backend
    releases the GIL for the whole selection, so threads win extra
    speedup beyond the BLAS sections.
    """
    return op.reduce_for_weights(weights)


def parallel_observe(
    op,
    n_new: int,
    *,
    executor: Executor | None = None,
    max_workers: int | None = None,
    min_items: int = PARALLEL_MIN_ITEMS,
    force: bool = False,
) -> int:
    """Grow ``op``'s sample pool by ``n_new``, sharding across workers.

    Parameters
    ----------
    op:
        A :class:`~repro.core.randomized.GetNextRandomized` operator or
        a backend wrapping one (anything with a ``.raw`` attribute).
    n_new:
        Number of new sampled functions to observe.
    executor:
        An existing pool to run chunk reductions on.  ``None`` creates
        a transient :class:`~concurrent.futures.ThreadPoolExecutor`
        when the auto threshold passes, and falls back to the serial
        ``op.observe`` otherwise.  A caller-owned pool skips the
        *worker-count* half of the threshold (the pool's width is its
        owner's business) but still short-circuits to serial when the
        pass itself is too small to amortise handoff — a session
        keeping one warm pool must not pay chunk submission for every
        tiny top-up.
    max_workers:
        Pool width for the transient pool (default:
        :func:`default_workers`).  ``max_workers <= 1`` forces the
        serial fallback.
    min_items:
        Auto-threshold override on the effective item count.
    force:
        Run the sharded path unconditionally (tests pinning the
        sharded code path on tiny fixtures; requires an ``executor``
        or ``max_workers > 1``).

    Returns
    -------
    int
        The number of chunks reduced on the pool, or ``0`` when the
        serial fallback ran.  Either way the pool has grown by
        ``n_new`` and the tally matches the serial result exactly.
    """
    op = getattr(op, "raw", op)
    if not isinstance(op, GetNextRandomized):
        raise TypeError(
            f"parallel_observe requires a randomized operator, got {type(op).__name__}"
        )
    if n_new <= 0:
        return 0
    op.prepare_observe(n_new)
    sizes = op.plan_chunks(n_new)
    workers = max_workers if max_workers is not None else default_workers()
    if not force:
        # A caller-owned executor has already sized its pool; judge only
        # the pass (items x chunks), not the worker count.
        effective_workers = 2 if executor is not None else workers
        if not should_parallelize(
            op.dataset.n_items, len(sizes), effective_workers, min_items=min_items
        ):
            op.observe(n_new)
            return 0
    # Sampling consumes the operator's stream serially in plan order —
    # identical to the serial path's (rng for "mc", the quasi stream's
    # running Halton index for "qmc").
    traced = obs_trace.tracing_enabled()
    clock = time.perf_counter
    t0 = clock() if traced else 0.0
    weight_chunks = [op.sample_weights(batch) for batch in sizes]
    if traced:
        obs_trace.record("observe.sample", clock() - t0,
                         count=len(sizes), n=n_new)
    own_pool: ThreadPoolExecutor | None = None
    pool = executor
    if pool is None:
        own_pool = ThreadPoolExecutor(
            max_workers=min(max(workers, 1), len(sizes)),
            thread_name_prefix="repro-observe",
        )
        pool = own_pool
    try:
        t1 = clock() if traced else 0.0
        futures = [pool.submit(_reduce_chunk, op, w) for w in weight_chunks]
        if traced:
            obs_trace.record("observe.submit", clock() - t1, count=len(futures))
        t2 = clock() if traced else 0.0
        for future in futures:  # plan order — NOT completion order
            keys, freqs, n_rows = future.result()
            op.tally.observe_packed(keys, freqs, n_rows)
        if traced:
            # Wait-and-fold: worker reductions overlap this loop, so it
            # covers the whole reduce+fold tail of the pass.
            obs_trace.record("observe.fold", clock() - t2, count=len(futures))
    finally:
        if own_pool is not None:
            own_pool.shutdown(wait=True)
    return len(sizes)


class ObserveExecutor:
    """One dial over serial / thread-pool / process-pool observe.

    The session, the batch planner, and the server all route pool
    growth through one of these; it owns the persistent pools (one
    thread pool, one process engine per dataset) and picks the backend
    per pass:

    - ``mode="serial"`` — always ``op.observe`` on the caller's thread;
    - ``mode="thread"`` / ``"process"`` — always that pool (explicit
      modes run the sharded path even for tiny passes: the caller has
      decided, and tests rely on pinning the code path);
    - ``mode="auto"`` — :func:`resolve_executor_mode` per pass.

    ``REPRO_EXECUTOR`` overrides ``mode`` at construction;
    ``REPRO_MAX_WORKERS`` caps auto-sized pool widths (explicit
    ``max_workers`` wins).  :meth:`close` shuts both pools down and
    unlinks the process engine's shared-memory segments — sessions call
    it from their own ``close``, so server drains and evictions release
    everything deterministically.
    """

    def __init__(
        self,
        mode: str = "auto",
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
    ):
        env = os.environ.get(EXECUTOR_ENV_VAR)
        if env:
            mode = env
        if mode not in EXECUTOR_MODES:
            raise ValueError(
                f"executor mode must be one of {EXECUTOR_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.max_workers = max_workers
        self.start_method = start_method
        self._thread_pool: ThreadPoolExecutor | None = None
        self._proc = None  # ProcessObserveEngine, lazy
        self._closed = False
        #: Cost-attribution record of the most recent pass:
        #: ``{"executor", "n", "chunks", "kernel"}`` (observability only).
        self.last_pass: dict | None = None

    # -- sizing ---------------------------------------------------------
    @property
    def workers(self) -> int:
        return (
            self.max_workers
            if self.max_workers is not None
            else default_workers()
        )

    def resolve(self, op, n_chunks: int) -> str:
        """The backend one pass of ``n_chunks`` over ``op`` would use."""
        if self.mode != "auto":
            return self.mode
        raw = getattr(op, "raw", op)
        key_bytes = raw.tally.key_length * raw.tally.dtype.itemsize
        return resolve_executor_mode(
            raw.dataset.n_items, n_chunks, self.workers, key_bytes=key_bytes
        )

    # -- pools ----------------------------------------------------------
    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=max(self.workers, 1),
                thread_name_prefix="repro-observe",
            )
        return self._thread_pool

    def _processes(self, dataset):
        from repro.service.procpool import ProcessObserveEngine

        if self._proc is not None and self._proc.dataset.values is not dataset.values:
            # The served dataset was swapped; the old segments are stale.
            self._proc.close()
            self._proc = None
        if self._proc is None:
            self._proc = ProcessObserveEngine(
                dataset,
                max_workers=max(self.workers, 1),
                start_method=self.start_method,
            )
        return self._proc

    # -- the one entry point -------------------------------------------
    def observe(self, op, n_new: int) -> str:
        """Grow ``op``'s pool by ``n_new``; returns the backend used.

        Every backend produces the byte-identical tally; the return
        value (``"serial"`` / ``"thread"`` / ``"process"``) is for
        observability and tests only.
        """
        if self._closed:
            raise RuntimeError("ObserveExecutor is closed")
        raw = getattr(op, "raw", op)
        if n_new <= 0:
            return "serial"
        # Lazy import: resilience lives above the service tier, and a
        # module-level import here would re-enter the
        # registry -> session -> parallel import cycle.
        from repro.server.resilience import current_deadline

        deadline = current_deadline()
        with obs_trace.span("observe.pass", n=n_new) as pass_span:
            if deadline is None:
                mode, n_chunks = self._observe_one(raw, n_new)
            else:
                mode, n_chunks = self._observe_cooperative(
                    raw, n_new, deadline
                )
            pass_span.set(executor=mode, chunks=n_chunks,
                          kernel=raw.kernel_backend.name)
        self.last_pass = {
            "executor": mode,
            "n": n_new,
            "chunks": n_chunks,
            "kernel": raw.kernel_backend.name,
        }
        return mode

    def _observe_cooperative(self, raw, n_new: int, deadline) -> tuple[str, int]:
        """One observe pass with deadline checks between chunk groups.

        Byte-identity with the uninterrupted pass is load-bearing:
        ``prepare_observe`` runs once with the *full* ``n_new`` (so
        candidate pruning and chunk auto-tuning see exactly what a
        serial pass would), and the sub-passes follow the full pass's
        ``plan_chunks`` decomposition group by group — each sub-pass
        re-plans to the identical chunk slice, so the weight stream and
        fold order match sample for sample.  A deadline expiry between
        groups raises :class:`DeadlineExceededError` with every
        completed group already folded into the pool — a retry resumes
        warm from there.
        """
        deadline.check("before the observe pass started")
        # Fix candidate pruning and chunk tuning against the full pass
        # size before grouping; the per-group prepare calls below are
        # idempotent no-ops after this.
        raw.prepare_observe(n_new)
        sizes = raw.plan_chunks(n_new)
        group = max(4, 2 * max(self.workers, 1))
        if len(sizes) <= group:
            return self._observe_one(raw, n_new)
        mode, drawn = "serial", 0
        for start in range(0, len(sizes), group):
            if start:
                deadline.check(
                    f"observe pass cancelled after {drawn} of {n_new} "
                    "samples (completed samples stay pooled)"
                )
            sub_n = sum(sizes[start:start + group])
            mode, _ = self._observe_one(raw, sub_n)
            drawn += sub_n
        return mode, len(sizes)

    def _observe_one(self, raw, n_new: int) -> tuple[str, int]:
        if self.mode == "serial":
            raw.observe(n_new)
            return "serial", 0
        raw.prepare_observe(n_new)
        n_chunks = len(raw.plan_chunks(n_new))
        mode = self.resolve(raw, n_chunks)
        if mode == "serial" or self.workers < 1 or n_chunks < 1:
            raw.observe(n_new)
            return "serial", n_chunks
        forced = self.mode != "auto"
        if mode == "process":
            self._processes(raw.dataset).observe(raw, n_new, force=forced)
            return "process", n_chunks
        sharded = parallel_observe(
            raw, n_new, executor=self._threads(), force=forced
        )
        return ("thread" if sharded else "serial"), n_chunks

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down both pools (idempotent); unlinks shared memory."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._proc is not None:
            self._proc.close()
            self._proc = None

    def __enter__(self) -> "ObserveExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
