"""The :class:`StabilitySession`: reusable serving state for one dataset.

A session is what turns the per-call :class:`~repro.engine.StabilityEngine`
into a service tier.  It fingerprints its dataset, owns one engine per
query configuration ``(kind, k, backend)``, and keeps every piece of
expensive state alive across calls:

- **cumulative Monte-Carlo pools** — randomized configurations keep one
  :class:`~repro.engine.kernel.RankingTally` each, so a follow-up query
  answers from samples already drawn instead of starting from zero;
- **the k-skyband index** — one shared
  :class:`~repro.operators.skyline.KSkybandIndex` serves every top-k
  configuration (bands cache per ``k``);
- **cached arrangement cells / sweep results** — exact backends are
  instantiated once, so the 2D sweeps and the lazy MD arrangement keep
  their enumerations and split bookkeeping;
- **a keyed LRU result cache** — idempotent queries (``top_stable``,
  ``stability_of``) memoize their results under the full query identity
  (:func:`repro.service.cache.make_key`), so a warm repeat returns in
  microseconds.

Query semantics
---------------
Session queries are *pool-based*: ``budget`` (and ``min_samples``)
name a **cumulative** pool target, not a per-call increment.

- :meth:`StabilitySession.top_stable` / :meth:`~StabilitySession.stability_of`
  are idempotent — same query, same pool, same answer — which is what
  makes them cacheable;
- :meth:`StabilitySession.get_next` is a cursor over the current pool:
  it tops the pool up to the target, then consumes the best unreturned
  ranking.  Once every observed ranking has been returned it raises
  :class:`~repro.errors.ExhaustedError`; pass a larger ``budget`` (or
  call :meth:`~StabilitySession.observe`) to discover more.

Because pool growth is monotone in the *target*, executing a batch of
requests after one shared top-up (see :mod:`repro.service.batch`)
produces exactly the answers sequential execution would — with one
sampling pass instead of one per request.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import Dataset
from repro.core.randomized import RankingKind
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.engine.backends import DEFAULT_BUDGET, resolve_backend
from repro.engine.engine import StabilityEngine
from repro.errors import ExhaustedError
from repro.obs import log_event
from repro.obs import tracing as obs_trace
from repro.operators.skyline import KSkybandIndex
from repro.service.budget import (
    PrecisionBudget,
    ensure_precision,
    leading_interval,
    parse_budget,
    precision_satisfied,
)
from repro.service.cache import MISS, ResultCache, dataset_fingerprint, make_key
from repro.service.parallel import ObserveExecutor

__all__ = ["StabilitySession", "VERIFY_MIN_SAMPLES"]

#: Default cumulative pool target for ``stability_of`` on a randomized
#: configuration (the paper's first-call budget).
VERIFY_MIN_SAMPLES = 5_000


@dataclass
class _ConfigState:
    """Per-``(kind, k, backend)`` serving state."""

    engine: StabilityEngine
    # Exact backends enumerate deterministically; the session records
    # the enumeration prefix so top_stable stays non-consuming while
    # get_next cursors over the same list.
    yielded: list[StabilityResult] = field(default_factory=list)
    cursor: int = 0
    exhausted: bool = False

    @property
    def is_randomized(self) -> bool:
        return self.engine.backend_name == "randomized"


class StabilitySession:
    """Batched, cached, reusable stability serving over one dataset.

    Parameters
    ----------
    dataset:
        The database being served.
    region:
        Region of interest shared by every query of the session.
    seed:
        Reproducibility anchor.  Each query configuration derives an
        independent, deterministic stream from ``(seed, kind, k,
        backend)`` — creation order does not matter, so sequential and
        batched executions of the same requests sample identically.
    rng:
        Alternative entropy source when ``seed`` is not given (one
        integer is drawn to anchor the session).
    confidence:
        Confidence level for Monte-Carlo error half-widths.
    cache:
        A shared :class:`~repro.service.cache.ResultCache`, or ``None``
        to give the session a private cache of ``cache_size`` entries.
        Pass ``cache_size=0`` to disable caching.
    parallel:
        ``"auto"`` (default) shards observe passes across a worker pool
        when the dataset and pass are large enough; ``True`` forces
        thread-pool sharding, ``False`` forces serial observe.
        Subsumed by ``executor`` (kept for compatibility).
    executor:
        Observe-executor mode: ``"serial"``, ``"thread"``,
        ``"process"`` (persistent shared-memory worker pool, see
        :mod:`repro.service.procpool`), or ``"auto"`` (pick per pass
        from the work size and key width).  ``None`` derives the mode
        from ``parallel``.  The ``REPRO_EXECUTOR`` environment
        variable overrides either.
    max_workers:
        Worker-pool width for sharded observe (default:
        :func:`repro.service.parallel.default_workers` — affinity-aware
        cores minus 1, capped by ``REPRO_MAX_WORKERS``).
    start_method:
        Multiprocessing start method for ``executor="process"``
        (default: ``fork`` where available; ``REPRO_START_METHOD``
        overrides).
    budget:
        Default cumulative pool target per configuration (default
        5,000, the paper's first-call budget); also used as the
        dispatch hint when resolving ``backend="auto"``.  Accepts a
        plain sample count or a precision spec — ``"ci:0.02"`` /
        ``"ci:0.02@200000"`` (see :mod:`repro.service.budget`) — in
        which case pools grow adaptively until the leading ranking's
        confidence half-width meets the target, and stop there.
    kernel:
        Kernel backend for the chunk reduction (``"numpy"``,
        ``"numba"``, ``"auto"``); ``None`` defers to the
        ``REPRO_KERNEL`` environment variable, then auto-selection.
        A pure speed dial: every backend produces byte-identical
        tallies, so answers (and snapshots) do not depend on it.
    sampling:
        ``"mc"`` (default) or ``"qmc"`` — the randomized pools' weight
        source (plain Monte-Carlo vs a randomised low-discrepancy
        stream; see :class:`repro.core.randomized.GetNextRandomized`).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        cache: ResultCache | None = None,
        cache_size: int = 512,
        parallel: bool | str = "auto",
        executor: str | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        budget: "int | str | PrecisionBudget | None" = None,
        kernel: str | None = None,
        sampling: str = "mc",
    ):
        self.dataset = dataset
        self.region = (
            region if region is not None else FullSpace(dataset.n_attributes)
        )
        self.confidence = confidence
        if parallel not in (True, False, "auto"):
            raise ValueError(f"parallel must be True, False or 'auto', got {parallel!r}")
        self.parallel = parallel
        self.max_workers = max_workers
        if executor is None:
            executor = {False: "serial", True: "thread", "auto": "auto"}[parallel]
        self._observer = ObserveExecutor(
            executor, max_workers=max_workers, start_method=start_method
        )
        if sampling not in ("mc", "qmc"):
            raise ValueError(f"sampling must be 'mc' or 'qmc', got {sampling!r}")
        self.kernel = kernel
        self.sampling = sampling
        budget = parse_budget(budget)
        self._budget_hint = budget
        self.default_budget = budget if budget is not None else DEFAULT_BUDGET
        if seed is not None:
            self._entropy = int(seed)
        elif rng is not None:
            self._entropy = int(rng.integers(2**63))
        else:
            self._entropy = int(np.random.SeedSequence().entropy % (2**63))
        self.cache = cache if cache is not None else ResultCache(cache_size)
        self._fingerprint = dataset_fingerprint(dataset)
        self._region_key = repr(self.region)
        self._states: dict[tuple, _ConfigState] = {}
        self._skyband: KSkybandIndex | None = None
        self._local = threading.local()
        self._created_at = time.time()
        self._cost_lock = threading.Lock()
        # Cumulative cost attribution across every query of the session
        # (cache_hits/misses count only the cacheable idempotent ops).
        self._cost_totals = {
            "queries": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "samples_drawn": 0,
            "samples_reused": 0,
        }

    @property
    def last_query_cached(self) -> bool:
        """Whether this thread's most recent top_stable/stability_of
        call answered from the result cache (always False for
        get_next).  Batch execution reports it per outcome; a diff of
        the shared cache's global hit counter would misattribute hits
        made concurrently by other sessions.  Thread-local, because
        the TCP server interleaves read-locked queries from several
        executor threads over one session — a shared flag would let
        thread A's cache hit masquerade as thread B's.
        """
        return getattr(self._local, "cached", False)

    @last_query_cached.setter
    def last_query_cached(self, value: bool) -> None:
        self._local.cached = bool(value)

    @property
    def last_query_cost(self) -> dict | None:
        """Cost-attribution record of this thread's most recent query.

        ``{"op", "backend", "cached", "samples_before", "samples_after",
        "samples_drawn", "pool_reused_fraction", "executor", "chunks",
        "kernel", "sampling"[, "ci_width", "target"]}`` for randomized
        configurations; exact backends report op/backend/cached only.
        Thread-local for the same reason as :attr:`last_query_cached`.
        """
        return getattr(self._local, "cost", None)

    def _finish_cost(self, op: str, state: "_ConfigState", *, before,
                     cached: bool, target=None, cacheable: bool = True) -> dict:
        """Build + store the per-query cost record and bump the totals."""
        cost: dict = {
            "op": op,
            "backend": state.engine.backend_name,
            "cached": bool(cached),
        }
        if state.is_randomized:
            raw = state.engine.backend.raw
            after = raw.total_samples
            before = after if before is None else before
            drawn = max(after - before, 0)
            cost.update(
                kernel=raw.kernel_backend.name,
                sampling=raw.sampling,
                samples_before=before,
                samples_after=after,
                samples_drawn=drawn,
                pool_reused_fraction=(
                    round(before / after, 6) if after else 1.0
                ),
            )
            last_pass = self._observer.last_pass
            if drawn > 0 and last_pass is not None:
                cost["executor"] = last_pass["executor"]
                cost["chunks"] = last_pass["chunks"]
            else:
                cost["executor"] = "none"
                cost["chunks"] = 0
            if isinstance(target, PrecisionBudget):
                cost["target"] = target.spec
                leading = leading_interval(raw, self.confidence)
                if leading is not None:
                    cost["ci_width"] = round(leading[1], 9)
        else:
            drawn = before = 0
        self._local.cost = cost
        with self._cost_lock:
            totals = self._cost_totals
            totals["queries"] += 1
            totals["samples_drawn"] += drawn
            totals["samples_reused"] += before or 0
            if cacheable:
                if cached:
                    totals["cache_hits"] += 1
                else:
                    totals["cache_misses"] += 1
        return cost

    # ------------------------------------------------------------------
    # Identity & lifecycle
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash of the served dataset (cache key component)."""
        return self._fingerprint

    @property
    def skyband_index(self) -> KSkybandIndex:
        """The shared k-skyband index (built lazily, cached per ``k``)."""
        if self._skyband is None:
            self._skyband = KSkybandIndex(self.dataset.values)
        return self._skyband

    def invalidate(self) -> int:
        """Drop all engines, pools, indexes, and this dataset's cache rows.

        Returns the number of cache entries removed.
        """
        self._states.clear()
        self._skyband = None
        return self.cache.invalidate(self._fingerprint)

    def refresh(self) -> bool:
        """Re-fingerprint the dataset; invalidate everything on mutation.

        :class:`~repro.core.dataset.Dataset` is nominally immutable, but
        a service that hands out array views cannot rely on that alone.
        Returns ``True`` when a mutation was detected and state dropped.
        """
        current = dataset_fingerprint(self.dataset)
        if current == self._fingerprint:
            return False
        self.invalidate()
        self._fingerprint = current
        return True

    def replace_dataset(self, dataset: Dataset) -> None:
        """Swap in a new dataset, invalidating all state of the old one."""
        self.invalidate()
        self.dataset = dataset
        self._fingerprint = dataset_fingerprint(dataset)
        if self.region.dim != dataset.n_attributes:
            self.region = FullSpace(dataset.n_attributes)
            self._region_key = repr(self.region)

    def save(self, path) -> "SnapshotInfo":
        """Snapshot this session's durable state to ``path``.

        Serializes every randomized pool (byte-packed tally, mid-stream
        rng state, GET-NEXT return cursor, chunking knobs), every exact
        enumeration cursor, and the warm result-cache entries of this
        dataset into the versioned container of
        :mod:`repro.service.persist`.  The write is atomic (temp file +
        rename), so it is safe as a live checkpoint.
        """
        from repro.service.persist import save_session

        return save_session(self, path)

    @classmethod
    def restore(
        cls,
        path,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        cache: ResultCache | None = None,
        cache_size: int = 512,
        parallel: bool | str = "auto",
        executor: str | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        kernel: str | None = None,
    ) -> "StabilitySession":
        """Rebuild a session from a :meth:`save` snapshot of it.

        ``dataset`` must be byte-identical (same fingerprint) to the
        snapshotted one and ``region`` must match the snapshot's; a
        mismatch raises :class:`~repro.errors.SnapshotMismatchError`.
        The restored session answers every query byte-identically to
        the session that never restarted — including future ``observe``
        passes, which resume the saved rng streams mid-sequence.
        Runtime-only knobs (``parallel``, ``executor``, ``kernel``) are
        the caller's to choose afresh — a pool sampled under one kernel
        backend restores and continues identically under another.
        """
        from repro.service.persist import load_session

        return load_session(
            path,
            dataset,
            region=region,
            cache=cache,
            cache_size=cache_size,
            parallel=parallel,
            executor=executor,
            max_workers=max_workers,
            start_method=start_method,
            kernel=kernel,
        )

    def close(self) -> None:
        """Shut down the observe worker pools (idempotent).

        Thread workers join; process workers terminate and their
        shared-memory segments are unlinked — the server's drain and
        eviction paths route through here, so no segment outlives its
        session.
        """
        self._observer.close()

    def __enter__(self) -> "StabilitySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Engine management
    # ------------------------------------------------------------------
    def _resolve(self, kind: RankingKind, backend: str) -> str:
        if backend != "auto":
            return backend
        return resolve_backend(self.dataset, kind=kind, budget=self._budget_hint)

    def _rng_for(self, kind: str, k: int | None, backend: str) -> np.random.Generator:
        stream = zlib.crc32(f"{kind}:{k}:{backend}".encode())
        return np.random.default_rng([self._entropy, stream])

    def _state(
        self, kind: RankingKind, k: int | None, backend: str
    ) -> _ConfigState:
        resolved = self._resolve(kind, backend)
        key = (kind, k, resolved)
        state = self._states.get(key)
        if state is None:
            options = {}
            if resolved == "randomized":
                if kind != "full":
                    options["skyband"] = self.skyband_index
                if self.kernel is not None:
                    options["kernel_backend"] = self.kernel
                if self.sampling != "mc":
                    options["sampling"] = self.sampling
            engine = StabilityEngine(
                self.dataset,
                region=self.region,
                backend=resolved,
                kind=kind,
                k=k,
                rng=self._rng_for(kind, k, resolved),
                confidence=self.confidence,
                **options,
            )
            state = _ConfigState(engine=engine)
            self._states[key] = state
        return state

    def engine_for(
        self,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
    ) -> StabilityEngine:
        """The session's shared engine for one query configuration."""
        return self._state(kind, k, backend).engine

    def query_backend(
        self,
        op: str,
        kind: RankingKind,
        backend: str,
        ranking=None,
    ) -> str:
        """The backend one request dispatches to, before resolution.

        Normally the request's own ``backend``; the one special rule is
        the ranked-prefix fast path: a ``stability_of`` over a
        ``kind="full"`` ranking *shorter* than the dataset can only be
        answered by the randomized pool (prefix counting), so under
        ``backend="auto"`` it pins ``"randomized"``.  The batch
        planner and the server's read/write classifier share this rule
        — a prefix query must plan, lock, and execute against the same
        configuration.
        """
        if (
            op == "stability_of"
            and kind == "full"
            and backend == "auto"
            and ranking is not None
            and 0 < len(tuple(ranking)) < self.dataset.n_items
        ):
            return "randomized"
        return backend

    def query_is_warm_read(
        self,
        op: str,
        *,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
        ranking=None,
        m: int = 1,
        budget: "int | str | PrecisionBudget | None" = None,
        min_samples: int | None = None,
    ) -> bool:
        """Whether answering this query provably cannot mutate session
        state: an idempotent op over an already-materialised randomized
        configuration whose pool has reached the query's target.

        The concurrency contract a serving tier builds on: warm reads
        touch only the cumulative pool (non-consuming) and the
        thread-safe result cache, so any number may run concurrently;
        everything else — missing configurations, exact-backend
        enumeration, pool growth, ``get_next`` cursors — must
        serialize.  The classification is conservative by construction:
        a query this method rejects merely runs exclusively; accepting
        a mutator would be a data race, so anything unknown is not a
        warm read.
        """
        if op not in ("top_stable", "stability_of"):
            return False
        backend = self.query_backend(op, kind, backend, ranking)
        resolved = self._resolve(kind, backend)
        state = self._states.get((kind, k, resolved))
        if state is None or not state.is_randomized:
            return False
        target = self.pool_target(
            op, m=int(m), budget=budget, min_samples=min_samples
        )
        raw = state.engine.backend.raw
        if isinstance(target, PrecisionBudget):
            # A satisfied precision budget means the controller would
            # observe nothing — pure read; anything else must serialize.
            return precision_satisfied(raw, target, confidence=self.confidence)
        return raw.total_samples >= int(target)

    # ------------------------------------------------------------------
    # Pool management (randomized configurations)
    # ------------------------------------------------------------------
    def _ensure_pool(self, state: _ConfigState, target) -> int:
        """Grow one pool to ``target``; returns the samples drawn."""
        raw = state.engine.backend.raw
        before = raw.total_samples
        with obs_trace.span("session.ensure_pool", target=target):
            if isinstance(target, PrecisionBudget):
                ensure_precision(
                    raw,
                    target,
                    lambda n: self._observer.observe(raw, n),
                    confidence=self.confidence,
                )
            else:
                need = int(target) - before
                if need > 0:
                    self._observer.observe(raw, need)
        drawn = raw.total_samples - before
        if drawn > 0:
            last_pass = self._observer.last_pass or {}
            log_event(
                "pool.grow",
                target=str(target),
                drawn=drawn,
                samples=raw.total_samples,
                executor=last_pass.get("executor"),
            )
        return drawn

    @property
    def observer(self) -> ObserveExecutor:
        """The session's observe executor (serial / thread / process)."""
        return self._observer

    def pool_target(
        self,
        op: str,
        *,
        m: int = 1,
        budget: "int | str | PrecisionBudget | None" = None,
        min_samples: int | None = None,
    ):
        """The cumulative pool target one request wants (batch planning).

        ``get_next`` targets its budget, ``top_stable`` the paper's
        budget schedule (first-call budget plus one fifth per further
        result), ``stability_of`` its verification floor.  Returns a
        plain sample count, or a
        :class:`~repro.service.budget.PrecisionBudget` when the request
        (or the session default) names a ``"ci:..."`` precision target
        — precision budgets have no per-result schedule; the width *is*
        the target.
        """
        budget = parse_budget(budget)
        if op == "get_next":
            return budget if budget is not None else self.default_budget
        if op == "top_stable":
            if budget is not None:
                return budget
            first = self.default_budget
            if isinstance(first, PrecisionBudget):
                return first
            return first + (m - 1) * max(first // 5, 1)
        if op == "stability_of":
            if min_samples is not None:
                return min_samples
            return VERIFY_MIN_SAMPLES
        raise ValueError(f"unknown operation {op!r}")

    def observe(
        self,
        n_samples,
        *,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
    ) -> int:
        """Grow one configuration's cumulative pool to ``n_samples`` total.

        ``n_samples`` is a cumulative sample target or a precision spec
        (``"ci:0.02"``-style: grow until the leading ranking's CI
        half-width meets the target).  Returns the pool size afterwards.
        Exact configurations have no pool; calling this for one is an
        error.
        """
        state = self._state(kind, k, backend)
        if not state.is_randomized:
            raise ValueError(
                f"backend {state.engine.backend_name!r} is exact — it has no sample pool"
            )
        target = n_samples
        if isinstance(target, str):
            target = parse_budget(target)
        self._ensure_pool(state, target)
        return state.engine.backend.raw.total_samples

    # ------------------------------------------------------------------
    # Exact-backend enumeration prefix
    # ------------------------------------------------------------------
    def _ensure_yielded(self, state: _ConfigState, count: int) -> None:
        while len(state.yielded) < count and not state.exhausted:
            try:
                state.yielded.append(state.engine.get_next())
            except ExhaustedError:
                state.exhausted = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get_next(
        self,
        *,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
        budget: int | None = None,
    ) -> StabilityResult:
        """The next most stable not-yet-returned ranking (a cursor).

        For randomized configurations ``budget`` is the cumulative pool
        target; the pool is topped up (shard-parallel when it pays) and
        the best unreturned ranking of the pool is consumed.  Exact
        configurations stream their enumeration.  Raises
        :class:`~repro.errors.ExhaustedError` when the pool (or the
        enumeration) has nothing left — grow the pool to continue.
        """
        state = self._state(kind, k, backend)
        self.last_query_cached = False
        if state.is_randomized:
            target = self.pool_target("get_next", budget=budget)
            before = state.engine.backend.raw.total_samples
            self._ensure_pool(state, target)
            result = state.engine.backend.next_from_pool()
            self._finish_cost("get_next", state, before=before, cached=False,
                              target=target, cacheable=False)
            return result
        self._ensure_yielded(state, state.cursor + 1)
        if state.cursor >= len(state.yielded):
            raise ExhaustedError(
                "every feasible ranking of this configuration has been returned"
            )
        result = state.yielded[state.cursor]
        state.cursor += 1
        self._finish_cost("get_next", state, before=None, cached=False,
                          cacheable=False)
        return result

    def top_stable(
        self,
        m: int,
        *,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
        budget: int | None = None,
        min_stability: float = 0.0,
    ) -> list[StabilityResult]:
        """The ``m`` most stable rankings — idempotent and cached.

        Unlike :meth:`StabilityEngine.top_stable`, this does not consume
        GET-NEXT state: randomized configurations answer with the ``m``
        most frequent rankings of the cumulative pool, exact ones with
        their enumeration prefix.  Results stop at the first entry
        below ``min_stability``.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        state = self._state(kind, k, backend)
        resolved = state.engine.backend_name
        ensured = False
        before = (
            state.engine.backend.raw.total_samples
            if state.is_randomized
            else None
        )
        if state.is_randomized:
            target = self.pool_target("top_stable", m=m, budget=budget)
            if isinstance(target, PrecisionBudget):
                # A precision target's pool size is only known after the
                # controller runs, so ensure first and key the cache on
                # the actual pool — idempotent: a satisfied budget grows
                # nothing, so the repeat keys identically and hits.
                self._ensure_pool(state, target)
                ensured = True
                samples = state.engine.backend.raw.total_samples
            else:
                # The key carries the pool size the answer is computed
                # from (ensure-to-target never shrinks a pool), so a
                # session whose pool outgrew the target neither serves
                # nor poisons entries of sessions answering from
                # target-sized pools.
                samples = max(
                    state.engine.backend.raw.total_samples, target
                )
        else:
            target = samples = None
        key = make_key(
            self._fingerprint,
            "top_stable",
            region=self._region_key,
            kind=kind,
            k=k,
            backend=resolved,
            m=m,
            samples=samples,
        )
        with obs_trace.span("cache.lookup", op="top_stable"):
            cached = self.cache.get(key)
        if cached is not MISS:
            self.last_query_cached = True
            self._finish_cost("top_stable", state, before=before, cached=True,
                              target=target if state.is_randomized else None)
            return self._cut(list(cached), min_stability)
        self.last_query_cached = False
        if state.is_randomized:
            if not ensured:
                self._ensure_pool(state, target)
            with obs_trace.span("pool.top", m=m):
                results = state.engine.backend.top_from_pool(m)
        else:
            self._ensure_yielded(state, m)
            results = state.yielded[:m]
        self.cache.put(key, tuple(results))
        self._finish_cost("top_stable", state, before=before, cached=False,
                          target=target if state.is_randomized else None)
        return self._cut(list(results), min_stability)

    def stability_of(
        self,
        ranking,
        *,
        kind: RankingKind = "full",
        k: int | None = None,
        backend: str = "auto",
        min_samples: int | None = None,
    ) -> StabilityResult:
        """Stability of one explicit (partial) ranking — cached.

        Randomized configurations answer from the cumulative pool after
        topping it up to ``min_samples`` (default 5,000); exact ones
        verify directly (sweep interval / arrangement oracle).

        A ``kind="full"`` ranking shorter than the dataset is a *ranked
        prefix* query: under ``backend="auto"`` it dispatches to the
        randomized backend, whose cumulative full-ranking pool answers
        it by prefix counting (see
        :meth:`repro.core.randomized.GetNextRandomized.stability_of`)
        — no dedicated top-k pool is sampled.
        """
        ids = tuple(int(i) for i in ranking)
        if kind == "topk_set":
            ids = tuple(sorted(ids))
        backend = self.query_backend("stability_of", kind, backend, ids)
        state = self._state(kind, k, backend)
        resolved = state.engine.backend_name
        before = (
            state.engine.backend.raw.total_samples
            if state.is_randomized
            else None
        )
        if state.is_randomized:
            target = self.pool_target("stability_of", min_samples=min_samples)
            samples = max(
                state.engine.backend.raw.total_samples, target
            )
        else:
            target = samples = None
        key = make_key(
            self._fingerprint,
            "stability_of",
            region=self._region_key,
            kind=kind,
            k=k,
            backend=resolved,
            ids=ids,
            samples=samples,
        )
        with obs_trace.span("cache.lookup", op="stability_of"):
            cached = self.cache.get(key)
        if cached is not MISS:
            self.last_query_cached = True
            self._finish_cost("stability_of", state, before=before,
                              cached=True, target=target)
            return cached
        self.last_query_cached = False
        if state.is_randomized:
            self._ensure_pool(state, target)
            with obs_trace.span("pool.verify"):
                result = state.engine.stability_of(ids, min_samples=target)
        else:
            with obs_trace.span("pool.verify"):
                result = state.engine.stability_of(list(ids))
        self.cache.put(key, result)
        self._finish_cost("stability_of", state, before=before, cached=False,
                          target=target)
        return result

    def run_batch(self, requests) -> list:
        """Execute a batch of requests with one amortized sampling pass.

        Delegates to :func:`repro.service.batch.execute_batch`; see
        :class:`repro.service.batch.StabilityRequest` for the request
        form.
        """
        from repro.service.batch import execute_batch

        return execute_batch(self, requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _cut(results: list[StabilityResult], min_stability: float):
        out: list[StabilityResult] = []
        for result in results:
            if result.stability < min_stability:
                break
            out.append(result)
        return out

    def pool_bytes(self) -> int:
        """Approximate bytes held by the randomized sample pools."""
        total = 0
        for state in self._states.values():
            if state.is_randomized:
                total += state.engine.backend.raw.tally.nbytes
        return total

    def stats(self) -> dict:
        """Serving statistics: cache counters, per-config pool state,
        cost-attribution totals, executor/kernel identity, and uptime."""
        pools = {}
        for (kind, k, backend), state in self._states.items():
            label = f"{kind}" + (f":k={k}" if k is not None else "") + f"@{backend}"
            if state.is_randomized:
                raw = state.engine.backend.raw
                pools[label] = {
                    "total_samples": raw.total_samples,
                    "distinct_rankings": len(raw.tally),
                    "returned": len(raw.returned),
                    "kernel": raw.kernel_backend.name,
                    "sampling": raw.sampling,
                    "pool_bytes": raw.tally.nbytes,
                }
            else:
                pools[label] = {
                    "yielded": len(state.yielded),
                    "cursor": state.cursor,
                    "exhausted": state.exhausted,
                }
        with self._cost_lock:
            cost = dict(self._cost_totals)
        lookups = cost["cache_hits"] + cost["cache_misses"]
        return {
            "fingerprint": self._fingerprint,
            "uptime_seconds": round(time.time() - self._created_at, 3),
            "cache": self.cache.stats.snapshot(),
            # Session-scoped hit ratio: the shared cache's counters mix
            # every session on the process; these count only this
            # session's cacheable queries.
            "cache_session": {
                "hits": cost["cache_hits"],
                "misses": cost["cache_misses"],
                "hit_rate": (cost["cache_hits"] / lookups) if lookups else 0.0,
            },
            "cost": cost,
            "executor": self._observer.mode,
            "executor_workers": self._observer.workers,
            "kernel": self.kernel if self.kernel is not None else "auto",
            "sampling": self.sampling,
            "pool_bytes": self.pool_bytes(),
            "cache_bytes": self.cache.approx_bytes(),
            "configs": pools,
            "skyband_bands": (
                self._skyband.built_bands if self._skyband is not None else ()
            ),
        }

    def explain(self, payload: dict) -> dict:
        """Predict how one wire-form query would execute — a pure read.

        Never materialises engines or pools: configurations the session
        has not yet built report ``materialized: false`` with the
        backend the request *would* resolve to.  Powers the ``explain``
        protocol op, so it must stay safe under the server's read lock.
        """
        from repro.service.batch import StabilityRequest

        request = StabilityRequest.from_dict(payload)
        backend = self.query_backend(
            request.op, request.kind, request.backend, request.ranking
        )
        resolved = self._resolve(request.kind, backend)
        state = self._states.get((request.kind, request.k, resolved))
        if state is not None:
            randomized = state.is_randomized
        else:
            randomized = resolved == "randomized"
        plan: dict = {
            "op": request.op,
            "kind": request.kind,
            "k": request.k,
            "backend": resolved,
            "randomized": randomized,
            "materialized": state is not None,
            "executor": self._observer.mode,
            "workers": self._observer.workers,
            "sampling": self.sampling,
            "warm_read": self.query_is_warm_read(
                request.op,
                kind=request.kind,
                k=request.k,
                backend=request.backend,
                ranking=request.ranking,
                m=request.m,
                budget=request.budget,
                min_samples=request.min_samples,
            ),
        }
        if not randomized:
            return plan
        if state is not None:
            raw = state.engine.backend.raw
            pool = raw.total_samples
            plan["kernel"] = raw.kernel_backend.name
        else:
            raw = None
            pool = 0
            plan["kernel"] = self.kernel if self.kernel is not None else "auto"
        plan["pool_samples"] = pool
        target = self.pool_target(
            request.op,
            m=request.m,
            budget=request.budget,
            min_samples=request.min_samples,
        )
        if isinstance(target, PrecisionBudget):
            plan["target"] = target.spec
            satisfied = raw is not None and precision_satisfied(
                raw, target, confidence=self.confidence
            )
            plan["precision_satisfied"] = satisfied
            # An unsatisfied precision budget's sample need is adaptive;
            # the controller discovers it, so explain does not guess.
            plan["samples_needed"] = 0 if satisfied else None
        else:
            plan["target"] = int(target)
            plan["samples_needed"] = max(int(target) - pool, 0)
        return plan

    def __repr__(self) -> str:
        return (
            f"StabilitySession(n={self.dataset.n_items}, "
            f"d={self.dataset.n_attributes}, "
            f"fingerprint={self._fingerprint[:8]}..., "
            f"configs={len(self._states)})"
        )
