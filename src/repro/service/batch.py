"""Batch planning: one amortized sampling pass for heterogeneous requests.

A production serving tier rarely receives one query at a time — it
receives a mixed burst: a few ``top_stable`` calls, some verifications,
a ``get_next`` drain.  Executed naively, every request over a
randomized configuration pays its own sampling pass.  The planner
exploits the session's pool semantics (cumulative targets, monotone
growth):

1. **group** requests by query configuration ``(kind, k, backend)``;
2. **prefill** each randomized group's pool once, to the *maximum*
   target any of its requests wants — one observe pass through the
   session's :class:`~repro.service.parallel.ObserveExecutor` (thread-
   or process-sharded when it pays) instead of one per request;
3. **answer** every request in submission order through the ordinary
   session methods, which now find their pool already warm (and the
   result cache on the fast path for repeats).

Because session answers depend only on the pool state at answer time
and pool growth is monotone, a batch whose requests share one target
produces exactly the results sequential execution would; heterogeneous
targets can only give earlier requests *more* samples than sequential
execution (never fewer), i.e. tighter confidence errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

from repro.core.stability import StabilityResult
from repro.service.budget import PrecisionBudget, parse_budget

__all__ = ["StabilityRequest", "BatchOutcome", "BatchPlanner", "execute_batch"]

_OPS = ("get_next", "top_stable", "stability_of")


@dataclass(frozen=True)
class StabilityRequest:
    """One declarative stability query for batch execution.

    Attributes
    ----------
    op:
        ``"get_next"``, ``"top_stable"``, or ``"stability_of"``.
    kind, k, backend:
        The query configuration, as in the session methods.
    budget:
        Cumulative pool target (randomized configurations): a sample
        count, or a ``"ci:WIDTH[@MAX]"`` precision spec (parsed at
        construction, so a garbled spec fails the one request, not the
        batch).
    m:
        Result count for ``top_stable``.
    ranking:
        Item identifiers for ``stability_of`` (any iterable; stored
        canonically as a tuple).
    min_stability:
        Cutoff for ``top_stable``.
    min_samples:
        Verification pool floor for ``stability_of``.
    deadline_ms:
        Optional relative deadline, anchored at request *construction*
        (wire requests carry their deadline at the protocol layer
        instead, anchored at receipt).  An expired request fails alone
        with :class:`~repro.server.resilience.DeadlineExceededError`;
        the rest of the batch answers normally.
    """

    op: Literal["get_next", "top_stable", "stability_of"]
    kind: str = "full"
    k: int | None = None
    backend: str = "auto"
    budget: int | str | PrecisionBudget | None = None
    m: int = 1
    ranking: tuple[int, ...] | None = None
    min_stability: float = 0.0
    min_samples: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        object.__setattr__(self, "budget", parse_budget(self.budget))
        if self.op == "top_stable" and self.m < 1:
            raise ValueError(f"top_stable needs m >= 1, got {self.m}")
        if self.op == "stability_of":
            if self.ranking is None:
                raise ValueError("stability_of requires ranking=")
            object.__setattr__(
                self, "ranking", tuple(int(i) for i in self.ranking)
            )
        if self.deadline_ms is None:
            object.__setattr__(self, "_deadline", None)
        else:
            dms = self.deadline_ms
            if (
                isinstance(dms, bool)
                or not isinstance(dms, (int, float))
                or not math.isfinite(dms)
                or dms <= 0
            ):
                raise ValueError(
                    "deadline_ms must be a positive finite number of "
                    f"milliseconds, got {dms!r}"
                )
            from repro.server.resilience import Deadline

            object.__setattr__(self, "deadline_ms", float(dms))
            object.__setattr__(self, "_deadline", Deadline(float(dms)))

    @property
    def deadline(self):
        """The anchored :class:`Deadline`, or ``None``."""
        return self._deadline

    @classmethod
    def from_dict(cls, payload: dict) -> "StabilityRequest":
        """Build a request from a JSON-style mapping (unknown keys rejected)."""
        allowed = set(cls.__dataclass_fields__)
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class BatchOutcome:
    """The result (or failure) of one batched request.

    ``request`` is the parsed :class:`StabilityRequest`, or the raw
    payload when parsing itself failed (``error`` set).
    """

    request: StabilityRequest | dict
    value: StabilityResult | list[StabilityResult] | None = None
    error: Exception | None = None
    cached: bool = False
    #: The session's cost-attribution record for this answer (see
    #: :attr:`StabilitySession.last_query_cost`); ``None`` on failure.
    cost: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchPlanner:
    """Plans and executes request batches against one session."""

    session: object
    prefill_targets: dict = field(default_factory=dict, init=False)
    precision_targets: dict = field(default_factory=dict, init=False)
    #: ``{config key: Deadline | None}`` — the most generous deadline
    #: among the requests that contributed a key's target (``None`` as
    #: soon as any contributor is deadline-free: the prefill then runs
    #: unbounded, scoped only by any ambient request deadline).
    prefill_deadlines: dict = field(default_factory=dict, init=False)

    def plan(self, requests) -> dict:
        """Per-configuration pool targets: the amortization schedule.

        Returns ``{(kind, k, resolved_backend): max cumulative target}``
        over the batch's randomized-configuration requests with plain
        sample-count targets.  Precision (``"ci:..."``) targets follow
        a different order — tightest width wins — so they accumulate
        separately in :attr:`precision_targets`; ``execute`` prefills
        both.
        """
        session = self.session
        targets: dict[tuple, int] = {}
        precision: dict[tuple, PrecisionBudget] = {}
        deadlines: dict[tuple, object] = {}
        for request in requests:
            if request.deadline is not None and request.deadline.expired():
                # Already dead on arrival: it must not inflate any
                # pool target (the answer loop fails it alone).
                continue
            try:
                state = session._state(
                    request.kind,
                    request.k,
                    session.query_backend(
                        request.op, request.kind, request.backend,
                        request.ranking,
                    ),
                )
            except Exception:
                # Invalid configuration (bad k, kind/backend mismatch...):
                # skip it here — execute() retries the request inside its
                # per-request isolation and reports the real error.
                continue
            if not state.is_randomized:
                continue
            key = (request.kind, request.k, state.engine.backend_name)
            if key not in deadlines:
                deadlines[key] = request.deadline
            else:
                held = deadlines[key]
                if held is not None and (
                    request.deadline is None
                    or request.deadline.expires_at > held.expires_at
                ):
                    deadlines[key] = request.deadline
            target = session.pool_target(
                request.op,
                m=request.m,
                budget=request.budget,
                min_samples=request.min_samples,
            )
            if isinstance(target, PrecisionBudget):
                held = precision.get(key)
                if (
                    held is None
                    or target.width < held.width
                    or (
                        target.width == held.width
                        and target.max_samples > held.max_samples
                    )
                ):
                    precision[key] = target
            else:
                targets[key] = max(targets.get(key, 0), target)
        self.prefill_targets = targets
        self.precision_targets = precision
        self.prefill_deadlines = deadlines
        return targets

    def execute(self, requests) -> list[BatchOutcome]:
        """Prefill pools, then answer every request in submission order."""
        requests = list(requests)
        session = self.session
        self.plan(requests)
        # Samples drawn by the amortized prefill are attributed to the
        # first request of each configuration (the one that would have
        # triggered the growth sequentially), keyed for the cost fixup
        # in the answer loop below.
        prefill_drawn: dict[tuple, dict] = {}

        def note(key, drawn: int) -> None:
            if drawn <= 0:
                return
            last = getattr(session._observer, "last_pass", None) or {}
            entry = prefill_drawn.setdefault(
                key, {"drawn": 0, "executor": None, "chunks": 0}
            )
            entry["drawn"] += drawn
            entry["executor"] = last.get("executor")
            entry["chunks"] = last.get("chunks", 0)

        # Deadline plumbing is lazy-imported: the resilience layer
        # lives above the service tier, and importing it at module
        # level would re-enter the server -> session import cycle.
        from repro.server.resilience import (
            DeadlineExceededError,
            deadline_scope,
        )

        for (kind, k, backend), target in self.prefill_targets.items():
            try:
                with deadline_scope(
                    self.prefill_deadlines.get((kind, k, backend))
                ):
                    drawn = session._ensure_pool(
                        session._state(kind, k, backend), target
                    )
            except DeadlineExceededError:
                # Cooperative cancellation mid-prefill: the completed
                # chunk groups stayed pooled, and the requests that
                # wanted this target re-raise under their own
                # per-request isolation below.
                continue
            note((kind, k, backend), drawn)
        for (kind, k, backend), budget in self.precision_targets.items():
            try:
                with deadline_scope(
                    self.prefill_deadlines.get((kind, k, backend))
                ):
                    drawn = session._ensure_pool(
                        session._state(kind, k, backend), budget
                    )
            except Exception:
                # A cap (or deadline) hit during prefill is not a batch
                # failure: the requests that named this budget re-raise
                # it under their own per-request isolation below.
                pass
            else:
                note((kind, k, backend), drawn)
        outcomes: list[BatchOutcome] = []
        for request in requests:
            try:
                if request.deadline is not None:
                    request.deadline.check("before executing the request")
                with deadline_scope(request.deadline):
                    if request.op == "get_next":
                        value = session.get_next(
                            kind=request.kind,
                            k=request.k,
                            backend=request.backend,
                            budget=request.budget,
                        )
                    elif request.op == "top_stable":
                        value = session.top_stable(
                            request.m,
                            kind=request.kind,
                            k=request.k,
                            backend=request.backend,
                            budget=request.budget,
                            min_stability=request.min_stability,
                        )
                    else:
                        value = session.stability_of(
                            request.ranking,
                            kind=request.kind,
                            k=request.k,
                            backend=request.backend,
                            min_samples=request.min_samples,
                        )
            except Exception as exc:  # per-request isolation
                outcomes.append(BatchOutcome(request=request, error=exc))
                continue
            cost = session.last_query_cost
            if cost is not None and cost.get("backend") is not None:
                # Fold this configuration's prefill draw back into the
                # first answer that wanted it — the session method saw a
                # pool the planner had already grown.
                info = prefill_drawn.pop(
                    (request.kind, request.k, cost["backend"]), None
                )
                if info is not None and "samples_drawn" in cost:
                    drawn = info["drawn"]
                    reclassified = min(drawn, cost["samples_before"])
                    cost["samples_drawn"] += drawn
                    cost["samples_before"] = max(
                        cost["samples_before"] - drawn, 0
                    )
                    after = cost.get("samples_after", 0)
                    cost["pool_reused_fraction"] = (
                        round(cost["samples_before"] / after, 6)
                        if after
                        else 1.0
                    )
                    if cost.get("executor") in (None, "none"):
                        cost["executor"] = info["executor"]
                        cost["chunks"] = info["chunks"]
                    # The session totals were bumped with the pre-fixup
                    # numbers inside _finish_cost; re-balance them.
                    with session._cost_lock:
                        session._cost_totals["samples_drawn"] += drawn
                        session._cost_totals["samples_reused"] -= reclassified
            outcomes.append(
                BatchOutcome(
                    request=request,
                    value=value,
                    cached=session.last_query_cached,
                    cost=cost,
                )
            )
        return outcomes


def execute_batch(session, requests) -> list[BatchOutcome]:
    """Execute ``requests`` against ``session`` with amortized sampling.

    Convenience over :class:`BatchPlanner`; accepts
    :class:`StabilityRequest` instances or JSON-style dicts.  A request
    that fails to parse is reported as a failed :class:`BatchOutcome`
    in place (service behaviour: one bad request never sinks a batch).
    """
    slots: list[BatchOutcome | StabilityRequest] = []
    valid: list[StabilityRequest] = []
    for raw in requests:
        try:
            request = (
                raw
                if isinstance(raw, StabilityRequest)
                else StabilityRequest.from_dict(raw)
            )
        except Exception as exc:
            slots.append(BatchOutcome(request=raw, error=exc))
            continue
        slots.append(request)
        valid.append(request)
    executed = iter(BatchPlanner(session).execute(valid))
    return [
        slot if isinstance(slot, BatchOutcome) else next(executed)
        for slot in slots
    ]
