"""Keyed LRU result cache for the stability service layer.

Stability queries are expensive (a kinetic sweep, an arrangement
traversal, or thousands of Monte-Carlo samples) but their results are
small immutable records — ideal memoization targets.  The cache key is
the full identity of a query::

    (dataset fingerprint, region, query kind, params..., budget)

so two sessions over byte-identical data share hits, while any change
to the data, the region of interest, the query parameters, or the
sampling budget is a guaranteed miss.  Hit/miss/eviction statistics are
tracked for capacity planning, and :meth:`ResultCache.invalidate`
drops every entry of one dataset when it mutates.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MISS",
    "CacheStats",
    "ResultCache",
    "dataset_fingerprint",
    "make_key",
]

#: Sentinel distinguishing "no cached entry" from a cached ``None``.
MISS = object()


def dataset_fingerprint(dataset) -> str:
    """Content hash identifying a dataset's attribute matrix.

    Hashes the shape and the canonicalised float64 bytes of
    ``dataset.values`` (labels and attribute names are display-only —
    they cannot affect any stability result).  Accepts a
    :class:`~repro.core.dataset.Dataset` or a plain ``(n, d)`` array.

    The hash is *value*-based, not bit-pattern-based: ``-0.0`` is
    normalised to ``+0.0`` and every NaN payload to the single canonical
    quiet NaN, so two matrices that compare element-wise equal (with
    NaNs in the same cells) always fingerprint identically.  Without
    this, :meth:`StabilitySession.refresh` on a dataset whose buffer
    was mutated to a non-canonical NaN (e.g. the payload-carrying NaNs
    arithmetic can produce) would report a mutation on a value-equal
    matrix — or worse, depend on which NaN bits the producer happened
    to write.
    """
    values = np.ascontiguousarray(
        getattr(dataset, "values", dataset), dtype=np.float64
    )
    # Adding 0.0 copies into a writable buffer and maps -0.0 -> +0.0;
    # the explicit mask then rewrites every NaN (whatever its payload
    # or sign bit) with the one canonical quiet NaN.
    canonical = values + 0.0
    nan_mask = np.isnan(canonical)
    if nan_mask.any():
        canonical[nan_mask] = np.float64("nan")
    digest = hashlib.sha256()
    digest.update(repr(canonical.shape).encode())
    digest.update(canonical.tobytes())
    return digest.hexdigest()[:32]


def _freeze(value):
    """Normalise one key component into a hashable canonical form."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, frozenset):
        return ("frozenset", tuple(sorted(value)))
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.tobytes())
    if isinstance(value, np.generic):
        return value.item()
    # Regions, rankings, and other rich objects key by their repr, which
    # the library keeps canonical (rays, angles, constraint matrices).
    return repr(value)


def make_key(fingerprint: str, op: str, **params) -> tuple:
    """Build a canonical cache key for one query.

    ``params`` order is irrelevant (sorted), values are normalised via
    :func:`_freeze` so that e.g. a list and a tuple of the same item
    ids produce the same key.
    """
    return (
        fingerprint,
        op,
        tuple((name, _freeze(value)) for name, value in sorted(params.items())),
    )


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` (monotonic, never reset
    except by :meth:`ResultCache.clear`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """A thread-safe LRU cache of stability results.

    Parameters
    ----------
    maxsize:
        Entry capacity; the least-recently-used entry is evicted when
        full.  ``maxsize <= 0`` disables storage (every lookup misses)
        while keeping the interface.
    """

    def __init__(self, maxsize: int = 512):
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: tuple):
        """The cached value for ``key``, or :data:`MISS`."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return MISS

    def put(self, key: tuple, value) -> None:
        """Insert (or refresh) one entry, evicting LRU entries if full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def approx_bytes(self) -> int:
        """Rough resident-byte estimate of the stored entries.

        Shallow ``sys.getsizeof`` per key and value plus a fixed
        per-slot overhead — cached stability records are small flat
        tuples, so a shallow walk is the right cost/accuracy trade for
        a telemetry gauge (this is *not* an accounting number).
        """
        import sys

        with self._lock:
            total = 0
            for key, value in self._entries.items():
                total += sys.getsizeof(key) + sys.getsizeof(value) + 144
            return total

    def entries_for(self, fingerprint: str) -> list[tuple[tuple, object]]:
        """Every ``(key, value)`` entry of one dataset, LRU-oldest first.

        The snapshot subsystem persists a session's warm entries with
        this; re-inserting them in the returned order reproduces the
        cache's eviction order.
        """
        with self._lock:
            return [
                (key, value)
                for key, value in self._entries.items()
                if key[0] == fingerprint
            ]

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry keyed to one dataset fingerprint.

        Called when a dataset mutates (or a session is torn down);
        returns the number of entries removed.
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Empty the cache and reset statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
