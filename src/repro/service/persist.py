"""Versioned snapshot/restore for :class:`StabilitySession` pools.

The randomized stability estimator only pays off at scale when its
Monte-Carlo state is reused across queries — but every warm pool a
session accumulates used to die with the process.  This module makes a
session durable: :func:`save_session` serializes the byte-packed
tallies, the per-``(kind, k, backend)`` pool metadata (mid-stream rng
state, return cursors, chunking knobs), the dataset fingerprint, and
the warm :class:`~repro.service.cache.ResultCache` entries into one
self-describing file, and :func:`load_session` rebuilds a session that
answers ``top_stable``/``stability_of``/``get_next`` byte-identically
to the session that never restarted.

Snapshot container (format version 1)
-------------------------------------
::

    offset  size  field
    0       8     magic  b"REPROSNP"
    8       2     format version            (uint16, little-endian)
    10      4     header length H           (uint32, little-endian)
    14      H     header JSON               (UTF-8)
    14+H    4     CRC-32 of the header JSON (uint32, little-endian)
    then          section payloads, back to back

The header carries the identity (dataset fingerprint, region repr,
session entropy, confidence), one record per query configuration, and a
section table ``{name, offset, length, raw_length, crc32}`` with
offsets relative to the first payload byte.  Sections are
zlib-compressed; their CRC-32 is taken over the *compressed* bytes so
corruption is detected before any byte is interpreted.  Binary tally
payloads hold each pool's packed keys in first-seen order followed by a
little-endian ``uint64`` count array; the result-cache section is typed
JSON (no pickle anywhere, so a snapshot can never execute code).

Every failure mode raises a typed
:class:`~repro.errors.SnapshotError` subclass — truncation and garbled
structure (:class:`~repro.errors.SnapshotFormatError`), checksum
mismatches (:class:`~repro.errors.SnapshotIntegrityError`), a
too-new writer (:class:`~repro.errors.SnapshotVersionError`), and a
fingerprint/region that does not match the dataset being served
(:class:`~repro.errors.SnapshotMismatchError`).  A snapshot that cannot
be trusted never restores silently wrong state.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.ranking import Ranking
from repro.core.stability import AngularRegion, StabilityResult
from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotMismatchError,
    SnapshotVersionError,
)
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.obs import log_event
from repro.obs import tracing as obs_trace
from repro.service.budget import PrecisionBudget
from repro.service.cache import dataset_fingerprint

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotInfo",
    "save_session",
    "load_session",
    "read_snapshot_header",
]

SNAPSHOT_MAGIC = b"REPROSNP"
SNAPSHOT_VERSION = 1

_PREFIX = struct.Struct("<8sHI")  # magic, format version, header length
_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class SnapshotInfo:
    """What one :func:`save_session` call wrote."""

    path: str
    format_version: int
    fingerprint: str
    n_configs: int
    cache_entries: int
    cache_skipped: int
    file_bytes: int


# ----------------------------------------------------------------------
# Typed JSON codec for cached results (no pickle: snapshots are data)
# ----------------------------------------------------------------------
_TAG = "__snap__"


def _encode(value):
    """One cache key/value component as tagged, JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {_TAG: "bytes", "hex": value.hex()}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [_encode(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "list", "items": [_encode(v) for v in value]}
    if isinstance(value, frozenset):
        return {_TAG: "frozenset", "items": sorted(int(v) for v in value)}
    if isinstance(value, np.generic):
        return _encode(value.item())
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value, dtype=np.float64)
        return {_TAG: "ndarray", "shape": list(arr.shape), "hex": arr.tobytes().hex()}
    if isinstance(value, Ranking):
        return {
            _TAG: "Ranking",
            "order": [int(i) for i in value.order],
            "n_items": value.n_items,
        }
    if isinstance(value, AngularRegion):
        return {_TAG: "AngularRegion", "lo": value.lo, "hi": value.hi}
    if isinstance(value, Halfspace):
        return {
            _TAG: "Halfspace",
            "normal": [float(c) for c in value.normal],
            "sign": value.sign,
        }
    if isinstance(value, ConvexCone):
        return {
            _TAG: "ConvexCone",
            "dim": value.dim,
            "halfspaces": [_encode(h) for h in value.halfspaces],
        }
    if isinstance(value, StabilityResult):
        return {
            _TAG: "StabilityResult",
            "ranking": _encode(value.ranking),
            "stability": value.stability,
            "region": _encode(value.region),
            "confidence_error": value.confidence_error,
            "sample_count": value.sample_count,
            "top_k_set": _encode(value.top_k_set),
        }
    raise ValueError(f"cannot snapshot value of type {type(value).__name__}")


def _decode(value):
    """Invert :func:`_encode`; unknown tags are a format error."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if not isinstance(value, dict) or _TAG not in value:
        raise SnapshotFormatError(f"undecodable snapshot value: {value!r}")
    tag = value[_TAG]
    if tag == "bytes":
        return bytes.fromhex(value["hex"])
    if tag == "tuple":
        return tuple(_decode(v) for v in value["items"])
    if tag == "list":
        return [_decode(v) for v in value["items"]]
    if tag == "frozenset":
        return frozenset(value["items"])
    if tag == "ndarray":
        return np.frombuffer(
            bytes.fromhex(value["hex"]), dtype=np.float64
        ).reshape(value["shape"])
    if tag == "Ranking":
        return Ranking(value["order"], n_items=value["n_items"])
    if tag == "AngularRegion":
        return AngularRegion(lo=value["lo"], hi=value["hi"])
    if tag == "Halfspace":
        return Halfspace(tuple(value["normal"]), value["sign"])
    if tag == "ConvexCone":
        return ConvexCone(
            [_decode(h) for h in value["halfspaces"]], dim=value["dim"]
        )
    if tag == "StabilityResult":
        return StabilityResult(
            ranking=_decode(value["ranking"]),
            stability=value["stability"],
            region=_decode(value["region"]),
            confidence_error=value["confidence_error"],
            sample_count=value["sample_count"],
            top_k_set=_decode(value["top_k_set"]),
        )
    raise SnapshotFormatError(f"unknown snapshot value tag {tag!r}")


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def save_session(session, path: str | Path) -> SnapshotInfo:
    """Serialize ``session`` into one snapshot file at ``path``.

    Captures every randomized pool (tally + rng + return cursor), every
    exact enumeration cursor, and the session's warm result-cache
    entries.  The file is written to a temporary sibling and atomically
    renamed, so a crash mid-checkpoint never leaves a torn snapshot and
    a concurrent reader only ever sees the previous complete one.
    """
    with obs_trace.span("snapshot.save", path=str(path)) as sp:
        info = _save_session_body(session, path)
        sp.set(bytes=info.file_bytes, configs=info.n_configs)
    log_event(
        "checkpoint.save",
        path=info.path,
        bytes=info.file_bytes,
        configs=info.n_configs,
        cache_entries=info.cache_entries,
    )
    return info


def _save_session_body(session, path: str | Path) -> SnapshotInfo:
    from repro import __version__

    path = Path(path)
    sections: list[tuple[str, bytes, int, int]] = []  # name, comp, raw_len, crc

    def add_section(name: str, raw: bytes) -> None:
        comp = zlib.compress(raw, 6)
        sections.append((name, comp, len(raw), zlib.crc32(comp)))

    configs = []
    for (kind, k, backend), state in session._states.items():
        record: dict = {"kind": kind, "k": k, "backend": backend}
        if state.is_randomized:
            op_state = state.engine.backend.export_state()
            tally = op_state.pop("tally")
            name = f"tally/{len(configs)}"
            add_section(
                name, tally.pop("keys") + tally.pop("counts").tobytes()
            )
            record.update(
                state=op_state,
                tally=tally,  # key_length, dtype, n_keys, total
                section=name,
            )
        else:
            record.update(
                yielded=len(state.yielded),
                cursor=state.cursor,
                exhausted=state.exhausted,
            )
        configs.append(record)

    entries = []
    skipped = 0
    for key, value in session.cache.entries_for(session.fingerprint):
        try:
            entries.append([_encode(key), _encode(value)])
        except ValueError:
            skipped += 1  # an exotic cached value costs warmth, not safety
    add_section("cache", json.dumps({"entries": entries}).encode())

    offset = 0
    table = []
    for name, comp, raw_len, crc in sections:
        table.append(
            {
                "name": name,
                "offset": offset,
                "length": len(comp),
                "raw_length": raw_len,
                "crc32": crc,
            }
        )
        offset += len(comp)

    header = {
        "format_version": SNAPSHOT_VERSION,
        "library_version": __version__,
        "fingerprint": session.fingerprint,
        "n_items": session.dataset.n_items,
        "n_attributes": session.dataset.n_attributes,
        "entropy": session._entropy,
        "confidence": session.confidence,
        "region": session._region_key,
        # Precision budgets serialize as their spec string — the header
        # is JSON, and the spec round-trips through parse_budget on load.
        "budget_hint": (
            session._budget_hint.spec
            if isinstance(session._budget_hint, PrecisionBudget)
            else session._budget_hint
        ),
        "sampling": session.sampling,
        "configs": configs,
        "cache_entries": len(entries),
        "cache_skipped": skipped,
        "sections": table,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()

    # A unique temp name (not a fixed ".tmp" sibling) keeps concurrent
    # checkpoints of the same snapshot path from interleaving writes and
    # renaming a torn file over the last good snapshot.
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        with os.fdopen(fd, "wb") as handle:
            handle.write(
                _PREFIX.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(header_bytes))
            )
            handle.write(header_bytes)
            handle.write(_CRC.pack(zlib.crc32(header_bytes)))
            for _, comp, _, _ in sections:
                handle.write(comp)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
    except BaseException:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise
    return SnapshotInfo(
        path=str(path),
        format_version=SNAPSHOT_VERSION,
        fingerprint=session.fingerprint,
        n_configs=len(configs),
        cache_entries=len(entries),
        cache_skipped=skipped,
        file_bytes=path.stat().st_size,
    )


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _read_container(
    path: str | Path, *, with_sections: bool = True
) -> tuple[dict, dict[str, bytes]]:
    """Parse and verify a snapshot file: header dict + raw section bytes.

    ``with_sections=False`` stops after the header (magic, version, and
    header CRC still verified) and reads only the prefix + header bytes
    from disk — inspection tooling stays O(header) in I/O and memory,
    never touching the (potentially huge) tally payloads it would
    discard.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX.size)
            if with_sections:
                data = prefix + handle.read()
            elif len(prefix) == _PREFIX.size:
                _, _, header_len = _PREFIX.unpack(prefix)
                data = prefix + handle.read(header_len + _CRC.size)
            else:
                data = prefix
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {exc}") from exc
    if len(data) < _PREFIX.size:
        raise SnapshotFormatError(
            f"{path} is {len(data)} bytes — too short to be a snapshot"
        )
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(
            f"{path} is not a repro snapshot (magic {magic!r})"
        )
    if version > SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version} is newer than this reader "
            f"(understands <= {SNAPSHOT_VERSION}); upgrade the library"
        )
    if version < 1:
        raise SnapshotVersionError(f"invalid snapshot format version {version}")
    header_end = _PREFIX.size + header_len
    if len(data) < header_end + _CRC.size:
        raise SnapshotFormatError(f"{path} is truncated inside the header")
    header_bytes = data[_PREFIX.size : header_end]
    (header_crc,) = _CRC.unpack_from(data, header_end)
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotIntegrityError(
            f"{path}: header checksum mismatch — the snapshot was altered"
        )
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotFormatError(f"{path}: undecodable header JSON") from exc
    if header.get("format_version") != version:
        raise SnapshotFormatError(
            f"{path}: header format_version {header.get('format_version')} "
            f"disagrees with the container's {version}"
        )
    _validate_header(path, header)
    raw_sections: dict[str, bytes] = {}
    if not with_sections:
        return header, raw_sections
    payload = data[header_end + _CRC.size :]
    for entry in header.get("sections", []):
        start, length = entry["offset"], entry["length"]
        blob = payload[start : start + length]
        if len(blob) != length:
            raise SnapshotFormatError(
                f"{path} is truncated inside section {entry['name']!r}"
            )
        if zlib.crc32(blob) != entry["crc32"]:
            raise SnapshotIntegrityError(
                f"{path}: checksum mismatch in section {entry['name']!r} — "
                f"the snapshot was altered"
            )
        try:
            raw = zlib.decompress(blob)
        except zlib.error as exc:
            raise SnapshotIntegrityError(
                f"{path}: section {entry['name']!r} does not decompress"
            ) from exc
        if len(raw) != entry["raw_length"]:
            raise SnapshotIntegrityError(
                f"{path}: section {entry['name']!r} decompressed to "
                f"{len(raw)} bytes, expected {entry['raw_length']}"
            )
        raw_sections[entry["name"]] = raw
    return header, raw_sections


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_header(path, header: dict) -> None:
    """Typed refusal of structurally broken headers.

    The CRC only proves the header was not *altered after writing*; a
    crafted container can carry a self-consistent CRC over arbitrary
    JSON.  The snapshot fuzzer found such headers escaping as untyped
    ``KeyError``/``TypeError``/``ValueError`` from deep inside restore —
    every malformed field must instead be a :class:`SnapshotFormatError`
    callers can branch on.
    """

    def fail(message: str):
        raise SnapshotFormatError(
            f"{path}: malformed snapshot header: {message}"
        )

    if not isinstance(header.get("fingerprint"), str):
        fail('"fingerprint" must be a string')
    if not _is_int(header.get("entropy")) or header["entropy"] < 0:
        fail('"entropy" must be a non-negative integer')
    confidence = header.get("confidence")
    if (
        not isinstance(confidence, (int, float))
        or isinstance(confidence, bool)
        or not 0.0 < float(confidence) < 1.0
    ):
        fail('"confidence" must be a number in (0, 1)')
    if not isinstance(header.get("region"), str):
        fail('"region" must be a string')
    budget_hint = header.get("budget_hint")
    if not (
        budget_hint is None or _is_int(budget_hint)
        or isinstance(budget_hint, str)
    ):
        fail('"budget_hint" must be an integer, a spec string, or null')
    if not isinstance(header.get("sampling", "mc"), str):
        fail('"sampling" must be a string')
    configs = header.get("configs")
    if not isinstance(configs, list):
        fail('"configs" must be a list')
    for record in configs:
        if not isinstance(record, dict):
            fail("every config record must be an object")
        for key in ("kind", "backend"):
            if not isinstance(record.get(key), str):
                fail(f'config records need a string "{key}"')
        if not (record.get("k") is None or _is_int(record["k"])):
            fail('config "k" must be an integer or null')
        if "section" in record:
            if not isinstance(record["section"], str):
                fail('config "section" must be a string')
            if not isinstance(record.get("state"), dict):
                fail('pool-backed configs need an object "state"')
            tally = record.get("tally")
            if not isinstance(tally, dict):
                fail('pool-backed configs need an object "tally"')
            for key in ("n_keys", "total"):
                if not _is_int(tally.get(key)) or tally[key] < 0:
                    fail(f'tally "{key}" must be a non-negative integer')
            if not _is_int(tally.get("key_length")) or tally["key_length"] < 1:
                fail('tally "key_length" must be a positive integer')
            if not isinstance(tally.get("dtype"), str):
                fail('tally "dtype" must be a string')
        else:
            for key in ("yielded", "cursor"):
                if not _is_int(record.get(key)) or record[key] < 0:
                    fail(f'config "{key}" must be a non-negative integer')
            if not isinstance(record.get("exhausted"), bool):
                fail('config "exhausted" must be a bool')
    sections = header.get("sections", [])
    if not isinstance(sections, list):
        fail('"sections" must be a list')
    for entry in sections:
        if not isinstance(entry, dict):
            fail("every section-table entry must be an object")
        if not isinstance(entry.get("name"), str):
            fail('section entries need a string "name"')
        for key in ("offset", "length", "raw_length"):
            if not _is_int(entry.get(key)) or entry[key] < 0:
                fail(f'section "{key}" must be a non-negative integer')
        if not _is_int(entry.get("crc32")):
            fail('section "crc32" must be an integer')


def read_snapshot_header(path: str | Path) -> dict:
    """The verified header of a snapshot, without restoring anything.

    Useful for inspection tooling (the CLI's ``restore --inspect``):
    identity, per-configuration pool metadata, and the section table.
    The header's CRC is verified; section payloads are not read.
    """
    header, _ = _read_container(path, with_sections=False)
    return header


def load_session(
    path: str | Path,
    dataset,
    *,
    region=None,
    cache=None,
    cache_size: int = 512,
    parallel: bool | str = "auto",
    executor: str | None = None,
    max_workers: int | None = None,
    start_method: str | None = None,
    kernel: str | None = None,
):
    """Restore a :class:`StabilitySession` from a snapshot of it.

    ``dataset`` must fingerprint to the snapshot's fingerprint and
    ``region`` (default: the full space) must match the snapshot's
    region of interest — durable state over the wrong data is refused
    with :class:`~repro.errors.SnapshotMismatchError`, never guessed
    around.  Runtime-only knobs (``parallel``, ``executor``,
    ``max_workers``, cache wiring, ``kernel``) are the caller's to
    choose afresh; everything the answers depend on comes from the
    file.  A pool sampled under one kernel backend restores and
    continues identically under another — backends agree byte-for-byte.
    """
    with obs_trace.span("snapshot.restore", path=str(path)):
        return _load_session_body(
            path,
            dataset,
            region=region,
            cache=cache,
            cache_size=cache_size,
            parallel=parallel,
            executor=executor,
            max_workers=max_workers,
            start_method=start_method,
            kernel=kernel,
        )


def _load_session_body(
    path: str | Path,
    dataset,
    *,
    region=None,
    cache=None,
    cache_size: int = 512,
    parallel: bool | str = "auto",
    executor: str | None = None,
    max_workers: int | None = None,
    start_method: str | None = None,
    kernel: str | None = None,
):
    from repro.service.session import StabilitySession

    header, raw_sections = _read_container(path)
    # The session fingerprints its dataset at construction anyway —
    # comparing that (rather than hashing the matrix a second time
    # here) keeps restore at one fingerprint pass; construction is
    # cheap, every engine and index is lazy.
    try:
        session = StabilitySession(
            dataset,
            region=region,
            seed=header["entropy"],
            confidence=header["confidence"],
            cache=cache,
            cache_size=cache_size,
            parallel=parallel,
            executor=executor,
            max_workers=max_workers,
            start_method=start_method,
            budget=header["budget_hint"],
            kernel=kernel,
            sampling=header.get("sampling", "mc"),
        )
    except SnapshotError:
        raise
    except Exception as exc:
        # Backstop behind _validate_header: a header can be
        # well-typed yet still name values the session rejects
        # (an unknown sampling scheme, an unparseable budget spec).
        raise SnapshotFormatError(
            f"snapshot {path} header does not describe a restorable "
            f"session: {type(exc).__name__}: {exc}"
        ) from exc
    if header["fingerprint"] != session.fingerprint:
        session.close()
        raise SnapshotMismatchError(
            f"snapshot is of dataset {header['fingerprint'][:12]}..., but "
            f"the dataset being served fingerprints to "
            f"{session.fingerprint[:12]}..."
        )
    if session._region_key != header["region"]:
        session.close()
        raise SnapshotMismatchError(
            f"snapshot was taken over region {header['region']}, but the "
            f"session is being restored with {session._region_key}"
        )
    try:
        for record in header["configs"]:
            state = session._state(record["kind"], record["k"], record["backend"])
            if "section" in record:
                raw = raw_sections[record["section"]]
                meta = record["tally"]
                n_keys, total = meta["n_keys"], meta["total"]
                width = meta["key_length"] * np.dtype(meta["dtype"]).itemsize
                key_bytes = n_keys * width
                if len(raw) != key_bytes + 8 * n_keys:
                    raise SnapshotFormatError(
                        f"tally section {record['section']!r} holds "
                        f"{len(raw)} bytes, expected {key_bytes + 8 * n_keys}"
                    )
                op_state = dict(record["state"])
                op_state["tally"] = {
                    "key_length": meta["key_length"],
                    "dtype": meta["dtype"],
                    "n_keys": n_keys,
                    "total": total,
                    "keys": raw[:key_bytes],
                    "counts": np.frombuffer(raw[key_bytes:], dtype="<u8"),
                }
                state.engine.backend.restore_state(op_state)
            else:
                # Exact backends enumerate deterministically under the
                # session's derived rng streams: replay the recorded
                # prefix, then reposition the cursor.
                target = record["yielded"] + (1 if record["exhausted"] else 0)
                session._ensure_yielded(state, target)
                if len(state.yielded) != record["yielded"] or (
                    record["exhausted"] and not state.exhausted
                ):
                    raise SnapshotFormatError(
                        f"exact-backend replay diverged for config "
                        f"({record['kind']}, {record['k']}, "
                        f"{record['backend']}): snapshot recorded "
                        f"{record['yielded']} results, replay produced "
                        f"{len(state.yielded)}"
                    )
                state.cursor = record["cursor"]
        cache_doc = json.loads(raw_sections["cache"].decode())
        for key_enc, value_enc in cache_doc["entries"]:
            session.cache.put(_decode(key_enc), _decode(value_enc))
    except SnapshotError:
        session.close()
        raise
    except Exception as exc:
        session.close()
        raise SnapshotFormatError(
            f"snapshot {path} is internally inconsistent: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return session
