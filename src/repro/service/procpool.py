"""Process-parallel observe: shared-memory datasets, persistent workers.

The thread pool of :mod:`repro.service.parallel` only wins inside
GIL-releasing numpy sections; the byte-pack / ``np.unique`` / dict-fold
tail of every chunk reduction still serializes on the GIL, and on hosts
with many cores the BLAS product itself contends with the serving
threads.  This module moves the pure chunk reduction *out of process*:

- the scored dataset (and, when top-k pruning is installed, the
  candidate matrix and its identifier map) is placed in
  :mod:`multiprocessing.shared_memory` **once** per engine, and every
  worker maps a zero-copy read-only view — dataset transport costs one
  ``memcpy`` total, not one pickle per task;
- a persistent :class:`~concurrent.futures.ProcessPoolExecutor` keeps
  workers alive across observe passes, so a serving session pays the
  fork/spawn latency once;
- exact serial equivalence is preserved exactly as the thread pool
  preserves it: the pruning-index build and chunk plan run first
  (:meth:`~repro.core.randomized.GetNextRandomized.prepare_observe` /
  ``plan_chunks``), weight sampling stays on the caller's thread in
  plan order (identical rng stream), workers run only the pure
  reduction, and mini-tallies fold back **in plan order** via
  :meth:`~repro.engine.kernel.RankingTally.observe_packed` — counts,
  totals, and first-seen tie-breaks match the serial tally
  byte-for-byte.

Crash safety: a worker that dies mid-pass breaks the pool, not the
tally — the owner still holds every sampled weight block, so the
remaining chunks are reduced in-process (same fold order, same bytes)
and the pool is rebuilt lazily on the next pass.

Shared-memory lifecycle: segments are owned by the creating process.
:meth:`ProcessObserveEngine.close` (called by
:meth:`StabilitySession.close`, server drain, and session eviction)
unlinks them; an :mod:`atexit` hook unlinks anything left behind by an
abnormal exit, and :func:`live_segments` exposes the owner-side
registry so tests can assert nothing leaked.  Workers attach by name;
the attachment re-registers the segment with the (shared) resource
tracker, whose cache is a set — the duplicate collapses and the
owner's unlink clears the single entry, so workers must **not**
unregister (that would delete the owner's registration out from under
it; see :func:`_attach`).
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.core.randomized import GetNextRandomized
from repro.engine import kernels
from repro.obs import log_event
from repro.obs import tracing as obs_trace

__all__ = [
    "START_METHOD_ENV_VAR",
    "default_start_method",
    "SharedArray",
    "ProcessObserveEngine",
    "live_segments",
    "live_segment_bytes",
]

#: Environment override for the worker start method (``fork``,
#: ``spawn``, or ``forkserver``).  Single-threaded owners default to
#: ``fork`` where available: workers inherit the imported numpy/repro
#: modules for free, so pool spin-up is milliseconds instead of an
#: interpreter boot per worker.  Owners that are already
#: multi-threaded when the pool is built (the asyncio server grows
#: pools from its write-dispatch threads) default to ``forkserver``:
#: forking a multi-threaded process can clone a held lock (logging,
#: allocator, BLAS) into every worker and hang it — the forkserver
#: daemon forks from its own single-purpose process instead.
START_METHOD_ENV_VAR = "REPRO_START_METHOD"


def default_start_method() -> str:
    """The worker start method: env override, else fork/forkserver.

    ``fork`` when this process is still single-threaded, ``forkserver``
    once threads exist (fork-safety — see :data:`START_METHOD_ENV_VAR`),
    ``spawn`` where POSIX forking is unavailable.
    """
    override = os.environ.get(START_METHOD_ENV_VAR)
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(
                f"{START_METHOD_ENV_VAR}={override!r} is not available "
                f"on this platform (choices: {methods})"
            )
        return override
    if "fork" not in methods:
        return "spawn"
    import threading

    if threading.active_count() > 1 and "forkserver" in methods:
        return "forkserver"
    return "fork"


# ----------------------------------------------------------------------
# Owner-side segment registry (leak accounting + abnormal-exit cleanup)
# ----------------------------------------------------------------------
_LIVE: dict[str, shared_memory.SharedMemory] = {}


def live_segments() -> tuple[str, ...]:
    """Names of shared-memory segments this process currently owns.

    Test fixtures assert this is empty after every test — a segment
    surviving its engine is a leak (on Linux it would pin RAM in
    ``/dev/shm`` until reboot).
    """
    return tuple(sorted(_LIVE))


def live_segment_bytes() -> int:
    """Total bytes of the shared-memory segments this process owns.

    The resource-telemetry gauge behind ``repro_shm_segments``' sibling
    measurements; owner-side only (worker attachments map the same
    pages and are not double-counted).
    """
    return sum(shm.size for shm in _LIVE.values())


def _cleanup_at_exit() -> None:  # pragma: no cover - abnormal exits only
    for name in list(_LIVE):
        shm = _LIVE.pop(name, None)
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


atexit.register(_cleanup_at_exit)


class SharedArray:
    """An owner-side ndarray backed by a named shared-memory segment.

    ``create`` copies ``arr`` into a fresh segment (the one transport
    cost); ``spec`` is the picklable ``(name, shape, dtype)`` triple a
    worker needs to map a zero-copy read-only view.  The owner — and
    only the owner — unlinks.
    """

    __slots__ = ("shm", "array", "spec")

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray):
        self.shm = shm
        self.array = array
        self.spec = (shm.name, array.shape, array.dtype.str)

    @classmethod
    def create(cls, arr: np.ndarray) -> "SharedArray":
        src = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=max(src.nbytes, 1))
        view = np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf)
        view[...] = src
        view.setflags(write=False)
        _LIVE[shm.name] = shm
        return cls(shm, view)

    def unlink(self) -> None:
        """Release the mapping and remove the segment (idempotent)."""
        if _LIVE.pop(self.shm.name, None) is None:
            return
        # Drop the exported buffer view before closing the mapping —
        # closing with a live memoryview export raises BufferError.
        self.array = None
        try:
            self.shm.close()
        finally:
            self.shm.unlink()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker cache of attached segments: ``name -> (shm, ndarray)``.
#: The SharedMemory object must stay referenced or its buffer (and the
#: ndarray view over it) would be torn down mid-use.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _attach(spec) -> np.ndarray:
    """Map (and cache) a read-only view of one owner segment."""
    name, shape, dtype = spec
    cached = _ATTACHED.get(name)
    if cached is None:
        shm = shared_memory.SharedMemory(name=name)
        # Attaching re-registers the name with the resource tracker,
        # but fork/spawn workers share the owner's tracker process and
        # its cache is a set — the duplicate collapses, and the owner's
        # unlink clears the single entry.  Do NOT unregister here: that
        # would delete the owner's registration out from under it.
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        arr.setflags(write=False)
        cached = (shm, arr)
        _ATTACHED[name] = cached
    return cached[1]


def _proc_reduce(spec: dict, weights: np.ndarray):
    """Worker body: one chunk's pure reduction, identical to the serial
    :meth:`GetNextRandomized.reduce_for_weights`.

    The spec names the owner's kernel backend; workers share the host
    (and its numba availability), so resolving the name here routes the
    reduction through the same backend — byte-identical either way.
    """
    backend = kernels.resolve_kernel(spec.get("kernel"))
    if spec["cand_values"] is not None:
        values = _attach(spec["cand_values"])
        cand_ids = _attach(spec["cand_ids"])
    else:
        values = _attach(spec["values"])
        cand_ids = None
    return backend.reduce_chunk(
        values,
        weights,
        kind=spec["kind"],
        k=spec["k"],
        key_dtype=np.dtype(spec["key_dtype"]),
        candidates=cand_ids,
    )


def _proc_reduce_many(spec: dict, weight_blocks: list):
    """Reduce several chunks in one task (one submit, one result pickle).

    Each chunk is still reduced *separately*, preserving the serial
    path's per-chunk fold boundaries — grouping only amortises the
    executor round-trip, it never merges chunks.
    """
    return [_proc_reduce(spec, weights) for weights in weight_blocks]


def _reduce_in_process(op: GetNextRandomized, weights: np.ndarray):
    """The same reduction on the owner (broken-pool rescue path)."""
    return op.reduce_for_weights(weights)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ProcessObserveEngine:
    """A persistent worker pool bound to one dataset's shared segments.

    Parameters
    ----------
    dataset:
        The served dataset; its ``values`` matrix is copied into shared
        memory once, here.
    max_workers:
        Pool width (default:
        :func:`repro.service.parallel.default_workers`).
    start_method:
        ``fork`` / ``spawn`` / ``forkserver``; default
        :func:`default_start_method` (env-overridable via
        ``REPRO_START_METHOD``).
    """

    def __init__(
        self,
        dataset,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
    ):
        if max_workers is None:
            from repro.service.parallel import default_workers

            max_workers = default_workers()
        self.dataset = dataset
        self.max_workers = max(1, int(max_workers))
        self.start_method = (
            start_method if start_method is not None else default_start_method()
        )
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {self.start_method!r} is not available "
                f"(choices: {multiprocessing.get_all_start_methods()})"
            )
        self._values = SharedArray.create(dataset.values)
        # Candidate-matrix segments, keyed by the id of the operator's
        # installed candidate array.  The array itself is held in the
        # value to pin the id (a gc'd array could recycle it).
        self._extras: dict[int, tuple] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ProcessObserveEngine is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._pool

    def warm_up(self) -> None:
        """Pre-start the workers (optional; the first observe also does)."""
        pool = self._ensure_pool()
        pool.submit(int, 0).result()

    def _reset_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut workers down and unlink every shared segment (idempotent).

        Wired into :meth:`StabilitySession.close`, so SIGTERM drains and
        registry evictions release the segments deterministically.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._values.unlink()
        for _, sa_values, sa_ids in self._extras.values():
            sa_values.unlink()
            sa_ids.unlink()
        self._extras.clear()

    def __enter__(self) -> "ProcessObserveEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- task specs -----------------------------------------------------
    def _spec_for(self, op: GetNextRandomized) -> dict:
        spec = {
            "values": self._values.spec,
            "cand_values": None,
            "cand_ids": None,
            "kind": op.kind,
            "k": op.k,
            "key_dtype": op.tally.dtype.str,
            "kernel": op.kernel_backend.name,
        }
        if op._candidate_values is not None:
            key = id(op._candidates)
            entry = self._extras.get(key)
            if entry is None:
                entry = (
                    op._candidates,
                    SharedArray.create(op._candidate_values),
                    SharedArray.create(
                        np.ascontiguousarray(op._candidates, dtype=np.int64)
                    ),
                )
                self._extras[key] = entry
            spec["cand_values"] = entry[1].spec
            spec["cand_ids"] = entry[2].spec
        return spec

    # -- the observe pass ----------------------------------------------
    def observe(
        self,
        op,
        n_new: int,
        *,
        force: bool = False,
        min_items: int | None = None,
    ) -> int:
        """Grow ``op``'s pool by ``n_new`` on the worker processes.

        Returns the number of chunks reduced out-of-process (``0`` when
        the serial fallback ran).  The resulting tally is byte-identical
        to the serial path's in every case — including a worker crash
        mid-pass, which falls back to in-process reduction for the
        remaining chunks (the sampled weights are still in hand) and
        rebuilds the pool lazily.
        """
        from repro.service.parallel import PARALLEL_MIN_ITEMS, should_parallelize

        if self._closed:
            raise RuntimeError("ProcessObserveEngine is closed")
        op = getattr(op, "raw", op)
        if not isinstance(op, GetNextRandomized):
            raise TypeError(
                "process observe requires a randomized operator, "
                f"got {type(op).__name__}"
            )
        if op.dataset.values is not self.dataset.values:
            raise ValueError(
                "operator dataset does not match this engine's shared "
                "segments; build one engine per dataset"
            )
        if n_new <= 0:
            return 0
        op.prepare_observe(n_new)
        sizes = op.plan_chunks(n_new)
        floor = PARALLEL_MIN_ITEMS if min_items is None else min_items
        if not force and not should_parallelize(
            op.dataset.n_items, len(sizes), self.max_workers + 1, min_items=floor
        ):
            op.observe(n_new)
            return 0
        # Serial stream draws in plan order: the stream matches the
        # serial path's exactly (same contract as the thread-pool
        # observer), for both the rng and the quasi-MC stream.
        traced = obs_trace.tracing_enabled()
        clock = time.perf_counter
        t0 = clock() if traced else 0.0
        weight_chunks = [op.sample_weights(batch) for batch in sizes]
        if traced:
            obs_trace.record("observe.sample", clock() - t0,
                             count=len(sizes), n=n_new)
        spec = self._spec_for(op)
        # Group several chunks per task: the auto-tuned chunk shrinks as
        # n grows (bounded score-matrix footprint), so a big pass at
        # n >= 100K is hundreds of tiny chunks — one executor round-trip
        # each would dominate.  Grouping amortises submit/IPC while the
        # per-chunk reduction (and fold order) stays untouched.
        group_size = max(1, -(-len(weight_chunks) // (4 * self.max_workers)))
        groups = [
            weight_chunks[i : i + group_size]
            for i in range(0, len(weight_chunks), group_size)
        ]
        broken = False
        rescued_chunks = 0
        futures = []
        t1 = clock() if traced else 0.0
        try:
            pool = self._ensure_pool()
            for group in groups:
                futures.append(pool.submit(_proc_reduce_many, spec, group))
        except Exception:
            broken = True
        if traced:
            obs_trace.record("procpool.submit", clock() - t1,
                             count=len(futures), groups=len(groups))
        t2 = clock() if traced else 0.0
        for i, group in enumerate(groups):
            results = None
            if not broken and i < len(futures):
                try:
                    results = futures[i].result()
                except Exception:
                    broken = True
            if results is None:
                # Worker (or pool) died mid-pass: the weights are still
                # in hand, so the remaining chunks reduce in-process and
                # the tally stays byte-identical.
                results = [_reduce_in_process(op, w) for w in group]
                rescued_chunks += len(group)
            for keys, freqs, n_rows in results:
                op.tally.observe_packed(keys, freqs, n_rows)
        if traced:
            # Wait-and-fold: worker reductions overlap this loop, so it
            # covers the whole out-of-process reduce+fold tail.
            obs_trace.record("procpool.fold", clock() - t2, count=len(groups))
        if broken:
            log_event(
                "worker.rescue",
                level=logging.WARNING,
                rescued_chunks=rescued_chunks,
                total_chunks=len(sizes),
                workers=self.max_workers,
            )
            self._reset_pool()
        return len(sizes)
