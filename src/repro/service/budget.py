"""Precision-targeted sampling budgets (``"ci:0.02"``-style).

A raw sample count is the wrong dial for most serving workloads: the
caller cares about the *precision* of the answer, not the pool size
that happens to deliver it.  A :class:`PrecisionBudget` names a target
confidence-interval half-width for the leading ranking; the controller
(:func:`ensure_precision`) grows the pool just until the target is met
— jumping most of the way in one pass using the paper's expected-budget
formula (Equation 11) instead of creeping up in fixed steps — and stops
observing the moment the estimate is tight enough.

The spec grammar, shared by the session parameter, the batch planner,
the wire protocol, and the CLI::

    5000              plain cumulative sample target (unchanged)
    "ci:0.02"         grow until the leading CI half-width is <= 0.02
    "ci:0.02@200000"  same, but cap the pool at 200,000 samples

Hitting the cap before the width is reached raises
:class:`~repro.errors.BudgetExceededError`, mirroring Algorithm 8's
fixed-confidence stopping rule.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.errors import BudgetExceededError
from repro.obs import log_event
from repro.sampling.montecarlo import confidence_error, expected_samples_for_error

__all__ = [
    "DEFAULT_PRECISION_CAP",
    "PrecisionBudget",
    "parse_budget",
    "precision_satisfied",
    "ensure_precision",
    "leading_interval",
]

#: Default pool cap for precision budgets without an explicit ``@max``
#: (matches Algorithm 8's ``max_samples`` safety valve).
DEFAULT_PRECISION_CAP = 10_000_000

#: Pool size of the first observe pass when a precision budget starts
#: from an empty pool — enough to see a leading ranking and seed the
#: Equation 11 jump without overshooting tiny datasets.
_SEED_SAMPLES = 1_000


@dataclass(frozen=True)
class PrecisionBudget:
    """A CI-half-width target for the leading ranking of a pool.

    ``width`` is the maximum acceptable confidence half-width
    (Equation 10) of the pool's most frequent ranking; ``max_samples``
    caps the pool.  Instances are valid cache-key components and
    ``spec`` round-trips through :func:`parse_budget`.
    """

    width: float
    max_samples: int = DEFAULT_PRECISION_CAP

    def __post_init__(self):
        if not 0.0 < float(self.width) < 1.0:
            raise ValueError(
                f"precision width must be in (0, 1), got {self.width}"
            )
        if int(self.max_samples) < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {self.max_samples}"
            )
        object.__setattr__(self, "width", float(self.width))
        object.__setattr__(self, "max_samples", int(self.max_samples))

    @property
    def spec(self) -> str:
        """The canonical string form (``parse_budget(spec) == self``)."""
        if self.max_samples == DEFAULT_PRECISION_CAP:
            return f"ci:{self.width:g}"
        return f"ci:{self.width:g}@{self.max_samples}"

    def __str__(self) -> str:
        return self.spec


def parse_budget(value):
    """Normalise one budget value from any surface (CLI, wire, API).

    ``None`` and :class:`PrecisionBudget` pass through; positive ints
    pass through; strings parse as either a plain integer or the
    ``ci:WIDTH[@MAX]`` precision grammar.  Anything else raises
    :class:`ValueError` — budgets arrive from the wire, so type
    confusion must surface as a bad request, not a crash downstream.
    """
    if value is None or isinstance(value, PrecisionBudget):
        return value
    if isinstance(value, bool):
        raise ValueError(f"budget must be an int or a spec string, got {value!r}")
    if isinstance(value, int):
        if value < 1:
            raise ValueError(f"budget must be >= 1, got {value}")
        return value
    if isinstance(value, str):
        text = value.strip()
        if text.startswith("ci:"):
            body = text[3:]
            width_text, sep, cap_text = body.partition("@")
            try:
                width = float(width_text)
            except ValueError:
                raise ValueError(f"bad precision width in budget {value!r}") from None
            if sep:
                try:
                    cap = int(cap_text)
                except ValueError:
                    raise ValueError(
                        f"bad sample cap in budget {value!r}"
                    ) from None
                return PrecisionBudget(width, cap)
            return PrecisionBudget(width)
        try:
            return parse_budget(int(text))
        except ValueError:
            raise ValueError(
                f"budget must be an integer or 'ci:WIDTH[@MAX]', got {value!r}"
            ) from None
    raise ValueError(f"budget must be an int or a spec string, got {value!r}")


def leading_interval(raw, confidence: float):
    """``(stability, half_width)`` of the pool's most frequent ranking,
    or ``None`` for an empty (or ranking-free) pool.

    Also the cost-attribution source for the achieved CI width a query
    reports after a precision-budgeted observe.
    """
    total = raw.total_samples
    if total <= 0:
        return None
    keys = raw.tally.top_keys(1)
    if not keys:
        return None
    stability = raw.tally.count_of(keys[0]) / total
    return stability, confidence_error(stability, total, confidence=confidence)


# Backwards-compatible alias (pre-observability name).
_leading_interval = leading_interval


def precision_satisfied(raw, budget: PrecisionBudget, *, confidence: float) -> bool:
    """Whether ``raw``'s pool already meets ``budget`` — a pure read.

    The warm-read classifier uses this: a satisfied budget means
    :func:`ensure_precision` would observe nothing, so the query is
    provably non-mutating.
    """
    leading = _leading_interval(raw, confidence)
    return leading is not None and leading[1] <= budget.width


def ensure_precision(raw, budget: PrecisionBudget, observe, *, confidence: float) -> int:
    """Grow ``raw``'s pool until the leading CI half-width meets ``budget``.

    ``observe`` is the growth callback (``observe(n_new)``) — the
    session passes its :class:`~repro.service.parallel.ObserveExecutor`
    so precision-driven passes shard exactly like fixed-budget ones.
    Each round jumps to the Equation 11 estimate for the current
    leading stability (floored at a pool doubling, so a drifting
    estimate still converges geometrically), capped by
    ``budget.max_samples``.  Returns the final pool size; raises
    :class:`~repro.errors.BudgetExceededError` when the cap is reached
    without meeting the width.
    """
    while not precision_satisfied(raw, budget, confidence=confidence):
        total = raw.total_samples
        if total >= budget.max_samples:
            log_event(
                "budget.exhausted",
                level=logging.WARNING,
                target=budget.spec,
                samples=total,
                cap=budget.max_samples,
            )
            raise BudgetExceededError(
                f"confidence half-width {budget.width} not reached within "
                f"{budget.max_samples} samples"
            )
        leading = leading_interval(raw, confidence)
        if leading is None:
            need = _SEED_SAMPLES
        else:
            expected = expected_samples_for_error(
                leading[0], budget.width, confidence=confidence
            )
            need = max(expected - total, total, _SEED_SAMPLES)
        drawn = min(need, budget.max_samples - total)
        observe(drawn)
        log_event(
            "pool.grow",
            level=logging.DEBUG,
            target=budget.spec,
            jump=drawn,
            samples=raw.total_samples,
        )
    return raw.total_samples
