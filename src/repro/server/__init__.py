"""repro.server — the async multi-client network front-end.

The service tier (:mod:`repro.service`) made stability queries cheap to
*repeat*; this package makes the warm state those queries accumulate
reachable by more than one process: an asyncio TCP server speaking the
same JSON-lines protocol as ``cli.py serve`` on stdio, with a shared
session registry, admission control, metrics, and checkpointed rolling
restarts.

- :mod:`repro.server.protocol` — versioned framing, structured error
  codes, and the one dispatch function every transport shares;
- :mod:`repro.server.registry` — named-dataset session registry with
  async read/write locks, restore-on-start, LRU eviction via
  checkpoint;
- :mod:`repro.server.app` — the TCP server: backpressure, load
  shedding, graceful drain;
- :mod:`repro.server.metrics` — counters and latency histograms
  (``stats`` op + text endpoint);
- :mod:`repro.server.client` — a blocking client for tests,
  benchmarks, and scripts;
- :mod:`repro.server.resilience` — deadlines, retry policies, circuit
  breakers, overload degradation, and the chaos fault injector.
"""

from repro.server.app import (
    ServerConfig,
    ServerHandle,
    StabilityServer,
    serve_in_thread,
)
from repro.server.client import (
    RequestTimeoutError,
    ServeClient,
    ServerClosedError,
    parse_hostport,
)
from repro.server.metrics import ServerMetrics
from repro.server.registry import (
    AsyncRWLock,
    ManagedSession,
    SessionRegistry,
    snapshot_path_for,
)
from repro.server.resilience import (
    ChaosInjector,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    OverloadGuard,
    RetryPolicy,
    parse_chaos,
)

__all__ = [
    "AsyncRWLock",
    "ChaosInjector",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "ManagedSession",
    "OverloadGuard",
    "RequestTimeoutError",
    "RetryPolicy",
    "ServeClient",
    "ServerClosedError",
    "ServerConfig",
    "ServerHandle",
    "ServerMetrics",
    "SessionRegistry",
    "StabilityServer",
    "parse_chaos",
    "parse_hostport",
    "serve_in_thread",
    "snapshot_path_for",
]
