"""The asyncio TCP front-end: many clients, one warm serving state.

:class:`StabilityServer` frames the JSON-lines protocol over TCP and
executes requests against a shared :class:`~repro.server.registry.
SessionRegistry`.  Design points, in the order they matter:

**Concurrency.** Read requests run on the event loop's default
executor; write-classified requests (pool growth, cursor advances,
checkpoints) run on a small dedicated thread pool, so a burst of cold
observes can never occupy every executor thread and starve warm reads
of a slot.  With the registry's ``executor="process"`` the observe
itself leaves the serving process entirely (shared-memory worker pool,
:mod:`repro.service.procpool`): the write thread just waits on worker
futures, the GIL stays free, and the event loop keeps multiplexing
reads while a cold pool grows.  Per-session read/write locks let warm
idempotent queries interleave while pool growth serializes (see
:mod:`repro.server.registry`).  Responses on one connection are written
in request order, so pipelining clients need no correlation ids (though
``"id"`` echoing is supported).

**Backpressure, not buffering.** Each connection stops *reading* once
``max_pending_per_connection`` requests are in flight — TCP's flow
control then pushes back on the client.  A global ``max_inflight``
admission cap protects the executor: requests beyond it are answered
immediately with ``{"error": {"code": "busy"}}`` (load shedding) rather
than queued without bound.

**Graceful drain.** SIGTERM (or the ``shutdown`` op, or
:meth:`StabilityServer.request_shutdown`) stops accepting connections,
lets in-flight requests finish within ``drain_grace`` seconds,
checkpoints every dirty session to the state dir, then exits.  Paired
with restore-on-start this makes rolling restarts cheap: the next
process answers its first query from the warm pools the last one saved.

**Observability.** Every request lands in
:class:`~repro.server.metrics.ServerMetrics` (counters + latency
histograms), surfaced via the ``stats`` op and an optional plain-text
HTTP ``--metrics`` endpoint.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs import log_event, register_resource_gauges
from repro.obs import flight as obs_flight
from repro.server import protocol, resilience
from repro.server.metrics import ServerMetrics
from repro.server.registry import SessionRegistry

__all__ = ["ServerConfig", "StabilityServer", "ServerHandle", "serve_in_thread"]


@dataclass
class ServerConfig:
    """Tunables for one :class:`StabilityServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (tests/benchmarks)
    #: Largest accepted request frame; longer lines are answered with
    #: ``line_too_long`` and discarded without dropping the connection.
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    #: Global admission cap: requests in flight beyond this are shed
    #: with ``busy`` instead of queued.
    max_inflight: int = 64
    #: Per-connection pipelining depth: the reader stops pulling lines
    #: once this many requests from one connection are in flight.
    max_pending_per_connection: int = 8
    #: Seconds the drain waits for in-flight requests before giving up.
    drain_grace: float = 30.0
    #: Checkpoint a session after this many write-ish requests on it
    #: (0: only at drain/eviction or via the ``checkpoint`` op).
    checkpoint_every: int = 0
    #: Width of the dedicated write-dispatch thread pool (pool growth,
    #: cursors, checkpoints).  Writes serialize per session anyway;
    #: this only bounds how many *sessions* can grow concurrently.
    write_threads: int = 2
    #: Optional plain-text metrics endpoint (HTTP GET, any path).
    metrics_port: int | None = None
    #: Requests slower than this (seconds) are logged as ``slow_query``
    #: events with their op and dataset (``None``: disabled).
    slow_query_seconds: float | None = None
    #: Restore existing snapshots *before* binding the listen socket,
    #: so a rolling restart never serves its replay latency to a
    #: client (the first answer is a cache hit, not a restore).
    prewarm: bool = True
    #: Per-dataset service-level objectives, e.g. ``"p99:50ms,err:0.1%"``
    #: (``None``: SLO tracking off).  Parsed by :func:`repro.obs.slo.
    #: parse_slo`; scores surface in ``stats`` and as ``repro_slo_*``
    #: exposition families.
    slo: str | None = None
    #: Keep the process-global flight recorder capturing while this
    #: server runs (events, wire-trace reports, slow queries, periodic
    #: metrics snapshots — the evidence a diag bundle dumps).
    flight: bool = True
    #: Flight-recorder event-ring entry cap.
    flight_max_events: int = 512
    #: Flight-recorder per-ring byte cap.
    flight_max_bytes: int = 256 * 1024
    #: Seconds between metrics snapshots recorded into the flight ring.
    flight_metrics_interval: float = 5.0
    #: Directory diag bundles are written to (``SIGUSR2``, drain-on-
    #: error); ``None``: the current working directory.
    diag_dir: str | None = None
    #: Chaos middleware spec, e.g. ``"delay:p=0.05,ms=100;error:p=0.01;
    #: drop:p=0.005"`` (``None``: no injection).  Parsed by
    #: :func:`repro.server.resilience.parse_chaos`; faults are decided
    #: deterministically from ``chaos_seed`` and arrival order.
    chaos: str | None = None
    #: Seed for the chaos injector's fault stream.
    chaos_seed: int = 0
    #: Degraded-mode memory watermark: when the live pool+cache bytes
    #: reach this, write-classified query ops are shed ``overloaded``
    #: (warm reads keep answering) until usage falls below
    #: ``memory_low_fraction`` of it.  ``None``: no degradation.
    memory_watermark_bytes: int | None = None
    #: Hysteresis floor for leaving degraded mode, as a fraction of
    #: ``memory_watermark_bytes``.
    memory_low_fraction: float = 0.8
    #: ``Retry-After``-style hint (milliseconds) attached to
    #: ``overloaded`` errors.
    overload_retry_after_ms: float = 500.0

    def __post_init__(self):
        # 0 is not a "disabled" sentinel for the admission knobs — a
        # zero-wide semaphore would silently hang every connection.
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_pending_per_connection < 1:
            raise ValueError(
                "max_pending_per_connection must be >= 1, got "
                f"{self.max_pending_per_connection}"
            )
        if self.max_line_bytes < 2:
            raise ValueError(
                f"max_line_bytes must be >= 2, got {self.max_line_bytes}"
            )
        if self.drain_grace < 0:
            raise ValueError(
                f"drain_grace must be >= 0, got {self.drain_grace}"
            )
        if self.write_threads < 1:
            raise ValueError(
                f"write_threads must be >= 1, got {self.write_threads}"
            )
        if self.slow_query_seconds is not None and self.slow_query_seconds < 0:
            raise ValueError(
                "slow_query_seconds must be >= 0 or None, got "
                f"{self.slow_query_seconds}"
            )
        if self.flight_max_events < 1:
            raise ValueError(
                f"flight_max_events must be >= 1, got {self.flight_max_events}"
            )
        if self.flight_max_bytes < 1:
            raise ValueError(
                f"flight_max_bytes must be >= 1, got {self.flight_max_bytes}"
            )
        if self.flight_metrics_interval <= 0:
            raise ValueError(
                "flight_metrics_interval must be > 0, got "
                f"{self.flight_metrics_interval}"
            )
        if self.slo is not None:
            from repro.obs.slo import parse_slo

            parse_slo(self.slo)  # fail fast on a bad spec
        if self.chaos is not None:
            resilience.parse_chaos(self.chaos)  # fail fast on a bad spec
        if self.memory_watermark_bytes is not None:
            # OverloadGuard re-validates; constructing one here fails
            # fast on a bad watermark/fraction/hint combination.
            resilience.OverloadGuard(
                self.memory_watermark_bytes,
                low_fraction=self.memory_low_fraction,
                retry_after_ms=self.overload_retry_after_ms,
            )


class StabilityServer:
    """Asyncio TCP/JSON-lines server over a session registry."""

    def __init__(
        self,
        registry: SessionRegistry,
        *,
        config: ServerConfig | None = None,
        metrics: ServerMetrics | None = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._server: asyncio.Server | None = None
        self._metrics_server: asyncio.Server | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight = 0
        self._draining = False
        self._write_pool: ThreadPoolExecutor | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.drain_report: list[dict] = []
        self.prewarmed: list[str] = []
        self.slo_tracker = None
        self._flight_task: asyncio.Task | None = None
        self._flight_enabled_here = False
        self._chaos = (
            resilience.ChaosInjector(
                resilience.parse_chaos(self.config.chaos),
                seed=self.config.chaos_seed,
            )
            if self.config.chaos is not None
            else None
        )
        self._memory_used = lambda: 0  # rebound at start()
        self._overload = (
            resilience.OverloadGuard(
                self.config.memory_watermark_bytes,
                low_fraction=self.config.memory_low_fraction,
                retry_after_ms=self.config.overload_retry_after_ms,
            )
            if self.config.memory_watermark_bytes is not None
            else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Prewarm, bind, and start accepting; returns the bound address."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self.registry.on_evict = self.metrics.evicted
        self._register_resource_gauges()
        if self.config.slo:
            from repro.obs.slo import SloTracker, parse_slo

            tracker = SloTracker(
                parse_slo(self.config.slo), self.metrics.dataset_view
            )
            # Every catalogued dataset exports zeroed SLO series from
            # the first scrape, not from its first request.
            tracker.watch(*self.registry.names())
            self.slo_tracker = tracker
            self.metrics.slo = tracker
        if self.config.flight:
            obs_flight.enable(
                max_events=self.config.flight_max_events,
                max_bytes=self.config.flight_max_bytes,
            )
            self._flight_enabled_here = True
            self._flight_task = asyncio.get_running_loop().create_task(
                self._flight_loop()
            )
        if self.config.prewarm:
            self.prewarmed = await self.registry.prewarm()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            # readuntil() must be able to hold one maximal line plus
            # its newline before declaring overrun.
            limit=self.config.max_line_bytes + 2,
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connection,
                self.config.host,
                self.config.metrics_port,
            )
        return self.address

    def _register_resource_gauges(self) -> None:
        """Resource telemetry on the metrics registry (RSS, shm, pools).

        The closures snapshot the active-session map per read — gauge
        scrapes race session activation/eviction, and the registry
        renders a ``nan`` sample for a gauge that throws rather than
        failing the exposition.
        """
        registry = self.registry

        def pool_bytes() -> int:
            return sum(
                m.session.pool_bytes() for m in list(registry._active.values())
            )

        def cache_bytes() -> int:
            return sum(
                m.session.cache.approx_bytes()
                for m in list(registry._active.values())
            )

        register_resource_gauges(
            self.metrics.registry,
            pool_bytes=pool_bytes,
            cache_bytes=cache_bytes,
        )
        # The overload guard watches the same accounting the gauges
        # export — what the operator sees degrade is what degraded.
        self._memory_used = lambda: pool_bytes() + cache_bytes()
        overload = self._overload
        resilience.register_resilience_metrics(
            self.metrics.registry,
            degraded=(lambda: overload.degraded) if overload else None,
        )

    async def _flight_loop(self) -> None:
        """Record a metrics snapshot into the flight ring periodically.

        One immediately, so a bundle taken right after start already
        holds a baseline, then every ``flight_metrics_interval``.
        """
        while True:
            obs_flight.record_metrics(self.metrics.snapshot())
            await asyncio.sleep(self.config.flight_metrics_interval)

    def dump_diag(self, reason: str) -> str | None:
        """Write a diag bundle to ``diag_dir``; returns its path.

        ``None`` when the flight recorder is not enabled.  Safe to call
        from any thread (only reads the recorder and metrics locks).
        """
        slo = self.slo_tracker.snapshot() if self.slo_tracker else None
        bundle = obs_flight.diag_bundle(
            reason, metrics_snapshot=self.metrics.snapshot(), slo=slo
        )
        if bundle is None:
            return None
        directory = self.config.diag_dir or "."
        path = os.path.join(
            directory, f"repro-diag-{int(time.time())}-{reason}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, default=str)
            handle.write("\n")
        log_event("diag.dump", reason=reason, path=path)
        return path

    def request_shutdown(self) -> None:
        """Begin a graceful drain (thread-safe, idempotent)."""
        if self._loop is None or self._shutdown_event is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown_event.set)

    async def serve_until_shutdown(
        self, *, install_signal_handlers: bool = False
    ) -> None:
        """Serve until a shutdown is requested, then drain and return.

        With ``install_signal_handlers`` SIGTERM/SIGINT trigger the
        drain (the production entrypoint); tests and embedded servers
        call :meth:`request_shutdown` instead.
        """
        if self._server is None:
            await self.start()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(sig, self.request_shutdown)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass
            # SIGUSR2: dump a diag bundle without disturbing serving
            # (absent on platforms without the signal, e.g. Windows).
            usr2 = getattr(signal, "SIGUSR2", None)
            if usr2 is not None:
                try:
                    self._loop.add_signal_handler(
                        usr2, lambda: self.dump_diag("sigusr2")
                    )
                    installed.append(usr2)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await self._shutdown_event.wait()
        finally:
            for sig in installed:
                self._loop.remove_signal_handler(sig)
        await self._drain()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, checkpoint, release."""
        self._draining = True
        self._server.close()
        if self._metrics_server is not None:
            self._metrics_server.close()
        deadline = self._loop.time() + self.config.drain_grace
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Connections idling in a read are woken so their queued
        # responses flush and their sockets close cleanly.  This must
        # happen *before* wait_closed(): since Python 3.12.1,
        # Server.wait_closed blocks until every client connection is
        # gone — and an idle keep-alive handler parked in readuntil()
        # only exits when cancelled here.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        with contextlib.suppress(Exception):
            await self._server.wait_closed()
        if self._metrics_server is not None:
            with contextlib.suppress(Exception):
                await self._metrics_server.wait_closed()
        # Every dirty session reaches disk before the process exits —
        # the other half of the rolling-restart contract.  Checkpoints
        # run under each session's write lock (bounded by the grace),
        # so a request that outlived the drain window can never tear a
        # snapshot mid-observe; it loses durability, not integrity.
        self.drain_report = await self.registry.close(
            grace=self.config.drain_grace
        )
        for entry in self.drain_report:
            self.metrics.checkpointed(failed="error" in entry)
        # A drain that failed to checkpoint a session is exactly the
        # moment the flight rings matter — dump them before teardown.
        if any("error" in entry for entry in self.drain_report):
            with contextlib.suppress(Exception):
                self.dump_diag("drain-error")
        if self._flight_task is not None:
            self._flight_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._flight_task
            self._flight_task = None
        if self._flight_enabled_here:
            obs_flight.disable()
            self._flight_enabled_here = False
        # registry.close() closed every session, which shut down their
        # observe pools (process workers included, shared memory
        # unlinked); the write-dispatch threads go last.
        if self._write_pool is not None:
            self._write_pool.shutdown(wait=True)
            self._write_pool = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _read_line(self, reader: asyncio.StreamReader) -> bytes | None:
        """One newline-terminated frame; ``None`` on EOF.

        An oversized frame is *discarded through its newline* and
        reported as :class:`~repro.server.protocol.RequestError`
        (``line_too_long``) — the connection survives, and the next
        line parses normally.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            return exc.partial or None  # EOF; a final unterminated line
        except asyncio.LimitOverrunError as exc:
            # Discard through the oversized line's newline: drop the
            # buffered prefix, then keep reading (and dropping) until
            # readuntil finds the terminator — it stops exactly after
            # the newline, so the next frame is preserved intact.
            await reader.read(exc.consumed)
            while True:
                try:
                    await reader.readuntil(b"\n")
                    break  # the tail of the oversized line, discarded
                except asyncio.LimitOverrunError as more:
                    await reader.read(more.consumed)
                except asyncio.IncompleteReadError:
                    break  # EOF arrived mid-line
            raise protocol.RequestError(
                "line_too_long",
                f"request line exceeded {self.config.max_line_bytes} bytes",
            ) from None

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connection_opened()
        self._conn_tasks.add(asyncio.current_task())
        # Bounded: when the client stops reading responses, puts block
        # and the read loop stops pulling lines — backpressure covers
        # protocol-error and busy responses too, not just admitted work.
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(2 * self.config.max_pending_per_connection, 8)
        )
        sender = asyncio.create_task(self._send_loop(queue, writer))
        pending = asyncio.Semaphore(self.config.max_pending_per_connection)
        try:
            while not self._draining:
                try:
                    raw = await self._read_line(reader)
                except protocol.RequestError as exc:
                    self.metrics.observe_error(exc.code)
                    if not await self._enqueue(
                        queue,
                        sender,
                        protocol.error_payload(exc.code, exc.message),
                    ):
                        break
                    continue
                if raw is None:
                    break
                self.metrics.add_bytes(received=len(raw))
                if not raw.strip():
                    continue
                try:
                    payload = protocol.parse_request(
                        raw, max_bytes=self.config.max_line_bytes
                    )
                except protocol.RequestError as exc:
                    self.metrics.observe_error(exc.code)
                    if not await self._enqueue(
                        queue,
                        sender,
                        protocol.error_payload(
                            exc.code, exc.message, request_id=exc.request_id
                        ),
                    ):
                        break
                    continue
                # The deadline anchors at receipt — parse-time, before
                # chaos delays or admission waits eat into it.
                deadline = resilience.Deadline.from_request(payload)
                if self._chaos is not None:
                    fault = self._chaos.decide(payload.get("op"))
                    if fault is not None:
                        if fault.kind == "drop":
                            # Abrupt close: queued responses still
                            # flush; this request (and anything the
                            # client pipelined behind it) is lost.
                            break
                        if fault.kind == "error":
                            self.metrics.observe_error("unavailable")
                            if not await self._enqueue(
                                queue,
                                sender,
                                protocol.error_payload(
                                    "unavailable",
                                    "injected fault: the request was not "
                                    "executed",
                                    request_id=payload.get("id"),
                                ),
                            ):
                                break
                            continue
                        await asyncio.sleep(fault.delay_s)
                if payload.get("op") == "shutdown":
                    # Framing-layer op (it ends this read loop), but
                    # the response comes from the shared dispatcher so
                    # TCP and stdio can never drift.
                    handled = protocol.dispatch(None, None, payload)
                    self.metrics.observe_request("shutdown", 0.0)
                    await self._enqueue(queue, sender, handled.response)
                    self.request_shutdown()
                    break
                # Per-connection backpressure: stop reading this socket
                # until one of its in-flight requests completes.
                await pending.acquire()
                if self._draining:
                    pending.release()
                    if deadline is not None and deadline.expired():
                        # The budget ran out before the drain refusal
                        # did: answer the code the client can act on —
                        # deadline_exceeded is terminal, shutting_down
                        # invites a retry the deadline no longer allows.
                        resilience.DEADLINE_EXCEEDED.inc()
                        self.metrics.observe_error("deadline_exceeded")
                        await self._enqueue(
                            queue,
                            sender,
                            protocol.error_payload(
                                "deadline_exceeded",
                                f"deadline of {deadline.deadline_ms:g} ms "
                                "expired while the server was draining",
                                request_id=payload.get("id"),
                            ),
                        )
                        break
                    self.metrics.refused_draining()
                    await self._enqueue(
                        queue,
                        sender,
                        protocol.error_payload(
                            "shutting_down",
                            "server is draining; no new work accepted",
                            request_id=payload.get("id"),
                        ),
                    )
                    break
                if self._inflight >= self.config.max_inflight:
                    pending.release()
                    self.metrics.shed()
                    if not await self._enqueue(
                        queue,
                        sender,
                        protocol.error_payload(
                            "busy",
                            f"{self._inflight} requests in flight (limit "
                            f"{self.config.max_inflight}); retry later",
                            request_id=payload.get("id"),
                        ),
                    ):
                        break
                    continue
                self._inflight += 1
                task = asyncio.create_task(self._process(payload, deadline))
                task.add_done_callback(
                    lambda _t, sem=pending: (
                        sem.release(),
                        self._request_done(),
                    )
                )
                if not await self._enqueue(queue, sender, task):
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # The task may arrive here cancelled (drain); the remaining
            # awaits must not re-raise out of the protocol callback.
            # The sender gets a bounded grace to flush queued responses
            # (a non-reading client must not park the drain forever).
            with contextlib.suppress(asyncio.QueueFull):
                queue.put_nowait(None)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await asyncio.wait_for(
                    asyncio.shield(sender), timeout=self.config.drain_grace
                )
            if not sender.done():
                sender.cancel()
                with contextlib.suppress(Exception, asyncio.CancelledError):
                    await sender
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()
            self._conn_tasks.discard(asyncio.current_task())
            self.metrics.connection_closed()

    def _request_done(self) -> None:
        self._inflight -= 1

    @staticmethod
    async def _enqueue(queue: asyncio.Queue, sender: asyncio.Task, item) -> bool:
        """Queue a response unless the sender is gone.

        The queue is bounded (that is the backpressure), so a put can
        block — but once the sender exits (client disconnected while
        responses were still queued) nothing will ever drain it, and a
        blocked put would park the read loop forever, leaking the
        handler.  Racing the put against the sender's own completion
        turns that into a clean connection teardown.
        """
        if sender.done():
            return False
        put = asyncio.ensure_future(queue.put(item))
        done, _ = await asyncio.wait(
            {put, sender}, return_when=asyncio.FIRST_COMPLETED
        )
        if put in done:
            return True
        put.cancel()
        return False

    async def _send_loop(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses in request order (pipelining stays ordered)."""
        while True:
            item = await queue.get()
            if item is None:
                return
            if isinstance(item, dict):
                response = item
            else:
                try:
                    response = await item
                except Exception as exc:  # a _process bug, not a request bug
                    response = protocol.error_payload(
                        *protocol.classify_exception(exc)
                    )
            data = protocol.encode_response(response).encode() + b"\n"
            self.metrics.add_bytes(sent=len(data))
            try:
                writer.write(data)
                await writer.drain()
            except ConnectionError:
                return

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    async def _process(self, payload: dict, deadline=None) -> dict:
        op = payload.get("op", "<invalid>")
        start = self._loop.time()
        try:
            response = await self._execute(payload, deadline)
        except protocol.RequestError as exc:
            response = protocol.error_payload(
                exc.code,
                exc.message,
                request_id=payload.get("id"),
                retry_after_ms=exc.retry_after_ms,
            )
        except Exception as exc:
            response = protocol.error_payload(
                *protocol.classify_exception(exc),
                request_id=payload.get("id"),
            )
        error = response.get("error") if isinstance(response, dict) else None
        elapsed = self._loop.time() - start
        dataset = None
        if op in protocol.QUERY_OPS:
            # Attribute query traffic to its dataset for the SLO engine;
            # membership-checked so a client probing bogus names cannot
            # mint unbounded label cardinality.
            name = payload.get("dataset") or self.registry.default_name
            if name in self.registry.names():
                dataset = name
        self.metrics.observe_request(
            op,
            elapsed,
            error_code=error.get("code") if error else None,
            dataset=dataset,
        )
        threshold = self.config.slow_query_seconds
        if threshold is not None and elapsed >= threshold:
            record = {
                "op": op,
                "seconds": round(elapsed, 6),
                "threshold": threshold,
                "dataset": dataset,
                "request_id": payload.get("id"),
                "error": error.get("code") if error else None,
            }
            # Join key with the wire trace: a traced slow request's
            # server-side line carries the same trace_id the client got.
            trace_section = (
                response.get("trace") if isinstance(response, dict) else None
            )
            if isinstance(trace_section, dict):
                record["trace_id"] = trace_section.get("trace_id")
            log_event("slow_query", level=logging.WARNING, **record)
            if obs_flight._ENABLED:
                obs_flight.record_slow_query(record)
        return response

    async def _execute(self, payload: dict, deadline=None) -> dict:
        op = payload["op"]
        # Session-less control ops share the stdio dispatcher directly.
        if op == "ping":
            return protocol.dispatch(
                None, None, payload, deadline=deadline
            ).response
        if op == "hello":
            handled = protocol.dispatch(
                None, None, payload, hello_extra=self._hello_extra(),
                deadline=deadline,
            )
            return handled.response
        if op in ("diag", "profile"):
            handled = protocol.dispatch(
                None, None, payload, diag_extra=self._diag_extra,
                deadline=deadline,
            )
            return handled.response
        try:
            managed = await self.registry.get(payload.get("dataset"))
        except KeyError as exc:
            raise protocol.RequestError(
                "unknown_dataset",
                f"unknown dataset {exc.args[0]!r}; "
                f"registered: {', '.join(self.registry.names())}",
            ) from None
        # Pin across the whole request: between registry.get and the
        # lock acquisition the session looks idle, and LRU eviction
        # must not close it out from under us.
        managed.pins += 1
        try:
            if op == "checkpoint":
                # Exclusive: a snapshot never interleaves with growth.
                # Runs on the *default* executor, not the write pool —
                # a checkpoint holding this session's write lock must
                # not also queue behind other sessions' long observes.
                async with managed.lock.write():
                    handled = await self._dispatch_in_executor(
                        managed, payload, deadline=deadline
                    )
                return handled.response
            write = protocol.needs_write(managed.session, payload)
            # Event-loop-side lock wait, grafted onto the trace when the
            # request asked for one — dispatch on the executor thread
            # cannot see how long admission to the session took.
            lock_t0 = self._loop.time()
            while True:
                if write:
                    self._check_overload(op, payload)
                    await self._acquire_session_lock(
                        managed.lock, write=True, deadline=deadline
                    )
                    try:
                        handled = await self._dispatch_in_executor(
                            managed,
                            payload,
                            write=True,
                            lock_wait=self._loop.time() - lock_t0,
                            deadline=deadline,
                        )
                        if handled.mutated:
                            managed.mark_dirty()
                    finally:
                        await managed.lock.release_write()
                    break
                await self._acquire_session_lock(
                    managed.lock, write=False, deadline=deadline
                )
                try:
                    # The pre-lock classification can be invalidated by
                    # an interleaved writer (an invalidate dropping the
                    # pool we judged warm); re-check now that mutators
                    # are excluded, and escalate if it flipped.
                    if protocol.needs_write(managed.session, payload):
                        write = True
                        continue
                    handled = await self._dispatch_in_executor(
                        managed,
                        payload,
                        lock_wait=self._loop.time() - lock_t0,
                        deadline=deadline,
                    )
                    if handled.mutated:
                        # A read-classified request can still fill the
                        # result cache, which snapshots persist.
                        managed.mark_dirty()
                finally:
                    await managed.lock.release_read()
                break
            # Both branches can dirty the session; the cadence check
            # takes the write lock itself when a checkpoint is due.
            await self._maybe_auto_checkpoint(managed)
        finally:
            managed.pins -= 1
        return handled.response

    def _check_overload(self, op: str, payload: dict) -> None:
        """Degraded-mode admission for write-classified query ops.

        Folding one usage sample into the guard per cold admission and
        shedding with ``overloaded`` + a ``retry_after_ms`` hint while
        degraded.  Warm reads and control ops never pass through here —
        in particular ``invalidate``, the op that *frees* memory, must
        stay admissible under pressure.
        """
        if self._overload is None or op not in protocol.QUERY_OPS:
            return
        if self._overload.update(self._memory_used()):
            self._overload.shed()
            raise protocol.RequestError(
                "overloaded",
                "server is degraded under memory pressure; cold queries "
                "are shed (warm reads still answer)",
                retry_after_ms=self._overload.retry_after_ms,
            )

    async def _acquire_session_lock(self, lock, *, write: bool, deadline) -> None:
        """Acquire the session RW lock, bounded by the request deadline.

        A request must not spend its whole deadline parked behind
        another session writer and then start an observe it can no
        longer finish — an expired wait answers ``deadline_exceeded``
        (the lock is *not* held on that path)."""
        acquire = lock.acquire_write() if write else lock.acquire_read()
        if deadline is None:
            await acquire
            return
        remaining = deadline.remaining()
        if remaining <= 0:
            acquire.close()
            resilience.DEADLINE_EXCEEDED.inc()
            raise protocol.RequestError(
                "deadline_exceeded",
                f"deadline of {deadline.deadline_ms:g} ms expired before "
                "the session lock was acquired",
            )
        try:
            await asyncio.wait_for(acquire, timeout=remaining)
        except asyncio.TimeoutError:
            resilience.DEADLINE_EXCEEDED.inc()
            raise protocol.RequestError(
                "deadline_exceeded",
                f"deadline of {deadline.deadline_ms:g} ms expired while "
                "waiting for the session lock",
            ) from None

    def _write_executor(self) -> ThreadPoolExecutor:
        """Dedicated pool for write-classified dispatches.

        Slow observes (cold pool growth) run here instead of the
        default loop executor, so reads always find a free thread even
        while every registered dataset is warming up at once.
        """
        if self._write_pool is None:
            self._write_pool = ThreadPoolExecutor(
                max_workers=self.config.write_threads,
                thread_name_prefix="repro-server-write",
            )
        return self._write_pool

    async def _dispatch_in_executor(
        self, managed, payload, *, write: bool = False, lock_wait: float = 0.0,
        deadline=None,
    ) -> protocol.Handled:
        def stats_extra() -> dict:
            # Built only when dispatch actually serves a stats op —
            # the warm cache-hit path must not pay two registry walks
            # and a metrics snapshot per request.
            return {
                "server": {
                    "metrics": self.metrics.snapshot(),
                    "registry": self.registry.stats(),
                    "inflight": self._inflight,
                    "draining": self._draining,
                    "chaos": (
                        self._chaos.snapshot() if self._chaos else None
                    ),
                    "overload": (
                        self._overload.snapshot() if self._overload else None
                    ),
                }
            }

        return await self._loop.run_in_executor(
            self._write_executor() if write else None,
            lambda: protocol.dispatch(
                managed.session,
                managed.dataset,
                payload,
                checkpoint=(
                    managed.checkpoint
                    if managed.state_path is not None
                    else None
                ),
                stats_extra=stats_extra,
                trace_extra={"server.lock_wait": round(lock_wait, 9)},
                allow_shutdown=False,  # handled at the framing layer
                # run_in_executor does not propagate contextvars — the
                # deadline crosses as an explicit argument and dispatch
                # scopes it on the executor thread itself.
                deadline=deadline,
            ),
        )

    async def _maybe_auto_checkpoint(self, managed) -> None:
        every = self.config.checkpoint_every
        if (
            every <= 0
            or managed.state_path is None
            or managed.dirty < every
        ):
            return
        async with managed.lock.write():
            if managed.dirty < every:
                return  # another writer checkpointed meanwhile
            try:
                # Default executor, not the write pool: while this
                # session's write lock is held, waiting on a write-pool
                # slot occupied by another session's cold observe would
                # stall this session's readers for the whole window.
                await self._loop.run_in_executor(None, managed.checkpoint)
            except Exception:
                # Durability best-effort mid-flight; the drain retries.
                self.metrics.checkpointed(failed=True)
            else:
                self.metrics.checkpointed()

    def _diag_extra(self) -> dict:
        """The server's contribution to a wire ``diag`` bundle."""
        return {
            "metrics": self.metrics.snapshot(),
            "slo": self.slo_tracker.snapshot() if self.slo_tracker else None,
        }

    def _hello_extra(self) -> dict:
        return protocol.hello_fields(
            transport="tcp",
            datasets=list(self.registry.names()),
            default_dataset=self.registry.default_name,
            durable=self.registry.state_dir is not None,
        )

    # ------------------------------------------------------------------
    # Metrics endpoint
    # ------------------------------------------------------------------
    async def _on_metrics_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder: any request gets the metrics text."""
        with contextlib.suppress(Exception):
            await asyncio.wait_for(reader.readline(), timeout=5.0)
        body = self.metrics.render_text().encode()
        writer.write(
            b"HTTP/1.0 200 OK\r\n"
            b"Content-Type: text/plain; version=0.0.4\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        with contextlib.suppress(Exception):
            await writer.drain()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


# ----------------------------------------------------------------------
# Embedding helper (tests, benchmarks, notebooks)
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a daemon thread with its own event loop."""

    def __init__(self, server: StabilityServer, thread: threading.Thread,
                 address: tuple[str, int]):
        self.server = server
        self.thread = thread
        self.address = address

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def metrics_port(self) -> int | None:
        """The bound metrics-endpoint port (``None`` unless configured).

        Resolves ``ServerConfig(metrics_port=0)`` ephemeral binds so
        harnesses (the loadgen soak) can scrape the live endpoint."""
        server = self.server._metrics_server
        if server is None or not server.sockets:
            return None
        return server.sockets[0].getsockname()[1]

    def stop(self, timeout: float = 30.0) -> list[dict]:
        """Drain gracefully and join the serving thread."""
        self.server.request_shutdown()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise TimeoutError("server thread did not drain in time")
        return self.server.drain_report

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        if self.thread.is_alive():
            self.stop()


def serve_in_thread(
    registry: SessionRegistry,
    *,
    config: ServerConfig | None = None,
    metrics: ServerMetrics | None = None,
    start_timeout: float = 30.0,
) -> ServerHandle:
    """Start a :class:`StabilityServer` on a background thread.

    The embedding entrypoint for tests and benchmarks: the caller gets
    the bound address immediately and a handle whose :meth:`~ServerHandle.
    stop` performs the full graceful drain (checkpoint included).
    """
    server = StabilityServer(registry, config=config, metrics=metrics)
    started = threading.Event()
    box: dict = {}

    def runner():
        async def main():
            try:
                box["address"] = await server.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(
        target=runner, name="repro-server", daemon=True
    )
    thread.start()
    if not started.wait(start_timeout):
        raise TimeoutError("server did not start in time")
    if "error" in box:
        raise box["error"]
    return ServerHandle(server, thread, box["address"])
