"""``python -m repro.server HOST:PORT ['{"op": ...}' ...]`` — the CLI client."""

import sys

from repro.server.client import main

if __name__ == "__main__":
    sys.exit(main())
