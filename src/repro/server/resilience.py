"""The resilient-request-path layer: deadlines, retries, overload, chaos.

The serving tier's failure-handling primitives live in one module so
the contract stays coherent across the stack:

- **Deadlines** — a request's optional ``deadline_ms`` field becomes a
  :class:`Deadline` anchored at receipt.  The dispatcher fast-fails
  requests that are already expired (``deadline_exceeded``), and long
  cold observes check the ambient deadline between chunk-plan groups
  (:func:`deadline_scope` / :func:`current_deadline`) — cooperative
  cancellation that keeps every completed chunk in the pool, so a
  retry resumes warm instead of resampling from zero.

- **Retries** — :class:`RetryPolicy` (exponential backoff with full
  jitter, a token retry budget) plus a per-address
  :class:`CircuitBreaker`.  Retries are permitted only for the ops the
  protocol's read/write classifier marks safe (:data:`IDEMPOTENT_OPS`)
  and only on pre-execution rejections (:data:`RETRYABLE_ERROR_CODES`)
  or connection-level failures — never for cursor-consuming
  ``get_next``.

- **Overload degradation** — :class:`OverloadGuard` turns pool+cache
  byte accounting into a degraded-mode state machine with hysteresis:
  above the high watermark the server sheds cold observes with a
  ``Retry-After``-style ``overloaded`` error while warm reads keep
  answering; below ``low_fraction`` of the watermark it recovers.

- **Chaos** — :func:`parse_chaos` grammar
  (``"delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005"``) and the seeded
  deterministic :class:`ChaosInjector` the TCP transport consults per
  request.  Every injected fault is counted and recorded as a
  ``chaos.inject`` flight-recorder event, so retry/deadline/breaker
  paths are *exercised* by loadgen and CI rather than trusted.

The module's counters (:data:`RETRIES`, :data:`DEADLINE_EXCEEDED`,
:data:`CHAOS_INJECTED`) are process-global so self-hosted harnesses
(the chaos soak runs clients and server in one process) see one truth;
:func:`register_resilience_metrics` renders them — plus the
``repro_degraded_mode`` gauge — into a server's Prometheus exposition.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import re
import threading
import time
from dataclasses import dataclass

from repro.obs import log_event
from repro.obs.metrics import Counter, MetricsRegistry

__all__ = [
    "RETRYABLE_ERROR_CODES",
    "IDEMPOTENT_OPS",
    "Deadline",
    "DeadlineExceededError",
    "deadline_scope",
    "current_deadline",
    "RetryPolicy",
    "RetryState",
    "CircuitBreaker",
    "CircuitOpenError",
    "breaker_for",
    "reset_breakers",
    "OverloadGuard",
    "ChaosConfig",
    "ChaosInjector",
    "parse_chaos",
    "parse_size",
    "RETRIES",
    "DEADLINE_EXCEEDED",
    "CHAOS_INJECTED",
    "register_resilience_metrics",
]

#: Structured error codes that mean "the server rejected this request
#: *before executing it*" — safe to retry after backing off.  ``busy``
#: and ``overloaded`` are admission-control sheds, ``shutting_down`` a
#: drain refusal, ``unavailable`` an injected/transient transport fault
#: answered at the framing layer.
RETRYABLE_ERROR_CODES = frozenset(
    {"busy", "shutting_down", "overloaded", "unavailable"}
)

#: Ops the protocol's read/write classification marks safe to repeat:
#: pool-based reads are idempotent at a fixed budget, and the control
#: reads touch no durable state.  ``get_next`` consumes a cursor and is
#: never retried; ``invalidate``/``checkpoint``/``profile`` mutate
#: server state and are excluded too.
IDEMPOTENT_OPS = frozenset(
    {"top_stable", "stability_of", "ping", "hello", "stats", "explain", "diag"}
)


# ----------------------------------------------------------------------
# Process-global resilience counters
# ----------------------------------------------------------------------
RETRIES = Counter(
    "repro_retries_total",
    "Client-side request retries (backoff-and-retry attempts).",
)
DEADLINE_EXCEEDED = Counter(
    "repro_deadline_exceeded_total",
    "Requests answered with deadline_exceeded.",
)
CHAOS_INJECTED = Counter(
    "repro_chaos_injected_total",
    "Faults injected by the chaos middleware.",
)


def register_resilience_metrics(
    registry: MetricsRegistry, *, degraded=None
) -> None:
    """Render the resilience counters (and degraded gauge) on ``registry``.

    The counters are process-global singletons, so a self-hosted
    harness's client-side retries land in the same exposition the
    server scrapes.  Idempotent per registry (attach replaces).
    ``degraded`` is a zero-argument callable returning the current
    degraded-mode truth (``None`` registers a constant-0 gauge so the
    family exists on every server).
    """
    for counter in (RETRIES, DEADLINE_EXCEEDED, CHAOS_INJECTED):
        registry.attach_counter(counter)
    fn = degraded if degraded is not None else (lambda: False)
    registry.register_gauge(
        "repro_degraded_mode",
        lambda: 1.0 if fn() else 0.0,
        help="1 while the server sheds cold observes under memory pressure.",
    )


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class DeadlineExceededError(Exception):
    """A request's deadline expired before (or while) serving it.

    Raised by cooperative cancellation points; the protocol layer maps
    it to the ``deadline_exceeded`` error code.  Work already completed
    (pool samples from finished chunk groups) is kept, so a retry of an
    idempotent read resumes warm.
    """


class Deadline:
    """A wall-deadline anchored on the monotonic clock.

    Built once at request receipt (``deadline_ms`` is *relative* to
    receipt, so client and server clocks never need agreement) and
    threaded — explicitly or via :func:`deadline_scope` — through lock
    waits, dispatch, and the observe path.
    """

    __slots__ = ("deadline_ms", "expires_at")

    def __init__(self, deadline_ms: float, *, expires_at: float | None = None):
        self.deadline_ms = float(deadline_ms)
        self.expires_at = (
            expires_at
            if expires_at is not None
            else time.monotonic() + self.deadline_ms / 1000.0
        )

    @classmethod
    def from_request(cls, payload: dict) -> "Deadline | None":
        """The request's deadline, or ``None`` when it did not name one.

        Assumes the field already passed protocol validation; garbage
        values are ignored rather than raised (defense in depth for
        direct dispatch callers).
        """
        value = payload.get("deadline_ms")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if not value > 0:
            return None
        return cls(value)

    def remaining(self) -> float:
        """Seconds until expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` once the deadline passed."""
        if self.expired():
            raise DeadlineExceededError(
                f"deadline of {self.deadline_ms:g} ms exceeded: {what}"
            )

    def __repr__(self) -> str:
        return f"Deadline({self.deadline_ms:g}ms, {self.remaining():.3f}s left)"


_DEADLINE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient deadline of the request being served (or ``None``)."""
    return _DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` ambient for the duration of the block.

    ``None`` is a no-op scope, so callers can wrap unconditionally.
    The contextvar is set on the *current thread's* context — dispatch
    runs on an executor thread and sets the scope there, which is
    exactly where the observe loop later reads it.
    """
    if deadline is None:
        yield
        return
    token = _DEADLINE.set(deadline)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


# ----------------------------------------------------------------------
# Client-side retry machinery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`~repro.server.client.ServeClient` retries.

    Attributes
    ----------
    max_attempts:
        Total tries per request, the first included.
    base_delay, max_delay:
        Exponential backoff with *full jitter*: attempt ``i`` sleeps
        ``uniform(0, min(max_delay, base_delay * 2**(i-1)))`` seconds
        (a server-supplied ``retry_after_ms`` hint raises the floor).
    budget_tokens, budget_refill:
        Token retry budget: the state starts with ``budget_tokens``,
        each retry spends one, each successful response earns
        ``budget_refill`` back (capped at the start value) — a
        misbehaving dependency degrades to roughly one retry per
        ``1/budget_refill`` successes instead of a retry storm.
    breaker_threshold, breaker_reset:
        Per-address circuit breaker: ``breaker_threshold`` consecutive
        connection-level failures open the circuit; after
        ``breaker_reset`` seconds one half-open probe is allowed.
    seed:
        Seed for the jitter rng (``None``: nondeterministic).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    budget_tokens: float = 16.0
    budget_refill: float = 0.1
    breaker_threshold: int = 5
    breaker_reset: float = 5.0
    seed: int | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.budget_tokens < 0 or self.budget_refill < 0:
            raise ValueError("retry budget values must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset < 0:
            raise ValueError(
                f"breaker_reset must be >= 0, got {self.breaker_reset}"
            )


class RetryState:
    """Per-client mutable retry runtime: jitter rng + token budget."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.rng = random.Random(policy.seed)
        self.tokens = float(policy.budget_tokens)
        self.retries = 0

    def spend(self) -> bool:
        """Take one budget token; ``False`` when the budget is dry."""
        if self.tokens < 1.0:
            return False
        self.tokens -= 1.0
        self.retries += 1
        return True

    def earn(self) -> None:
        """A success pays a fraction of a token back into the budget."""
        self.tokens = min(
            float(self.policy.budget_tokens),
            self.tokens + self.policy.budget_refill,
        )

    def backoff(self, attempt: int, *, retry_after_ms=None) -> float:
        """The sleep before retry number ``attempt`` (full jitter)."""
        policy = self.policy
        cap = min(policy.max_delay, policy.base_delay * (2 ** max(attempt - 1, 0)))
        delay = self.rng.uniform(0.0, cap)
        if isinstance(retry_after_ms, (int, float)) and not isinstance(
            retry_after_ms, bool
        ):
            delay = max(delay, max(float(retry_after_ms), 0.0) / 1000.0)
        return delay


class CircuitOpenError(ConnectionError):
    """The per-address circuit breaker is open; the call failed fast."""


class CircuitBreaker:
    """Closed -> open after N consecutive connection failures -> half-open.

    Tracks *connection-level* failures only: a structured error response
    proves the address is alive, so it resets the streak.  Thread-safe —
    one breaker is shared by every client of an address.
    """

    def __init__(self, threshold: int = 5, reset_after: float = 5.0):
        self.threshold = max(int(threshold), 1)
        self.reset_after = float(reset_after)
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed (transitions open -> half-open)."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at >= self.reset_after:
                    self._state = "half-open"  # one probe
                    return True
                return False
            return False  # half-open: the probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = time.monotonic()


_BREAKERS: dict[tuple[str, int], CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(address: tuple[str, int], policy: RetryPolicy) -> CircuitBreaker:
    """The process-wide breaker of one ``(host, port)`` address.

    Shared across clients so a flapping server trips once, not once per
    connection; the first policy to reference an address sets its
    thresholds.
    """
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(address)
        if breaker is None:
            breaker = _BREAKERS[address] = CircuitBreaker(
                policy.breaker_threshold, policy.breaker_reset
            )
        return breaker


def reset_breakers() -> None:
    """Forget every per-address breaker (test isolation)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


# ----------------------------------------------------------------------
# Overload degradation
# ----------------------------------------------------------------------
class OverloadGuard:
    """Memory-watermark degraded mode with hysteresis.

    ``update(used_bytes)`` is called on every write-classified query
    admission: at or above ``high_bytes`` the server enters degraded
    mode (cold observes shed ``overloaded``; warm reads keep
    answering), and it stays there until usage falls below
    ``low_fraction * high_bytes`` — a band, not a line, so the server
    cannot flap per request at the boundary.  Transitions are logged
    as ``degrade.enter`` / ``degrade.exit`` events.
    """

    def __init__(
        self,
        high_bytes: int,
        *,
        low_fraction: float = 0.8,
        retry_after_ms: float = 500.0,
    ):
        if high_bytes < 1:
            raise ValueError(f"high_bytes must be >= 1, got {high_bytes}")
        if not 0.0 < low_fraction <= 1.0:
            raise ValueError(
                f"low_fraction must be in (0, 1], got {low_fraction}"
            )
        if retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {retry_after_ms}"
            )
        self.high_bytes = int(high_bytes)
        self.low_bytes = int(high_bytes * low_fraction)
        self.retry_after_ms = float(retry_after_ms)
        self._lock = threading.Lock()
        self._degraded = False
        self.transitions = 0
        self.shed_total = 0

    @property
    def degraded(self) -> bool:
        return self._degraded

    def update(self, used_bytes: int) -> bool:
        """Fold one usage sample; returns the (possibly new) state."""
        with self._lock:
            if self._degraded:
                if used_bytes < self.low_bytes:
                    self._degraded = False
                    self.transitions += 1
                    log_event(
                        "degrade.exit",
                        used_bytes=int(used_bytes),
                        low_bytes=self.low_bytes,
                    )
            elif used_bytes >= self.high_bytes:
                self._degraded = True
                self.transitions += 1
                log_event(
                    "degrade.enter",
                    used_bytes=int(used_bytes),
                    high_bytes=self.high_bytes,
                )
            return self._degraded

    def shed(self) -> None:
        with self._lock:
            self.shed_total += 1

    def snapshot(self) -> dict:
        return {
            "degraded": self._degraded,
            "high_bytes": self.high_bytes,
            "low_bytes": self.low_bytes,
            "transitions": self.transitions,
            "shed_total": self.shed_total,
        }


_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "gb": 1 << 30,
    "gib": 1 << 30,
}


def parse_size(text) -> int:
    """``"64mb"`` / ``"512KiB"`` / ``"1073741824"`` -> bytes."""
    if isinstance(text, bool):
        raise ValueError(f"not a size: {text!r}")
    if isinstance(text, (int, float)):
        value, suffix = float(text), ""
    else:
        match = re.fullmatch(
            r"\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*", str(text)
        )
        if match is None:
            raise ValueError(f"not a size: {text!r}")
        value, suffix = float(match.group(1)), match.group(2).lower()
    if suffix not in _SIZE_SUFFIXES:
        raise ValueError(
            f"unknown size suffix {suffix!r} in {text!r} "
            f"(use b/kb/mb/gb)"
        )
    result = int(value * _SIZE_SUFFIXES[suffix])
    if result < 1:
        raise ValueError(f"size must be >= 1 byte, got {text!r}")
    return result


# ----------------------------------------------------------------------
# Chaos middleware
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosConfig:
    """Parsed fault mix of one chaos spec (all probabilities per request)."""

    delay_p: float = 0.0
    delay_ms: float = 100.0
    error_p: float = 0.0
    drop_p: float = 0.0

    def __post_init__(self):
        for name in ("delay_p", "error_p", "drop_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_ms < 0:
            raise ValueError(f"delay ms must be >= 0, got {self.delay_ms}")
        if self.delay_p + self.error_p + self.drop_p > 1.0:
            raise ValueError(
                "fault probabilities sum past 1.0 — at most one fault is "
                "injected per request"
            )

    @property
    def enabled(self) -> bool:
        return (self.delay_p + self.error_p + self.drop_p) > 0.0

    def describe(self) -> str:
        parts = []
        if self.delay_p:
            parts.append(f"delay:p={self.delay_p:g},ms={self.delay_ms:g}")
        if self.error_p:
            parts.append(f"error:p={self.error_p:g}")
        if self.drop_p:
            parts.append(f"drop:p={self.drop_p:g}")
        return ";".join(parts) or "off"


_CHAOS_KEYS = {
    "delay": {"p", "ms"},
    "error": {"p"},
    "drop": {"p"},
}


def parse_chaos(spec: str) -> ChaosConfig:
    """``"delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005"`` -> config.

    Grammar: ``;``-separated fault clauses, each ``kind:key=value[,
    key=value]``.  Kinds are ``delay`` (keys ``p``, ``ms``), ``error``
    (``p``), ``drop`` (``p``).  Repeating a kind, an unknown kind, or
    an unknown key raises ``ValueError`` — a chaos spec typo must fail
    server start, not silently inject nothing.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("chaos spec must be a non-empty string")
    fields: dict[str, float] = {}
    seen: set[str] = set()
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, colon, body = clause.partition(":")
        kind = kind.strip().lower()
        if kind not in _CHAOS_KEYS:
            raise ValueError(
                f"unknown chaos fault {kind!r} (use delay/error/drop)"
            )
        if kind in seen:
            raise ValueError(f"chaos fault {kind!r} given twice")
        seen.add(kind)
        if not colon or not body.strip():
            raise ValueError(f"chaos fault {kind!r} needs key=value settings")
        for item in body.split(","):
            key, eq, raw = item.partition("=")
            key = key.strip().lower()
            if not eq or key not in _CHAOS_KEYS[kind]:
                raise ValueError(
                    f"chaos fault {kind!r} does not understand {item.strip()!r}"
                )
            try:
                value = float(raw.strip())
            except ValueError:
                raise ValueError(
                    f"chaos setting {kind}:{key} needs a number, got "
                    f"{raw.strip()!r}"
                ) from None
            fields[f"{kind}_{key}" if key != "p" else f"{kind}_p"] = value
    if not fields:
        raise ValueError("chaos spec names no faults")
    return ChaosConfig(**fields)


@dataclass(frozen=True)
class ChaosFault:
    """One injection decision: ``kind`` is delay / error / drop."""

    kind: str
    delay_s: float = 0.0


class ChaosInjector:
    """Seeded deterministic fault injector for the transport layer.

    One uniform draw per request, split by cumulative probability into
    drop / error / delay bands — the fault sequence is a pure function
    of the seed and the request arrival order.  ``shutdown`` is never
    injected (the drain path must stay drivable), and every injection
    bumps :data:`CHAOS_INJECTED` and emits a ``chaos.inject``
    flight-recorder event.
    """

    def __init__(self, config: ChaosConfig, *, seed: int = 0):
        self.config = config
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.injected = {"delay": 0, "error": 0, "drop": 0}

    def decide(self, op) -> ChaosFault | None:
        """The fault for one arriving request, or ``None`` (most of them)."""
        config = self.config
        if not config.enabled or op == "shutdown":
            return None
        draw = self._rng.random()
        if draw < config.drop_p:
            fault = ChaosFault("drop")
        elif draw < config.drop_p + config.error_p:
            fault = ChaosFault("error")
        elif draw < config.drop_p + config.error_p + config.delay_p:
            fault = ChaosFault("delay", delay_s=config.delay_ms / 1000.0)
        else:
            return None
        self.injected[fault.kind] += 1
        CHAOS_INJECTED.inc()
        log_event("chaos.inject", kind=fault.kind, op=op)
        return fault

    def snapshot(self) -> dict:
        return {
            "spec": self.config.describe(),
            "seed": self.seed,
            "injected": dict(self.injected),
        }
