"""The session registry: shared, durable serving state behind the server.

One :class:`~repro.service.StabilitySession` per *named dataset*, shared
by every connection — which is the whole point of the network front-end:
the Monte-Carlo pools, enumeration cursors, k-skyband index, and result
cache a session accumulates become reachable by every client instead of
exactly one stdio process.

Concurrency model
-----------------
Each managed session carries an :class:`AsyncRWLock`:

- **reads** (warm-pool ``top_stable`` / ``stability_of``, ``stats``)
  interleave freely — they only look at the cumulative pool and the
  thread-safe result cache;
- **writes** (``get_next`` cursor advances, pool growth, invalidation,
  checkpointing) hold the lock exclusively, so one observe pass grows a
  pool exactly once no matter how many clients asked for it — the
  second writer finds the pool at target and answers without sampling.

The classification lives in :func:`repro.server.protocol.needs_write`;
misclassification toward "write" costs parallelism, never correctness.

Durability
----------
With a ``state_dir`` the registry is the rolling-restart story: cold
sessions are restored from their snapshot on first access, dirty
sessions are checkpointed on eviction and on drain, and snapshot files
are named by dataset fingerprint + region (the same scheme as
``cli.py serve --state-dir``), so a stdio server, a TCP server, and the
``snapshot``/``restore`` commands all share warm state.
"""

from __future__ import annotations

import asyncio
import zlib
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.region import FullSpace, RegionOfInterest
from repro.errors import SnapshotError
from repro.obs import log_event
from repro.service.cache import dataset_fingerprint
from repro.service.session import StabilitySession

__all__ = [
    "AsyncRWLock",
    "ManagedSession",
    "SessionRegistry",
    "snapshot_path_for",
]


def snapshot_path_for(state_dir, dataset: Dataset, region) -> Path:
    """The durable snapshot path of one ``(dataset, region)`` identity.

    The filename carries the full serving identity — dataset
    fingerprint *and* region — so serving the same data under a
    different region of interest warms its own snapshot instead of
    fighting over one file.  Shared by ``cli.py serve --state-dir`` and
    the TCP registry, which is what makes a stdio-warmed snapshot a
    valid TCP warm start (and vice versa).
    """
    region_tag = f"{zlib.crc32(repr(region).encode()):08x}"
    return Path(state_dir) / f"{dataset_fingerprint(dataset)}-{region_tag}.snap"


class AsyncRWLock:
    """A writer-preferring asyncio read/write lock.

    Any number of readers hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers (no writer
    starvation), which matters here because pool-growth writes are what
    turn a cold dataset warm — a stream of cheap cache-hit reads must
    not postpone them forever.
    """

    def __init__(self):
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @property
    def idle(self) -> bool:
        """Nobody holds or awaits the lock (safe-to-evict probe)."""
        return (
            self._readers == 0
            and not self._writer
            and self._writers_waiting == 0
        )

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer = False
            self._cond.notify_all()

    @asynccontextmanager
    async def read(self):
        await self.acquire_read()
        try:
            yield self
        finally:
            await self.release_read()

    @asynccontextmanager
    async def write(self):
        await self.acquire_write()
        try:
            yield self
        finally:
            await self.release_write()


@dataclass
class ManagedSession:
    """One activated session plus its serving bookkeeping."""

    name: str
    dataset: Dataset
    region: RegionOfInterest
    session: StabilitySession
    lock: AsyncRWLock = field(default_factory=AsyncRWLock)
    state_path: Path | None = None
    #: Write-ish requests since the last successful checkpoint.
    dirty: int = 0
    #: Whether activation restored a snapshot (observability).
    restored: bool = False
    #: Monotone use counter (LRU eviction order).
    last_used: int = 0
    #: Requests currently holding a reference to this session (event
    #: loop only).  A session handed out by :meth:`SessionRegistry.get`
    #: but not yet locked is invisible to ``lock.idle``; the pin keeps
    #: eviction from closing it out from under that request.
    pins: int = 0

    def mark_dirty(self) -> None:
        self.dirty += 1

    def checkpoint(self) -> dict | None:
        """Durably snapshot the session now (blocking; call off-loop).

        Returns ``{"path", "bytes"}``, or ``None`` when not durable.
        Resets the dirty counter on success.
        """
        if self.state_path is None:
            return None
        info = self.session.save(self.state_path)
        self.dirty = 0
        return {"path": info.path, "bytes": info.file_bytes}


class SessionRegistry:
    """Named datasets -> shared sessions, with restore/evict lifecycle.

    Parameters
    ----------
    state_dir:
        Directory of durable snapshots (``None`` serves non-durably).
    max_active:
        Soft cap on concurrently materialised sessions.  Activating a
        session beyond the cap evicts the least-recently-used *idle*
        session — checkpointing it first when durable — so a server
        over many datasets bounds its memory by warm working set, not
        catalogue size.
    seed, budget, parallel, executor, max_workers, start_method, \
cache_size, kernel, sampling:
        Cold-start session parameters (see
        :class:`~repro.service.StabilitySession`).  ``budget`` accepts
        a sample count or a ``"ci:WIDTH[@MAX]"`` precision spec;
        ``kernel`` picks the reduction backend for every session
        (runtime-only, also applied to restores).  Restored sessions
        take their durable identity from the snapshot instead;
        ``executor="process"`` gives every session a persistent
        shared-memory worker pool, so pool-growth writes run
        out-of-process and the event loop (and warm reads on other
        datasets) stay responsive under cold-observe load.
    """

    def __init__(
        self,
        *,
        state_dir=None,
        max_active: int = 8,
        seed: int = 0,
        budget: int | str | None = None,
        parallel: bool | str = "auto",
        executor: str | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        cache_size: int = 512,
        kernel: str | None = None,
        sampling: str = "mc",
    ):
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self.max_active = max(1, int(max_active))
        self.seed = seed
        self.budget = budget
        self.parallel = parallel
        self.executor = executor
        self.max_workers = max_workers
        self.start_method = start_method
        self.cache_size = cache_size
        self.kernel = kernel
        self.sampling = sampling
        self._datasets: dict[str, tuple[Dataset, RegionOfInterest]] = {}
        self._active: dict[str, ManagedSession] = {}
        self._mutex = asyncio.Lock()
        # Per-dataset activation locks: a slow snapshot restore must
        # stall only requests for *that* dataset, never warm traffic
        # on the others (the registry mutex is held for map updates
        # only, not across the blocking open).
        self._opening: dict[str, asyncio.Lock] = {}
        self._use_counter = 0
        self._default_name: str | None = None
        self.evictions = 0
        self.restores = 0
        #: Optional zero-argument eviction hook (the server wires its
        #: metrics counter here; the registry stays transport-agnostic).
        self.on_evict = None

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def add_dataset(
        self,
        name: str,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
    ) -> None:
        """Register a dataset under ``name`` (first one becomes default)."""
        if not name or not isinstance(name, str):
            raise ValueError(f"dataset name must be a non-empty string, got {name!r}")
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} is already registered")
        self._datasets[name] = (
            dataset,
            region if region is not None else FullSpace(dataset.n_attributes),
        )
        if self._default_name is None:
            self._default_name = name

    def names(self) -> tuple[str, ...]:
        return tuple(self._datasets)

    @property
    def default_name(self) -> str | None:
        return self._default_name

    # ------------------------------------------------------------------
    # Activation / eviction
    # ------------------------------------------------------------------
    def _open(self, name: str) -> ManagedSession:
        """Materialise one session (blocking: restore can do real work)."""
        dataset, region = self._datasets[name]
        state_path = (
            snapshot_path_for(self.state_dir, dataset, region)
            if self.state_dir is not None
            else None
        )
        session = None
        restored = False
        if state_path is not None and state_path.exists():
            try:
                session = StabilitySession.restore(
                    state_path,
                    dataset,
                    region=region,
                    cache_size=self.cache_size,
                    parallel=self.parallel,
                    executor=self.executor,
                    max_workers=self.max_workers,
                    start_method=self.start_method,
                    kernel=self.kernel,
                )
                restored = True
                self.restores += 1
                log_event(
                    "session.restore",
                    dataset=name,
                    path=str(state_path),
                    configs=len(session._states),
                )
            except SnapshotError:
                # A snapshot that cannot be trusted costs the warmth,
                # never the server; the next checkpoint overwrites it.
                session = None
        if session is None:
            session = StabilitySession(
                dataset,
                region=region,
                seed=self.seed,
                budget=self.budget,
                cache_size=self.cache_size,
                parallel=self.parallel,
                executor=self.executor,
                max_workers=self.max_workers,
                start_method=self.start_method,
                kernel=self.kernel,
                sampling=self.sampling,
            )
        return ManagedSession(
            name=name,
            dataset=dataset,
            region=region,
            session=session,
            state_path=state_path,
            restored=restored,
        )

    def _touch(self, managed: ManagedSession) -> ManagedSession:
        self._use_counter += 1
        managed.last_used = self._use_counter
        return managed

    async def get(self, name: str | None = None) -> ManagedSession:
        """The managed session for ``name`` (activate/restore lazily).

        Raises :class:`KeyError` for unregistered names.  May evict the
        least-recently-used *idle, unpinned* session beyond
        ``max_active``.
        """
        if name is None:
            name = self._default_name
        if name not in self._datasets:
            raise KeyError(name)
        loop = asyncio.get_running_loop()
        async with self._mutex:
            managed = self._active.get(name)
            if managed is not None:
                return self._touch(managed)
        # Cold: serialize activation per dataset, off the global mutex.
        opening = self._opening.setdefault(name, asyncio.Lock())
        async with opening:
            async with self._mutex:
                managed = self._active.get(name)
                if managed is not None:  # raced another activator
                    return self._touch(managed)
            managed = await loop.run_in_executor(None, self._open, name)
            async with self._mutex:
                self._active[name] = managed
                self._touch(managed)
                victims = self._select_victims(keep=name)
            # Eviction checkpoints happen *off* the registry mutex — a
            # multi-second snapshot of the victim must stall only this
            # activation, never warm traffic on other datasets.
            await self._evict(loop, victims)
            return managed

    async def prewarm(self) -> list[str]:
        """Activate every dataset whose snapshot already exists on disk.

        The rolling-restart half-step between bind and serve: snapshot
        replay happens *before* the first request arrives, so a
        restarted server's first answer is a cache hit, not a restore.
        Returns the names restored (capped by ``max_active``).
        """
        warmed = []
        for name in self._datasets:
            if len(self._active) >= self.max_active:
                break
            dataset, region = self._datasets[name]
            if self.state_dir is None or not snapshot_path_for(
                self.state_dir, dataset, region
            ).exists():
                continue
            managed = await self.get(name)
            if managed.restored:
                warmed.append(name)
        return warmed

    def _select_victims(self, keep: str) -> list[ManagedSession]:
        """Pick (and pin) the idle LRU sessions beyond ``max_active``.

        Runs under the registry mutex; the pin keeps a selected victim
        from being chosen twice while its checkpoint runs off-mutex.
        When every candidate is busy the registry stays over cap
        rather than block — selection is one pass, never a spin.
        """
        over = len(self._active) - self.max_active
        if over <= 0:
            return []
        candidates = sorted(
            (
                m
                for m in self._active.values()
                if m.name != keep and m.lock.idle and m.pins == 0
            ),
            key=lambda m: m.last_used,
        )
        victims = candidates[:over]
        for victim in victims:
            victim.pins += 1
        return victims

    async def _evict(self, loop, victims: list[ManagedSession]) -> None:
        """Checkpoint and release pinned victims (mutex *not* held).

        Each victim's write lock is taken around the save, so a
        request that re-acquired the session meanwhile can never
        mutate a pool mid-snapshot.  A victim whose checkpoint fails —
        or that came back into use — simply stays resident: losing
        warmth is acceptable, losing the server (or snapshot
        integrity) is not.
        """
        for victim in victims:
            try:
                async with victim.lock.write():
                    if victim.dirty and victim.state_path is not None:
                        try:
                            await loop.run_in_executor(
                                None, victim.checkpoint
                            )
                        except Exception:
                            continue  # unsaveable: stays resident
                    async with self._mutex:
                        if (
                            self._active.get(victim.name) is victim
                            and victim.pins == 1  # nobody else holds it
                        ):
                            victim.session.close()
                            del self._active[victim.name]
                            self.evictions += 1
                            log_event(
                                "session.evict",
                                dataset=victim.name,
                                durable=victim.state_path is not None,
                            )
                            if self.on_evict is not None:
                                self.on_evict()
            finally:
                victim.pins -= 1

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint_dirty_sync(self) -> list[dict]:
        """Checkpoint every dirty durable session (blocking).

        The drain path calls this once all in-flight writes finished;
        per-session failures are reported, not raised — one read-only
        filesystem must not abort the rest of the drain.
        """
        saved = []
        for managed in list(self._active.values()):
            if managed.state_path is None or managed.dirty == 0:
                continue
            try:
                info = managed.checkpoint()
            except Exception as exc:
                saved.append(
                    {
                        "dataset": managed.name,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            saved.append({"dataset": managed.name, **(info or {})})
        return saved

    def close_sync(self) -> list[dict]:
        """Checkpoint dirty sessions, then release every session.

        The caller must guarantee no request is still executing
        against any session (drivers with in-flight work use
        :meth:`close`, which serializes against the session locks).
        """
        saved = self.checkpoint_dirty_sync()
        for managed in list(self._active.values()):
            managed.session.close()
        self._active.clear()
        return saved

    async def close(self, *, grace: float = 30.0) -> list[dict]:
        """Drain-safe shutdown: checkpoint under each session's write
        lock, then release everything.

        A request that is still executing when the drain deadline
        passes holds its session lock; waiting up to ``grace`` seconds
        for it keeps the snapshot consistent (a save never interleaves
        with an observe pass).  On timeout that session's checkpoint is
        *skipped* and reported — losing warmth is acceptable, a torn
        snapshot restoring wrong stability estimates is not.
        """
        loop = asyncio.get_running_loop()
        saved: list[dict] = []
        log_event(
            "server.drain",
            sessions=len(self._active),
            grace=grace,
            durable=self.state_dir is not None,
        )
        for managed in list(self._active.values()):
            try:
                await asyncio.wait_for(
                    managed.lock.acquire_write(), timeout=max(grace, 0.001)
                )
            except asyncio.TimeoutError:
                # A straggler past the drain deadline keeps its session:
                # closing (or snapshotting) under its feet would race
                # still-executing work.  The process is exiting anyway —
                # it loses durability for this session, not integrity.
                if managed.state_path is not None and managed.dirty:
                    saved.append(
                        {
                            "dataset": managed.name,
                            "error": "still executing at the drain "
                            "deadline; checkpoint skipped to keep the "
                            "snapshot consistent",
                        }
                    )
                self._active.pop(managed.name, None)
                continue
            try:
                if managed.state_path is not None and managed.dirty:
                    try:
                        info = await loop.run_in_executor(
                            None, managed.checkpoint
                        )
                    except Exception as exc:
                        saved.append(
                            {
                                "dataset": managed.name,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                        )
                    else:
                        saved.append({"dataset": managed.name, **(info or {})})
                await loop.run_in_executor(None, managed.session.close)
            finally:
                await managed.lock.release_write()
            self._active.pop(managed.name, None)
        return saved

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Registry-level serving state (one section of the stats op)."""
        return {
            "datasets": list(self._datasets),
            "default": self._default_name,
            "active": {
                name: self._session_stats(managed)
                # Snapshot first: stats() runs on executor threads
                # while the event loop activates/evicts concurrently.
                for name, managed in list(self._active.items())
            },
            "max_active": self.max_active,
            "evictions": self.evictions,
            "restores": self.restores,
        }

    @staticmethod
    def _session_stats(managed: ManagedSession) -> dict:
        """One active session's serving identity and cache behaviour."""
        sstats = managed.session.stats()
        return {
            "dirty": managed.dirty,
            "restored": managed.restored,
            "durable": managed.state_path is not None,
            "configs": len(managed.session._states),
            "uptime_seconds": sstats["uptime_seconds"],
            "executor": sstats["executor"],
            "kernel": sstats["kernel"],
            "sampling": sstats["sampling"],
            "cache_hit_rate": sstats["cache_session"]["hit_rate"],
            "pool_samples": sum(
                pool.get("total_samples", 0)
                for pool in sstats["configs"].values()
            ),
            "pool_bytes": sstats["pool_bytes"],
        }

    def __repr__(self) -> str:
        return (
            f"SessionRegistry(datasets={len(self._datasets)}, "
            f"active={len(self._active)}, "
            f"durable={self.state_dir is not None})"
        )
