"""A blocking JSON-lines client for the TCP server.

Deliberately dependency-free and synchronous: benchmarks drive it from
plain threads, tests from pytest functions, and operators from one-off
scripts (``python -m repro.server.client HOST:PORT '{"op": "ping"}'``).

With ``retry=RetryPolicy(...)`` (or ``retry=True`` for defaults) the
client becomes resilient: pre-execution rejections (``busy``,
``shutting_down``, ``overloaded``, ``unavailable``) and connection-level
failures are retried with exponential backoff + full jitter under a
token retry budget and a per-address circuit breaker — but only for
idempotent ops; a ``get_next`` consumes a cursor and is never retried.

>>> from repro.server.client import ServeClient     # doctest: +SKIP
>>> with ServeClient("127.0.0.1:7701") as client:   # doctest: +SKIP
...     client.hello()["protocol"]
...     client.top_stable(3, kind="topk_set", k=10, budget=5000)
"""

from __future__ import annotations

import json
import socket
import sys
import time

from repro.server.resilience import (
    IDEMPOTENT_OPS,
    RETRIES,
    RETRYABLE_ERROR_CODES,
    CircuitOpenError,
    RetryPolicy,
    RetryState,
    breaker_for,
)

__all__ = [
    "ServeClient",
    "ServerClosedError",
    "RequestTimeoutError",
    "parse_hostport",
]

#: Slack added on top of a request's ``deadline_ms`` when deriving its
#: socket timeout — the server is allowed the full deadline plus one
#: network round trip to answer ``deadline_exceeded`` itself.
DEADLINE_SLACK_S = 1.0


class ServerClosedError(ConnectionError):
    """The server closed the connection before answering."""


class RequestTimeoutError(ConnectionError):
    """No response within the socket timeout; the connection was closed.

    A timeout mid-response desynchronizes the reply stream, so the
    socket cannot be reused — reconnect (the retry machinery does this
    automatically for idempotent ops).
    """


def parse_hostport(text: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``"HOST:PORT"`` / ``":PORT"`` / ``"PORT"`` -> ``(host, port)``."""
    text = str(text).strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
        host = host or default_host
    else:
        host, port = default_host, text
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"expected HOST:PORT, :PORT or PORT, got {text!r}"
        ) from None


class ServeClient:
    """One blocking connection speaking the JSON-lines protocol.

    Parameters
    ----------
    address:
        ``"HOST:PORT"`` (or ``(host, port)`` via ``host=``/``port=``).
    timeout:
        Per-response socket timeout in seconds.  A request carrying
        ``deadline_ms`` tightens this to the deadline plus
        :data:`DEADLINE_SLACK_S` for that response, so a stalled server
        can never hold the client past the budget it granted.
    connect_retries, retry_delay:
        Connection attempts before giving up — a client racing a
        freshly exec'd server (the CI smoke job, rolling restarts)
        retries instead of failing on the first ECONNREFUSED.
    retry:
        ``None`` (default): no retries — every failure surfaces.  A
        :class:`~repro.server.resilience.RetryPolicy` (or ``True`` for
        the defaults) enables backoff-and-retry for idempotent ops.
    """

    def __init__(
        self,
        address: str | None = None,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 120.0,
        connect_retries: int = 40,
        retry_delay: float = 0.25,
        retry: RetryPolicy | bool | None = None,
    ):
        if address is not None:
            host, port = parse_hostport(address)
        if host is None or port is None:
            raise ValueError("give address='HOST:PORT' or host= and port=")
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self._connect_retries = max(1, connect_retries)
        self._retry_delay = retry_delay
        if retry is True:
            retry = RetryPolicy()
        self.retry = retry if isinstance(retry, RetryPolicy) else None
        self._retry_state = (
            RetryState(self.retry) if self.retry is not None else None
        )
        self._breaker = (
            breaker_for((self.host, self.port), self.retry)
            if self.retry is not None
            else None
        )
        self._sock: socket.socket | None = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the connection, with ECONNREFUSED patience."""
        last_error: Exception | None = None
        for attempt in range(self._connect_retries):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if attempt + 1 < self._connect_retries:  # no dead tail wait
                    time.sleep(self._retry_delay)
        else:
            raise ConnectionError(
                f"cannot connect to {self.host}:{self.port}: {last_error}"
            )
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        """Close the (possibly desynchronized) socket, keeping the client
        reusable via :meth:`_connect`."""
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    # ------------------------------------------------------------------
    def send(self, payload: dict) -> None:
        """Frame and send one request without waiting for its response.

        Pairs with :meth:`recv` for pipelining: write a batch of frames
        back-to-back, then read the responses in order (the server
        answers one line per request, in request order per connection).
        """
        if self._file is None:
            raise ServerClosedError(
                f"connection to {self.host}:{self.port} is closed"
            )
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()

    def recv(self) -> dict:
        """Block for the next response line."""
        if self._file is None:
            raise ServerClosedError(
                f"connection to {self.host}:{self.port} is closed"
            )
        line = self._file.readline()
        if not line:
            raise ServerClosedError(
                f"{self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def request(self, payload: dict) -> dict:
        """Send one request object, block for its response object.

        With a retry policy configured, retryable failures of
        idempotent ops are transparently retried (backoff, budget,
        breaker); the returned response is the final one either way.
        """
        if self.retry is None:
            return self._request_once(payload)
        return self._request_with_retry(payload)

    def _request_once(self, payload: dict) -> dict:
        """One send/recv round trip with the deadline-derived timeout."""
        per_request = None
        deadline_ms = payload.get("deadline_ms")
        if (
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool)
            and deadline_ms > 0
        ):
            per_request = min(
                self.timeout, deadline_ms / 1000.0 + DEADLINE_SLACK_S
            )
        if per_request is not None and self._sock is not None:
            self._sock.settimeout(per_request)
        try:
            self.send(payload)
            return self.recv()
        except socket.timeout:
            # The reply stream is now ambiguous (the response may land
            # later); the socket is unusable.
            self._drop_connection()
            raise RequestTimeoutError(
                f"no response from {self.host}:{self.port} within "
                f"{per_request if per_request is not None else self.timeout:g}s"
            ) from None
        finally:
            if per_request is not None and self._sock is not None:
                self._sock.settimeout(self.timeout)

    def _request_with_retry(self, payload: dict) -> dict:
        op = payload.get("op")
        state = self._retry_state
        overall = None
        deadline_ms = payload.get("deadline_ms")
        if (
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool)
            and deadline_ms > 0
        ):
            overall = time.monotonic() + deadline_ms / 1000.0
        attempt = 1
        while True:
            if not self._breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port}"
                )
            try:
                response = self._request_once(payload)
            except (ConnectionError, OSError) as exc:
                # Ambiguous: the request may or may not have executed.
                # Only idempotent ops may be retried from here.
                self._breaker.record_failure()
                self._drop_connection()
                if not self._may_retry(op, attempt, overall):
                    raise
                self._sleep_backoff(state.backoff(attempt), overall)
                attempt += 1
                try:
                    self._connect()
                except ConnectionError:
                    self._breaker.record_failure()
                    raise
                continue
            # The server answered — whatever the answer says, the
            # address is alive.
            self._breaker.record_success()
            error = (
                response.get("error") if isinstance(response, dict) else None
            )
            code = error.get("code") if isinstance(error, dict) else None
            if code in RETRYABLE_ERROR_CODES and self._may_retry(
                op, attempt, overall
            ):
                # A structured pre-execution rejection: the request was
                # not executed, so backing off and retrying is safe.
                self._sleep_backoff(
                    state.backoff(
                        attempt, retry_after_ms=error.get("retry_after_ms")
                    ),
                    overall,
                )
                attempt += 1
                continue
            if isinstance(response, dict) and response.get("ok"):
                state.earn()
            return response

    def _may_retry(self, op, attempt: int, overall: float | None) -> bool:
        """Decide-and-spend: a True also consumed one budget token."""
        if op not in IDEMPOTENT_OPS:
            return False
        if attempt >= self.retry.max_attempts:
            return False
        if overall is not None and time.monotonic() >= overall:
            return False
        if not self._retry_state.spend():
            return False
        RETRIES.inc()
        return True

    @staticmethod
    def _sleep_backoff(delay: float, overall: float | None) -> None:
        if overall is not None:
            delay = min(delay, max(overall - time.monotonic(), 0.0))
        if delay > 0:
            time.sleep(delay)

    def request_raw(self, line: bytes) -> dict:
        """Send pre-framed bytes verbatim (protocol tests send garbage)."""
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ServerClosedError(
                f"{self.host}:{self.port} closed the connection"
            )
        return json.loads(response)

    # -- control ops ---------------------------------------------------
    def hello(self) -> dict:
        return self.request({"op": "hello"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self, **fields) -> dict:
        return self.request({"op": "stats", **fields})

    def explain(self, query: dict, **fields) -> dict:
        """Plan a query without executing it (``explain`` op)."""
        return self.request({"op": "explain", "query": dict(query), **fields})

    def invalidate(self, **fields) -> dict:
        return self.request({"op": "invalidate", **fields})

    def checkpoint(self, **fields) -> dict:
        return self.request({"op": "checkpoint", **fields})

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (responds before draining)."""
        return self.request({"op": "shutdown"})

    def diag(self, **fields) -> dict:
        """Fetch the server's flight-recorder diag bundle (``diag`` op)."""
        return self.request({"op": "diag", **fields})

    def profile(self, action: str = "status", **fields) -> dict:
        """Drive the server's sampling profiler (``profile`` op).

        ``action`` is ``"start"`` (optional ``hz=``), ``"stop"``
        (returns collapsed stacks), or ``"status"``.
        """
        return self.request({"op": "profile", "action": action, **fields})

    # -- query ops -----------------------------------------------------
    def get_next(self, **fields) -> dict:
        return self.request({"op": "get_next", **fields})

    def top_stable(self, m: int, **fields) -> dict:
        return self.request({"op": "top_stable", "m": m, **fields})

    def stability_of(self, ranking, **fields) -> dict:
        return self.request(
            {"op": "stability_of", "ranking": list(ranking), **fields}
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host}:{self.port})"


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.server.client HOST:PORT ['{"op": ...}' ...]``.

    With no request arguments, sends ``hello``.  Each response prints
    as one JSON line; the exit code is 0 iff every response was ok.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            'usage: python -m repro.server.client HOST:PORT [\'{"op": ...}\' ...]',
            file=sys.stderr,
        )
        return 2
    address, *raw_requests = argv
    requests = [json.loads(raw) for raw in raw_requests] or [{"op": "hello"}]
    all_ok = True
    with ServeClient(address) as client:
        for request in requests:
            response = client.request(request)
            all_ok = all_ok and bool(response.get("ok"))
            print(json.dumps(response))
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
