"""A blocking JSON-lines client for the TCP server.

Deliberately dependency-free and synchronous: benchmarks drive it from
plain threads, tests from pytest functions, and operators from one-off
scripts (``python -m repro.server.client HOST:PORT '{"op": "ping"}'``).

>>> from repro.server.client import ServeClient     # doctest: +SKIP
>>> with ServeClient("127.0.0.1:7701") as client:   # doctest: +SKIP
...     client.hello()["protocol"]
...     client.top_stable(3, kind="topk_set", k=10, budget=5000)
"""

from __future__ import annotations

import json
import socket
import sys
import time

__all__ = ["ServeClient", "ServerClosedError", "parse_hostport"]


class ServerClosedError(ConnectionError):
    """The server closed the connection before answering."""


def parse_hostport(text: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``"HOST:PORT"`` / ``":PORT"`` / ``"PORT"`` -> ``(host, port)``."""
    text = str(text).strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
        host = host or default_host
    else:
        host, port = default_host, text
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"expected HOST:PORT, :PORT or PORT, got {text!r}"
        ) from None


class ServeClient:
    """One blocking connection speaking the JSON-lines protocol.

    Parameters
    ----------
    address:
        ``"HOST:PORT"`` (or ``(host, port)`` via ``host=``/``port=``).
    timeout:
        Per-response socket timeout in seconds.
    connect_retries, retry_delay:
        Connection attempts before giving up — a client racing a
        freshly exec'd server (the CI smoke job, rolling restarts)
        retries instead of failing on the first ECONNREFUSED.
    """

    def __init__(
        self,
        address: str | None = None,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 120.0,
        connect_retries: int = 40,
        retry_delay: float = 0.25,
    ):
        if address is not None:
            host, port = parse_hostport(address)
        if host is None or port is None:
            raise ValueError("give address='HOST:PORT' or host= and port=")
        self.host, self.port = host, int(port)
        last_error: Exception | None = None
        attempts = max(1, connect_retries)
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:  # no dead wait after the last try
                    time.sleep(retry_delay)
        else:
            raise ConnectionError(
                f"cannot connect to {self.host}:{self.port}: {last_error}"
            )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def send(self, payload: dict) -> None:
        """Frame and send one request without waiting for its response.

        Pairs with :meth:`recv` for pipelining: write a batch of frames
        back-to-back, then read the responses in order (the server
        answers one line per request, in request order per connection).
        """
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()

    def recv(self) -> dict:
        """Block for the next response line."""
        line = self._file.readline()
        if not line:
            raise ServerClosedError(
                f"{self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def request(self, payload: dict) -> dict:
        """Send one request object, block for its response object."""
        self.send(payload)
        return self.recv()

    def request_raw(self, line: bytes) -> dict:
        """Send pre-framed bytes verbatim (protocol tests send garbage)."""
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ServerClosedError(
                f"{self.host}:{self.port} closed the connection"
            )
        return json.loads(response)

    # -- control ops ---------------------------------------------------
    def hello(self) -> dict:
        return self.request({"op": "hello"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self, **fields) -> dict:
        return self.request({"op": "stats", **fields})

    def explain(self, query: dict, **fields) -> dict:
        """Plan a query without executing it (``explain`` op)."""
        return self.request({"op": "explain", "query": dict(query), **fields})

    def invalidate(self, **fields) -> dict:
        return self.request({"op": "invalidate", **fields})

    def checkpoint(self, **fields) -> dict:
        return self.request({"op": "checkpoint", **fields})

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (responds before draining)."""
        return self.request({"op": "shutdown"})

    def diag(self, **fields) -> dict:
        """Fetch the server's flight-recorder diag bundle (``diag`` op)."""
        return self.request({"op": "diag", **fields})

    def profile(self, action: str = "status", **fields) -> dict:
        """Drive the server's sampling profiler (``profile`` op).

        ``action`` is ``"start"`` (optional ``hz=``), ``"stop"``
        (returns collapsed stacks), or ``"status"``.
        """
        return self.request({"op": "profile", "action": action, **fields})

    # -- query ops -----------------------------------------------------
    def get_next(self, **fields) -> dict:
        return self.request({"op": "get_next", **fields})

    def top_stable(self, m: int, **fields) -> dict:
        return self.request({"op": "top_stable", "m": m, **fields})

    def stability_of(self, ranking, **fields) -> dict:
        return self.request(
            {"op": "stability_of", "ranking": list(ranking), **fields}
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host}:{self.port})"


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.server.client HOST:PORT ['{"op": ...}' ...]``.

    With no request arguments, sends ``hello``.  Each response prints
    as one JSON line; the exit code is 0 iff every response was ok.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            'usage: python -m repro.server.client HOST:PORT [\'{"op": ...}\' ...]',
            file=sys.stderr,
        )
        return 2
    address, *raw_requests = argv
    requests = [json.loads(raw) for raw in raw_requests] or [{"op": "hello"}]
    all_ok = True
    with ServeClient(address) as client:
        for request in requests:
            response = client.request(request)
            all_ok = all_ok and bool(response.get("ok"))
            print(json.dumps(response))
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
