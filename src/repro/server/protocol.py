"""The versioned JSON-lines serving protocol, shared by stdio and TCP.

One request per line, one response per line.  A request is a JSON
object with an ``"op"`` field; everything else is op-specific.  Two
protocol-level fields are understood on every request:

- ``"id"`` — an opaque client token echoed verbatim in the response
  (lets pipelining clients correlate responses);
- ``"dataset"`` — the registry name of the dataset to serve (TCP
  multi-dataset serving; stdio serves exactly one and ignores it);
- ``"deadline_ms"`` — an optional relative deadline in milliseconds,
  anchored at server receipt.  A request already past its deadline
  answers a structured ``deadline_exceeded`` error without doing work,
  and long cold observes honour the deadline cooperatively between
  chunk-plan groups (completed samples stay in the pool).

Responses always carry ``"ok"``.  Failures are *structured*::

    {"ok": false, "error": {"code": "unknown_op", "message": "..."}}

with a closed set of codes (:data:`ERROR_CODES`), so clients can branch
on machine-readable causes instead of parsing exception strings — and
so a malformed line, an unknown op, or an oversized frame degrades into
one error response instead of a dropped connection.

The ops are the service tier's query surface plus control ops::

    get_next | top_stable | stability_of      (repro.service.batch)
    hello | ping | stats | explain | invalidate | checkpoint | shutdown
    diag | profile                            (repro.obs diagnostics)

Every query op additionally understands ``"trace": true``: the server
executes the query inside an :mod:`repro.obs` trace and echoes a
``"trace"`` stage breakdown plus a ``"cost"`` attribution record in the
response.  ``"trace_id"`` (optional, string) propagates a client
correlation id into the server-side trace.  Untraced responses are
byte-identical to pre-tracing servers.

:func:`dispatch` executes one parsed request against one
:class:`~repro.service.StabilitySession` and is the single
implementation behind ``cli.py serve`` (stdio), the asyncio TCP app,
and any test harness — transports only frame lines and move bytes.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field

from repro.errors import (
    BudgetExceededError,
    ExhaustedError,
    SnapshotError,
    StableRankingsError,
)
from repro.server import resilience

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "QUERY_OPS",
    "CONTROL_OPS",
    "ERROR_CODES",
    "RequestError",
    "parse_request",
    "error_payload",
    "classify_exception",
    "result_to_json",
    "value_to_json",
    "Handled",
    "dispatch",
]

#: Bumped when the wire format changes incompatibly; ``hello`` reports
#: it so clients can refuse servers they do not understand.
PROTOCOL_VERSION = 1

#: Default maximum request frame (one line, newline included).  A line
#: beyond the limit is answered with ``line_too_long`` and discarded;
#: the connection stays alive.
MAX_LINE_BYTES = 1 << 20

QUERY_OPS = ("get_next", "top_stable", "stability_of")
CONTROL_OPS = (
    "hello", "ping", "stats", "explain", "invalidate", "checkpoint",
    "shutdown", "diag", "profile",
)

#: The closed error-code vocabulary of the protocol.
ERROR_CODES = (
    "bad_json",        # the line is not a JSON object
    "bad_request",     # JSON object, but invalid fields/values
    "unknown_op",      # "op" is not one of QUERY_OPS + CONTROL_OPS
    "line_too_long",   # frame exceeded the server's line limit
    "unknown_dataset", # "dataset" names nothing in the registry
    "exhausted",       # GET-NEXT consumed every observed ranking
    "budget_exceeded", # a sampling budget/cap ran out before convergence
    "infeasible",      # the queried ranking/region is infeasible
    "snapshot_error",  # a checkpoint could not be written/restored
    "busy",            # admission control shed the request (retry later)
    "shutting_down",   # server is draining; no new work accepted
    "no_state_dir",    # checkpoint requested but serving is not durable
    "deadline_exceeded",  # the request's deadline_ms expired (not retried)
    "overloaded",      # degraded mode shed a cold observe (retry later)
    "unavailable",     # transient/injected transport fault; not executed
    "internal",        # unexpected server-side failure
)


def _reject_nonfinite(token: str) -> float:
    # json.loads accepts the NaN/Infinity/-Infinity extensions by
    # default, but json.dumps would then emit them back — producing
    # responses that are not valid JSON.  Strict interchange JSON only.
    raise ValueError(f"{token} is not valid interchange JSON")


def _valid_request_id(value) -> bool:
    """The ``"id"`` echo contract only holds for JSON scalars that
    round-trip: strings, bools, ints, and *finite* floats.  (``1e999``
    parses to ``inf`` without ever hitting the constant hook, and
    echoing it would corrupt the response frame.)"""
    if isinstance(value, float):
        return math.isfinite(value)
    return isinstance(value, (str, bool, int))


class RequestError(Exception):
    """A request that can be answered only with a structured error.

    ``request_id`` carries the request's ``"id"`` when the frame
    parsed far enough to reveal one, so even parse-level failures can
    honour the id-echo contract.  ``retry_after_ms`` is an optional
    backoff hint surfaced in the error object (degraded-mode sheds set
    it).
    """

    def __init__(self, code: str, message: str, *, request_id=None,
                 retry_after_ms=None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id
        self.retry_after_ms = retry_after_ms


def parse_request(line: str | bytes, *, max_bytes: int = MAX_LINE_BYTES) -> dict:
    """One JSON-object request from one raw line.

    Raises :class:`RequestError` (``line_too_long`` / ``bad_json`` /
    ``bad_request``) instead of letting transport loops die on bad
    input.
    """
    raw = line.encode("utf-8", "replace") if isinstance(line, str) else line
    raw = raw.strip()  # the frame terminator does not count toward the limit
    if len(raw) > max_bytes:
        raise RequestError(
            "line_too_long",
            f"request line is {len(raw)} bytes; the limit is {max_bytes}",
        )
    try:
        payload = json.loads(raw, parse_constant=_reject_nonfinite)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError("bad_json", f"not valid JSON: {exc}") from None
    except RecursionError:
        # Pathologically nested frames (60k open brackets still fit in
        # one line) must degrade into a structured error, not kill the
        # connection task.
        raise RequestError(
            "bad_json", "request JSON is nested too deeply"
        ) from None
    if not isinstance(payload, dict):
        raise RequestError(
            "bad_request",
            f"a request must be a JSON object, got {type(payload).__name__}",
        )
    request_id = payload.get("id")
    if request_id is not None and not _valid_request_id(request_id):
        # Validate before *any* error path echoes it: a non-scalar or
        # non-finite id inside error_payload would break the response
        # frame the same way it would break a success frame.
        raise RequestError(
            "bad_request",
            'the "id" field must be a JSON string, finite number, or bool',
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise RequestError(
            "bad_request",
            'a request needs a string "op" field',
            request_id=request_id,
        )
    if op not in QUERY_OPS and op not in CONTROL_OPS:
        raise RequestError(
            "unknown_op",
            f"unknown op {op!r}; known ops: "
            f"{', '.join(QUERY_OPS + CONTROL_OPS)}",
            request_id=request_id,
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not math.isfinite(deadline_ms)
            or deadline_ms <= 0
        ):
            raise RequestError(
                "bad_request",
                '"deadline_ms" must be a positive finite number of '
                "milliseconds",
                request_id=request_id,
            )
    return payload


def error_payload(
    code: str, message: str, *, request_id=None, retry_after_ms=None
) -> dict:
    """The structured failure response for one request.

    ``retry_after_ms`` adds a ``Retry-After``-style backoff hint to the
    error object; retry-aware clients use it as a backoff floor.
    """
    response = {"ok": False, "error": {"code": code, "message": message}}
    if retry_after_ms is not None:
        response["error"]["retry_after_ms"] = float(retry_after_ms)
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_response(response: dict) -> str:
    """Serialize one response frame as strict interchange JSON.

    The read side rejects the NaN/Infinity extensions; the write side
    must honour the same contract, or a non-finite float deep in a
    stats or result payload would emit a frame no compliant JSON
    parser accepts.  Such a response is replaced by a structured
    internal error (id echo preserved) rather than corrupting the
    stream.
    """
    try:
        return json.dumps(response, allow_nan=False)
    except ValueError:
        fallback = error_payload(
            "internal",
            "response contained a non-finite number and was withheld",
            request_id=response.get("id") if isinstance(response, dict) else None,
        )
        return json.dumps(fallback, allow_nan=False)


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map an exception to ``(code, message)`` for an error response."""
    message = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, RequestError):
        return exc.code, exc.message
    if isinstance(exc, resilience.DeadlineExceededError):
        # Not a StableRankingsError: a deadline expiry says nothing
        # about feasibility, and it must never be retried (the budget
        # the client granted is spent).
        resilience.DEADLINE_EXCEEDED.inc()
        return "deadline_exceeded", str(exc)
    if isinstance(exc, ExhaustedError):
        return "exhausted", message
    if isinstance(exc, BudgetExceededError):
        return "budget_exceeded", message
    if isinstance(exc, SnapshotError):
        return "snapshot_error", message
    if isinstance(exc, StableRankingsError):
        # Infeasible rankings/regions, invalid datasets/weights: the
        # request named something the engine rejects.
        return "infeasible", message
    if isinstance(exc, (ValueError, TypeError, KeyError, OverflowError)):
        # OverflowError: numpy >= 2 raises it for out-of-dtype ids in a
        # request payload — a client error, not a server bug.
        return "bad_request", message
    return "internal", message


# ----------------------------------------------------------------------
# Result serialization (shared by every serving surface)
# ----------------------------------------------------------------------
def result_to_json(dataset, result) -> dict:
    """One :class:`~repro.core.stability.StabilityResult` as JSON."""
    payload = {
        "ranking": [int(i) for i in result.ranking.order],
        "labels": [dataset.label_of(i) for i in result.ranking.order[:10]],
        "stability": result.stability,
        "confidence_error": result.confidence_error,
        "sample_count": result.sample_count,
    }
    if result.top_k_set is not None:
        payload["top_k_set"] = sorted(int(i) for i in result.top_k_set)
    return payload


def value_to_json(dataset, value) -> object:
    """A query result (one result or a list of them) as JSON."""
    if isinstance(value, list):
        return [result_to_json(dataset, r) for r in value]
    return result_to_json(dataset, value)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
#: Protocol-level fields stripped before a query op reaches the
#: service tier's request parser.  ``deadline_ms`` is enforced by the
#: transport/dispatch layer (anchored at receipt), not re-anchored by
#: the batch request parser.
_META_FIELDS = ("id", "dataset", "trace", "trace_id", "deadline_ms")


def _resolve_extra(extra) -> dict:
    """A dict, a zero-argument callable returning one, or ``None``."""
    if extra is None:
        return {}
    return extra() if callable(extra) else extra


def hello_fields(
    *,
    transport: str,
    datasets: list[str],
    default_dataset: str | None,
    durable: bool,
) -> dict:
    """The transport-specific half of a ``hello`` response.

    One constructor for every transport, so stdio and TCP can never
    drift on the field set a client probes (``durable`` gates the
    checkpoint op, ``datasets`` the addressing).
    """
    import repro

    return {
        "transport": transport,
        "library": repro.__version__,
        "datasets": list(datasets),
        "default_dataset": default_dataset,
        "durable": bool(durable),
    }


@dataclass
class Handled:
    """The outcome of dispatching one request.

    Attributes
    ----------
    response:
        The JSON-safe response object to write back.
    advanced:
        Whether the request counts toward the checkpoint cadence (an
        explicit ``checkpoint`` op resets the counter instead).
    mutated:
        Whether durable session state may have changed (pool growth,
        cursor advance, cache fill, invalidation) — the server's dirty
        tracking for checkpoint-on-drain.
    stop:
        Whether the serving loop should stop after responding
        (``shutdown``).
    """

    response: dict
    advanced: bool = True
    mutated: bool = False
    stop: bool = False


def dispatch(
    session,
    dataset,
    payload: dict,
    *,
    checkpoint=None,
    hello_extra: dict | None = None,
    stats_extra: dict | None = None,
    trace_extra: dict | None = None,
    diag_extra: dict | None = None,
    allow_shutdown: bool = True,
    deadline=None,
) -> Handled:
    """Execute one parsed request against one session.

    Parameters
    ----------
    session, dataset:
        The serving session and its dataset (labels for responses).
    payload:
        A request dict from :func:`parse_request`.
    checkpoint:
        Zero-argument callable performing a durable checkpoint and
        returning ``{"path", "bytes"}``, or ``None`` when serving is
        not durable (the ``checkpoint`` op then answers
        ``no_state_dir``).
    hello_extra / stats_extra:
        Transport-specific additions to the ``hello`` / ``stats``
        responses (server identity, registry and metrics sections).
        Either may be a dict or a zero-argument callable returning one
        — callables are only invoked when their op actually runs, so
        transports can defer expensive introspection off the hot path.
    trace_extra:
        Extra stages (``{name: seconds}``, dict or zero-argument
        callable) measured by the transport outside this call — the TCP
        app's event-loop-side RW-lock wait, for example.  Grafted onto
        the trace root when the request asked for ``"trace": true``;
        ignored otherwise.
    diag_extra:
        Transport-specific additions to a ``diag`` bundle (dict or
        zero-argument callable): ``"metrics"`` — a fresh metrics
        snapshot appended to the bundle's metrics ring; ``"slo"`` — the
        current SLO scores.  The bundle itself comes from the
        process-global :mod:`repro.obs.flight` recorder.
    allow_shutdown:
        Whether the ``shutdown`` op is honoured (stdio honours it too:
        it ends the loop exactly like end-of-input).
    deadline:
        The request's :class:`~repro.server.resilience.Deadline`,
        already anchored at receipt by the transport; ``None`` derives
        one from the payload's ``deadline_ms`` (anchored *now* — the
        stdio loop calls dispatch synchronously at receipt, so the
        anchors coincide).  An already-expired deadline answers
        ``deadline_exceeded`` before any work (``shutdown`` excepted —
        the drain path must stay drivable), and the deadline is made
        ambient around query execution so the observe path can cancel
        cooperatively.

    Never raises for request-shaped failures — every error becomes a
    structured response.  Exceptions escaping this function indicate a
    server bug, and transports translate them to ``internal``.
    """
    op = payload.get("op")
    request_id = payload.get("id")
    if deadline is None:
        deadline = resilience.Deadline.from_request(payload)

    def fail(code: str, message: str, **flags) -> Handled:
        return Handled(
            error_payload(code, message, request_id=request_id), **flags
        )

    def ok(response: dict, **flags) -> Handled:
        if request_id is not None:
            response["id"] = request_id
        response["ok"] = True
        return Handled(response, **flags)

    if deadline is not None and deadline.expired() and op != "shutdown":
        resilience.DEADLINE_EXCEEDED.inc()
        return fail(
            "deadline_exceeded",
            f"deadline of {deadline.deadline_ms:g} ms expired before "
            "execution",
            advanced=False,
        )

    if op == "ping":
        return ok({"pong": True}, advanced=False)
    if op == "hello":
        response = {
            "server": "repro.server",
            "protocol": PROTOCOL_VERSION,
            "ops": list(QUERY_OPS + CONTROL_OPS),
        }
        response.update(_resolve_extra(hello_extra))
        return ok(response, advanced=False)
    if op == "stats":
        response = {"stats": session.stats()}
        response.update(_resolve_extra(stats_extra))
        return ok(response, advanced=False)
    if op == "explain":
        query = payload.get("query")
        if not isinstance(query, dict):
            return fail(
                "bad_request",
                'explain needs a "query" object (the query request '
                "to be planned, not executed)",
                advanced=False,
            )
        try:
            plan = session.explain(
                {k: v for k, v in query.items() if k not in _META_FIELDS}
            )
        except Exception as exc:
            return fail(*classify_exception(exc), advanced=False)
        return ok({"explain": plan}, advanced=False)
    if op == "invalidate":
        return ok({"invalidated": session.invalidate()}, mutated=True)
    if op == "checkpoint":
        if checkpoint is None:
            return fail(
                "no_state_dir",
                "serving is not durable (no --state-dir)",
                advanced=False,
            )
        try:
            saved = checkpoint()
        except Exception as exc:
            return fail(*classify_exception(exc), advanced=False)
        return ok({"checkpoint": saved}, advanced=False)
    if op == "shutdown":
        if not allow_shutdown:
            return fail("bad_request", "shutdown is not honoured here")
        return ok({"shutting_down": True}, advanced=False, stop=True)
    if op == "diag":
        from repro.obs import flight as obs_flight

        extra = _resolve_extra(diag_extra)
        bundle = obs_flight.diag_bundle(
            "wire",
            metrics_snapshot=extra.get("metrics"),
            slo=extra.get("slo"),
        )
        return ok(
            {"diag": bundle, "flight": obs_flight.enabled()}, advanced=False
        )
    if op == "profile":
        from repro.obs import profile as obs_profile

        action = payload.get("action", "status")
        if action == "start":
            hz = payload.get("hz", obs_profile.DEFAULT_HZ)
            if not isinstance(hz, (int, float)) or isinstance(hz, bool):
                return fail(
                    "bad_request", 'profile "hz" must be a number',
                    advanced=False,
                )
            try:
                snap = obs_profile.start(float(hz))
            except ValueError as exc:
                return fail("bad_request", str(exc), advanced=False)
        elif action == "stop":
            snap = obs_profile.stop()
        elif action == "status":
            snap = obs_profile.status()
        else:
            return fail(
                "bad_request",
                'profile "action" must be "start", "stop", or "status", '
                f"got {action!r}",
                advanced=False,
            )
        return ok({"profile": snap}, advanced=False)

    if op not in QUERY_OPS:
        return fail(
            "unknown_op",
            f"unknown op {op!r}; known ops: "
            f"{', '.join(QUERY_OPS + CONTROL_OPS)}",
        )

    from repro.service.batch import execute_batch

    request = {
        key: value for key, value in payload.items() if key not in _META_FIELDS
    }
    want_trace = bool(payload.get("trace"))
    trace_obj = None
    start = time.perf_counter()
    if want_trace:
        from repro.obs import tracing as obs_trace

        trace_id = payload.get("trace_id")
        with obs_trace.trace(
            f"server.dispatch:{op}",
            trace_id=trace_id if isinstance(trace_id, str) and trace_id else None,
        ) as trace_obj:
            with resilience.deadline_scope(deadline):
                outcome = execute_batch(session, [request])[0]
        for name, seconds in _resolve_extra(trace_extra).items():
            trace_obj.add_stage(name, float(seconds))
    else:
        with resilience.deadline_scope(deadline):
            outcome = execute_batch(session, [request])[0]
    elapsed = time.perf_counter() - start
    if not outcome.ok:
        # The attempt may have mutated state before failing (a
        # get_next that grew its pool to target and then found every
        # ranking already returned); over-marking dirty costs one
        # redundant checkpoint, under-marking loses samples at drain.
        return fail(*classify_exception(outcome.error), mutated=True)
    response = {
        "cached": outcome.cached,
        "seconds": round(elapsed, 6),
        "result": value_to_json(dataset, outcome.value),
    }
    if want_trace:
        from repro.obs import flight as obs_flight
        from repro.obs.tracing import stage_report

        response["cost"] = outcome.cost
        report = stage_report(trace_obj)
        response["trace"] = {"trace_id": trace_obj.trace_id, **report}
        if obs_flight._ENABLED:
            obs_flight.record_trace(
                {"op": op, "trace_id": trace_obj.trace_id, **report}
            )
    return ok(
        response,
        # get_next consumes a cursor; an uncached idempotent answer may
        # have grown a pool or filled the result cache.  Only a cache
        # hit provably left durable state untouched.
        mutated=(op == "get_next") or not outcome.cached,
    )


# ----------------------------------------------------------------------
# Write-lock classification (concurrency hint for the async app)
# ----------------------------------------------------------------------
def needs_write(session, payload: dict) -> bool:
    """Whether dispatching ``payload`` may mutate session state.

    The TCP app interleaves read-only requests under a shared read lock
    and serializes mutators under the write lock.  ``ping`` / ``hello``
    / ``stats`` never touch durable state; for the query ops the
    classification is the session's own
    :meth:`~repro.service.StabilitySession.query_is_warm_read` (it
    owns the state layout being probed).  A payload the session cannot
    even interpret classifies as a write — misclassifying toward
    "write" costs parallelism, never correctness.
    """
    op = payload.get("op")
    if op in ("ping", "hello", "stats", "explain", "diag", "profile"):
        # explain plans a query without materializing backend state —
        # it only inspects already-built pools; diag/profile touch only
        # the process-global recorder and profiler.
        return False
    try:
        return not session.query_is_warm_read(
            op,
            kind=payload.get("kind", "full"),
            k=payload.get("k"),
            backend=payload.get("backend", "auto"),
            ranking=payload.get("ranking"),
            m=payload.get("m", 1),
            budget=payload.get("budget"),
            min_samples=payload.get("min_samples"),
        )
    except Exception:
        return True
