"""Serving metrics: counters and latency histograms, no dependencies.

The server records every request (op, latency, error code), connection
lifecycle events, shed load, and checkpoints into one
:class:`ServerMetrics` object.  Two read surfaces exist:

- :meth:`ServerMetrics.snapshot` — a JSON-safe dict served by the
  ``{"op": "stats"}`` protocol op;
- :meth:`ServerMetrics.render_text` — a Prometheus-style text exposition
  served by the optional ``--metrics-port`` HTTP endpoint, so a scrape
  target needs nothing beyond the standard library.

All methods are thread-safe: request handlers run on executor threads
while the event loop reads snapshots concurrently.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

from repro.obs.metrics import MetricsRegistry

__all__ = ["LatencyHistogram", "ServerMetrics"]

#: Upper bucket bounds in seconds (log-spaced, 100 us .. 10 s); the
#: final implicit bucket is +Inf.
LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with cumulative Prometheus counts."""

    __slots__ = ("bounds", "buckets", "count", "sum")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BOUNDS):
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last bucket is +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.buckets[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it.

        ``q=0`` returns the bound of the first non-empty bucket (not the
        first bucket outright), ``q=1`` the bound of the last non-empty
        one; observations past the final bound report ``+Inf``.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum_seconds": round(self.sum, 6),
            "mean_seconds": round(self.sum / self.count, 6) if self.count else 0.0,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }


class ServerMetrics:
    """Counters + per-op latency histograms for one server process."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self._lock = threading.Lock()
        #: Generalized gauge/counter registry; resource gauges (RSS, shm
        #: segments, pool/cache bytes) are registered here by the app and
        #: rendered alongside the server families.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at = time.time()
        self.requests_total: dict[str, int] = {}
        self.errors_total: dict[str, int] = {}
        self.latency: dict[str, LatencyHistogram] = {}
        # Per-dataset counters (query ops only) backing the SLO engine.
        self.dataset_requests: dict[str, int] = {}
        self.dataset_errors: dict[str, int] = {}
        self.dataset_latency: dict[str, LatencyHistogram] = {}
        #: Optional :class:`repro.obs.slo.SloTracker`; attached by the
        #: app when ``--slo`` is configured.  Its snapshot/exposition
        #: are computed *outside* ``_lock`` (the tracker reads back
        #: through :meth:`dataset_view`, and ``_lock`` is non-reentrant).
        self.slo = None
        self.connections_opened = 0
        self.connections_active = 0
        self.busy_shed_total = 0
        self.shutting_down_total = 0
        self.checkpoints_total = 0
        self.checkpoint_failures_total = 0
        self.evictions_total = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # ------------------------------------------------------------------
    def observe_request(
        self,
        op: str,
        seconds: float,
        *,
        error_code: str | None = None,
        dataset: str | None = None,
    ) -> None:
        """Record one handled request (op label, latency, optional error).

        ``dataset`` additionally attributes the request to a dataset's
        SLO counters; callers pass it for query ops only so control
        traffic (ping, stats, diag) never skews latency objectives.
        """
        op = op if isinstance(op, str) and op else "<invalid>"
        # Allocate outside the lock: the first request for an op pays the
        # histogram construction without extending the critical section;
        # a racing thread's spare allocation is simply dropped.
        fresh = None if op in self.latency else LatencyHistogram()
        ds_fresh = (
            None
            if dataset is None or dataset in self.dataset_latency
            else LatencyHistogram()
        )
        with self._lock:
            self.requests_total[op] = self.requests_total.get(op, 0) + 1
            hist = self.latency.get(op)
            if hist is None:
                hist = self.latency[op] = (
                    fresh if fresh is not None else LatencyHistogram()
                )
            hist.observe(seconds)
            if error_code is not None:
                self.errors_total[error_code] = (
                    self.errors_total.get(error_code, 0) + 1
                )
            if dataset is not None:
                self.dataset_requests[dataset] = (
                    self.dataset_requests.get(dataset, 0) + 1
                )
                ds_hist = self.dataset_latency.get(dataset)
                if ds_hist is None:
                    ds_hist = self.dataset_latency[dataset] = (
                        ds_fresh if ds_fresh is not None else LatencyHistogram()
                    )
                ds_hist.observe(seconds)
                if error_code is not None:
                    self.dataset_errors[dataset] = (
                        self.dataset_errors.get(dataset, 0) + 1
                    )

    def dataset_view(self) -> dict:
        """Per-dataset counters for the SLO tracker (consistent copy)."""
        with self._lock:
            return {
                name: {
                    "requests": self.dataset_requests.get(name, 0),
                    "errors": self.dataset_errors.get(name, 0),
                    "count": hist.count,
                    "bounds": hist.bounds,
                    "buckets": list(hist.buckets),
                }
                for name, hist in self.dataset_latency.items()
            }

    def observe_error(self, error_code: str) -> None:
        """Record a protocol-level error that never reached a handler."""
        with self._lock:
            self.errors_total[error_code] = (
                self.errors_total.get(error_code, 0) + 1
            )

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_active += 1

    def connection_closed(self) -> None:
        with self._lock:
            # Clamp at zero: a double-close (reader and writer teardown
            # racing) must not drive the gauge negative.
            self.connections_active = max(0, self.connections_active - 1)

    def shed(self) -> None:
        with self._lock:
            self.busy_shed_total += 1
            self.errors_total["busy"] = self.errors_total.get("busy", 0) + 1

    def refused_draining(self) -> None:
        with self._lock:
            self.shutting_down_total += 1

    def checkpointed(self, *, failed: bool = False) -> None:
        with self._lock:
            if failed:
                self.checkpoint_failures_total += 1
            else:
                self.checkpoints_total += 1

    def evicted(self) -> None:
        with self._lock:
            self.evictions_total += 1

    def add_bytes(self, *, received: int = 0, sent: int = 0) -> None:
        with self._lock:
            self.bytes_in += received
            self.bytes_out += sent

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe metrics for the ``stats`` op."""
        # The SLO tracker reads back through dataset_view(), which takes
        # _lock itself — compute its section before entering the lock.
        slo = self.slo
        slo_section = slo.snapshot() if slo is not None else None
        with self._lock:
            doc = {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests_total": dict(self.requests_total),
                "errors_total": dict(self.errors_total),
                "latency": {
                    op: hist.snapshot() for op, hist in self.latency.items()
                },
                "connections": {
                    "opened": self.connections_opened,
                    "active": self.connections_active,
                },
                "busy_shed_total": self.busy_shed_total,
                "shutting_down_total": self.shutting_down_total,
                "checkpoints_total": self.checkpoints_total,
                "checkpoint_failures_total": self.checkpoint_failures_total,
                "evictions_total": self.evictions_total,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "resources": self.registry.collect(),
            }
        if slo_section is not None:
            doc["slo"] = slo_section
        return doc

    def render_text(self) -> str:
        """Prometheus text exposition (``# HELP``/``# TYPE`` + samples)."""
        with self._lock:
            lines = [
                "# HELP repro_server_uptime_seconds Seconds since server start.",
                "# TYPE repro_server_uptime_seconds gauge",
                f"repro_server_uptime_seconds {time.time() - self.started_at:.3f}",
                "# HELP repro_server_connections_active Currently open client connections.",
                "# TYPE repro_server_connections_active gauge",
                f"repro_server_connections_active {self.connections_active}",
                "# HELP repro_server_connections_opened_total Connections accepted since start.",
                "# TYPE repro_server_connections_opened_total counter",
                f"repro_server_connections_opened_total {self.connections_opened}",
                "# HELP repro_server_busy_shed_total Requests shed under backpressure.",
                "# TYPE repro_server_busy_shed_total counter",
                f"repro_server_busy_shed_total {self.busy_shed_total}",
                "# HELP repro_server_checkpoints_total Session checkpoints written.",
                "# TYPE repro_server_checkpoints_total counter",
                f"repro_server_checkpoints_total {self.checkpoints_total}",
                "# HELP repro_server_evictions_total Idle sessions evicted.",
                "# TYPE repro_server_evictions_total counter",
                f"repro_server_evictions_total {self.evictions_total}",
                "# HELP repro_server_bytes_total Wire bytes by direction.",
                "# TYPE repro_server_bytes_total counter",
                f'repro_server_bytes_total{{direction="in"}} {self.bytes_in}',
                f'repro_server_bytes_total{{direction="out"}} {self.bytes_out}',
                "# HELP repro_server_requests_total Requests handled by op.",
                "# TYPE repro_server_requests_total counter",
            ]
            for op in sorted(self.requests_total):
                lines.append(
                    f'repro_server_requests_total{{op="{op}"}} '
                    f"{self.requests_total[op]}"
                )
            lines.append("# HELP repro_server_errors_total Errors returned by code.")
            lines.append("# TYPE repro_server_errors_total counter")
            for code in sorted(self.errors_total):
                lines.append(
                    f'repro_server_errors_total{{code="{code}"}} '
                    f"{self.errors_total[code]}"
                )
            lines.append(
                "# HELP repro_server_request_seconds Request latency by op."
            )
            lines.append("# TYPE repro_server_request_seconds histogram")
            for op in sorted(self.latency):
                hist = self.latency[op]
                cumulative = 0
                for bound, n in zip(hist.bounds, hist.buckets):
                    cumulative += n
                    lines.append(
                        f'repro_server_request_seconds_bucket{{op="{op}",'
                        f'le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f'repro_server_request_seconds_bucket{{op="{op}",'
                    f'le="+Inf"}} {hist.count}'
                )
                lines.append(
                    f'repro_server_request_seconds_sum{{op="{op}"}} '
                    f"{hist.sum:.6f}"
                )
                lines.append(
                    f'repro_server_request_seconds_count{{op="{op}"}} '
                    f"{hist.count}"
                )
            body = "\n".join(lines) + "\n"
        # Registry gauges read process state (RSS, shm) and the SLO
        # tracker reads back through dataset_view() — render both
        # outside the server lock.
        body += self.registry.render_text()
        slo = self.slo
        if slo is not None:
            body += slo.render_text()
        return body
