"""The unified stability engine: kernel, backends, dispatching facade.

- :mod:`repro.engine.kernel` — the vectorized ranking kernel every
  backend's hot path runs on (chunked BLAS scoring, bulk top-k
  extraction, byte-packed count keys, heap-backed best-unreturned);
- :mod:`repro.engine.kernels` — the pluggable kernel-backend registry
  for the chunk reduction (``numpy`` reference, jitted ``numba``),
  selected via ``REPRO_KERNEL`` / the ``--kernel`` CLI dial;
- :mod:`repro.engine.backends` — the backend protocol and registry
  (``twod_exact``, ``md_arrangement``, ``randomized``);
- :mod:`repro.engine.engine` — the :class:`StabilityEngine` facade
  with ``(d, n, kind, budget)`` auto-dispatch.

The kernel (and its backend registry) is imported eagerly; the
stability backends and facade load lazily on first attribute access
because they depend on :mod:`repro.core`, which itself routes its
randomized hot path through the kernel.
"""

from repro.engine import kernel, kernels

__all__ = [
    "kernel",
    "kernels",
    "StabilityEngine",
    "StabilityBackend",
    "register_backend",
    "create_backend",
    "available_backends",
    "resolve_backend",
]

_LAZY = {
    "StabilityEngine": "repro.engine.engine",
    "StabilityBackend": "repro.engine.backends",
    "register_backend": "repro.engine.backends",
    "create_backend": "repro.engine.backends",
    "available_backends": "repro.engine.backends",
    "resolve_backend": "repro.engine.backends",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
