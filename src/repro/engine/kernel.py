"""Vectorized ranking kernel shared by every stability backend.

The Monte-Carlo operators of sections 4.3-4.5 spend their entire budget
in one inner loop: score the database under a batch of sampled
functions, reduce each score row to a ranking key, and tally the keys.
The seed implementation did that with per-sample Python work — a tuple
per sampled ranking, a ``Counter`` keyed by tuples/frozensets, and a
linear rescan of the whole count table to find the best unreturned key.
This module replaces all of it with batch-level numpy:

- :func:`auto_chunk_size` — pick the number of sampled functions scored
  per BLAS call so the transient score matrix stays cache/memory
  friendly regardless of ``n``;
- :func:`score_block` — the ``(batch, d) @ (d, n)`` scoring product;
- :func:`full_ranking_rows` / :func:`topk_rows` — reduce a block of
  score rows to ranking keys in bulk (``argsort`` for complete
  rankings, ``argpartition`` + deterministic tie repair for top-k);
- :func:`pack_rows` / :func:`unpack_key` — compact byte-packed keys
  (one ``bytes`` object per ranking, minimal-width integer dtype)
  replacing Python tuples and frozensets as hash keys;
- :class:`RankingTally` — the count table of Algorithms 7-8 with a
  lazy max-heap over (count, first-seen) so "best unreturned ranking"
  is a heap peek instead of a full-table scan.
"""

from __future__ import annotations

import heapq
import os

import numpy as np

from repro.core.ranking import _top_k_order

__all__ = [
    "auto_chunk_size",
    "score_block",
    "full_ranking_rows",
    "topk_rows",
    "batch_topk_indices",
    "key_dtype_for",
    "pack_rows",
    "unpack_key",
    "RankingTally",
]

# Target transient footprint of one score block (bytes).  64 KiB rows at
# n = 10_000 give ~200-row batches: big enough to amortise the per-batch
# Python overhead, small enough to stay in L2/L3.
_TARGET_BLOCK_BYTES = 16 * 1024 * 1024
_MIN_CHUNK = 16
_MAX_CHUNK = 8192

#: Environment override pinning the scoring chunk to a fixed row count.
#: The auto-tuned size is already a pure function of ``n``, but pinning
#: it lets serial and shard-parallel observe passes (and runs on hosts
#: with different tuning constants) share one reproducible chunk
#: decomposition — the tally's first-seen tie-break order depends on it.
CHUNK_ENV_VAR = "REPRO_SCORING_CHUNK"


def auto_chunk_size(
    n_items: int,
    *,
    target_bytes: int = _TARGET_BLOCK_BYTES,
    lo: int = _MIN_CHUNK,
    hi: int = _MAX_CHUNK,
    scale: float = 1.0,
) -> int:
    """Rows of sampled functions per scoring block, auto-tuned to ``n``.

    Bounds the transient ``(chunk, n)`` float64 score matrix (and the
    same-shaped argsort workspace) near ``target_bytes``, clamped to
    ``[lo, hi]``.  ``scale`` is the active kernel backend's chunk
    multiplier (:attr:`repro.engine.kernels.KernelBackend.chunk_scale`):
    a compiled reduction streams each row once with no sort workspace,
    so it tolerates proportionally larger blocks (the clamp ceiling
    scales with it).  Deterministic: the result depends only on ``n``
    and the explicit arguments, so two operators over the same dataset
    *and kernel backend* always agree on the chunk decomposition.
    Setting the ``REPRO_SCORING_CHUNK`` environment variable overrides
    the tuning — including ``scale`` — with a fixed positive row count,
    which is what pins one reproducible decomposition across backends.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    override = os.environ.get(CHUNK_ENV_VAR)
    if override:
        pinned = int(override)
        if pinned < 1:
            raise ValueError(
                f"{CHUNK_ENV_VAR} must be a positive integer, got {override!r}"
            )
        return pinned
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    per_row = 8 * max(n_items, 1)
    return int(
        np.clip(int(target_bytes * scale) // per_row, lo, max(hi, int(hi * scale)))
    )


def score_block(
    values: np.ndarray, weights: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Score every item under every sampled function: ``(batch, n)``.

    One BLAS GEMM — ``weights @ values.T`` — with both operands forced
    to contiguous float64 so the product never falls back to a strided
    loop.  ``out`` is an optional preallocated ``(>= batch, n)`` float64
    buffer; the leading ``batch`` rows are written in place and returned,
    so one observe pass can reuse a single buffer across all its chunks
    instead of allocating a fresh score matrix per BLAS call.
    """
    v = np.ascontiguousarray(values, dtype=np.float64)
    w = np.ascontiguousarray(np.atleast_2d(weights), dtype=np.float64)
    if out is not None:
        target = out[: w.shape[0]]
        np.matmul(w, v.T, out=target)
        return target
    return w @ v.T


def _descending_keys(scores: np.ndarray) -> tuple[np.ndarray, int]:
    """Fuse each score with its item id into one sortable ``uint64``.

    The IEEE-754 bit pattern of a non-negative float compares like an
    unsigned integer, so ``~bits`` sorts descending; a sign-flip
    transform extends this to negative scores.  The low
    ``ceil(log2 n)`` mantissa bits are truncated and replaced by the
    item identifier, so one *value* sort (``np.sort``, no index
    payload — much faster than ``argsort``) yields the ranking with
    the tie-break-by-identifier convention built in: exactly equal
    scores share the truncated prefix and order by id ascending.

    Truncation can collide two scores that differ only in the stolen
    mantissa bits (relative gap under ``2^-(52 - id_bits)``); callers
    must detect shared-prefix neighbours and repair against the exact
    float64 scores.

    Returns the ``(batch, n)`` key block and the number of id bits.
    """
    batch, n = scores.shape
    id_bits = max(1, int(n - 1).bit_length())
    if id_bits > 32:  # pragma: no cover - 4G items will not fit in RAM
        raise ValueError(f"dataset too large for fused ranking keys (n={n})")
    low_mask = np.uint64((1 << id_bits) - 1)
    s = np.ascontiguousarray(scores, dtype=np.float64)
    smin = s.min() if s.size else 0.0
    if smin < 0.0:
        u = (s + 0.0).view(np.uint64)
        sign = np.uint64(0x8000000000000000)
        u = u ^ (((u >> np.uint64(63)) * np.uint64(0xFFFFFFFFFFFFFFFF)) | sign)
    elif smin == 0.0:
        u = (s + 0.0).view(np.uint64)  # normalise -0.0 to +0.0
    else:
        u = s.view(np.uint64)
    keys = (~u & ~low_mask) | np.arange(n, dtype=np.uint64)
    return keys, id_bits


def full_ranking_rows(scores: np.ndarray) -> np.ndarray:
    """Complete-ranking key rows for a block of score rows.

    Equivalent to ``np.argsort(-scores, axis=1, kind="stable")`` —
    descending score, ties broken by ascending item identifier (the
    paper's convention) — but implemented as one fused-key *value*
    sort (:func:`_descending_keys`).  Rows whose sorted keys contain a
    shared truncated prefix are verified against the exact scores and
    re-sorted only if the collision was real.
    """
    scores = np.atleast_2d(scores)
    keys, id_bits = _descending_keys(scores)
    keys.sort(axis=1)
    low_mask = np.uint64((1 << id_bits) - 1)
    rows = (keys & low_mask).astype(np.intp)
    if scores.shape[1] > 1:
        collided = (keys[:, 1:] ^ keys[:, :-1]) <= low_mask
        for i in np.flatnonzero(collided.any(axis=1)):
            ordered = scores[i, rows[i]]
            runs = np.flatnonzero(collided[i])
            # A shared prefix with *equal* scores is already in stable
            # order (ids ascend within the run); only genuinely
            # different scores need the exact re-sort.
            if np.any(ordered[runs] != ordered[runs + 1]):
                rows[i] = np.argsort(-scores[i], kind="stable")
    return rows


def topk_rows(scores: np.ndarray, k: int, *, ranked: bool) -> np.ndarray:
    """Top-k key rows for a block of score rows, in ``O(batch * n)``.

    A fused-key partial selection: ``np.partition`` (value partition,
    no index payload) pulls each row's ``k + 1`` smallest descending
    keys, the ``k`` winners are ordered by one tiny sort, and ids drop
    out of the key low bits.  Exact score ties — within the top-k and
    at the selection boundary — break by ascending identifier directly
    in key order, matching
    :func:`~repro.core.ranking._top_k_order`; rows with a truncated-
    prefix collision among the ``k + 1`` head keys are repaired with
    that exact scalar routine.

    Returns ``(batch, k)`` identifier rows: rank order when ``ranked``,
    ascending-id canonical set form otherwise.
    """
    scores = np.atleast_2d(scores)
    n = scores.shape[1]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    keys, id_bits = _descending_keys(scores)
    low_mask = np.uint64((1 << id_bits) - 1)
    if k + 1 >= n:
        keys.sort(axis=1)
        head = keys
    else:
        # kth=k pins the exact (k+1)-th smallest at position k with the
        # k winners (unordered) before it — one introselect pass.
        head = np.partition(keys, k, axis=1)[:, : k + 1]
        head.sort(axis=1)
    rows = (head[:, :k] & low_mask).astype(np.intp)
    if ranked is False:
        out = np.sort(rows, axis=1)
    else:
        out = rows
    # Any shared truncated prefix among the k+1 head keys is repaired
    # with the exact scalar routine: unlike the full sort, the head is a
    # *window* — a prefix run can extend past it and hide an item whose
    # score differs only in the truncated bits (so equal head scores
    # certify nothing), and a run touching the boundary decides
    # membership.  Exact ties stay correct either way; genuinely tied
    # data just falls back to the seed-speed path for those rows.
    check = head[:, : min(k + 1, n)]
    collided = (check[:, 1:] ^ check[:, :-1]) <= low_mask
    for i in np.flatnonzero(collided.any(axis=1)):
        exact = _top_k_order(scores[i], k)
        out[i] = exact if ranked else sorted(exact)
    return out


def batch_topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Deterministic ranked top-k for one score row or a block of rows.

    The engine-level replacement for per-row ``_top_k_order`` loops:
    a single row returns shape ``(k,)``, a block returns ``(batch, k)``.
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim == 1:
        return topk_rows(s[None, :], k, ranked=True)[0]
    return topk_rows(s, k, ranked=True)


def key_dtype_for(n_items: int) -> np.dtype:
    """Minimal unsigned dtype able to hold every item identifier."""
    if n_items <= np.iinfo(np.uint8).max + 1:
        return np.dtype(np.uint8)
    if n_items <= np.iinfo(np.uint16).max + 1:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def pack_rows(rows: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """View identifier rows as one opaque fixed-width key per row.

    Casts to the minimal ``dtype`` and reinterprets each row as a
    single ``numpy.void`` scalar, so a block of rankings can be
    deduplicated with one :func:`numpy.unique` call and hashed as raw
    bytes — no per-sample tuple construction.
    """
    arr = np.ascontiguousarray(rows.astype(dtype, copy=False))
    void = np.dtype((np.void, arr.dtype.itemsize * arr.shape[1]))
    return arr.view(void).ravel()


def unpack_key(key: bytes, dtype: np.dtype) -> tuple[int, ...]:
    """Invert :func:`pack_rows` for a single byte-packed key."""
    return tuple(int(i) for i in np.frombuffer(key, dtype=dtype))


class RankingTally:
    """Count table + best-unreturned heap for the randomized operators.

    Keys are byte-packed rankings (:func:`pack_rows`).  Counts only ever
    grow, so the "most frequent unreturned key" query is served by a
    *lazy* max-heap: every count update pushes a fresh entry and stale
    entries are discarded when popped.  Ties are broken by first-seen
    order (then by key bytes), matching the seed's insertion-order scan.

    Parameters
    ----------
    n_items:
        Dataset size; fixes the packed key dtype.
    key_length:
        Identifiers per key (``n`` for complete rankings, ``k`` for
        top-k keys).
    """

    __slots__ = ("dtype", "key_length", "counts", "total", "_first_seen",
                 "_heap", "_returned")

    def __init__(self, n_items: int, key_length: int):
        self.dtype = key_dtype_for(n_items)
        self.key_length = int(key_length)
        self.counts: dict[bytes, int] = {}
        self.total = 0
        self._first_seen: dict[bytes, int] = {}
        self._heap: list[tuple[int, int, bytes]] = []
        self._returned: set[bytes] = set()

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of this tally (telemetry only).

        Packed-key bytes across the count table, first-seen map, lazy
        heap, and returned set, plus CPython per-entry container
        overhead (dict slot + boxed int ~ 100 bytes).  A gauge for the
        resource-telemetry layer, not an allocator-accurate number.
        """
        key_bytes = self.key_length * self.dtype.itemsize
        n_keys = len(self.counts)
        return (
            2 * n_keys * (key_bytes + 100)            # counts + first_seen
            + len(self._heap) * (key_bytes + 120)     # heap tuples
            + len(self._returned) * (key_bytes + 60)  # returned set
        )

    def observe_rows(self, rows: np.ndarray) -> None:
        """Tally a block of identifier rows (one ranking key per row)."""
        if rows.shape[0] == 0:
            return
        packed = pack_rows(rows, self.dtype)
        uniques, freqs = np.unique(packed, return_counts=True)
        self.observe_packed(uniques, freqs, int(rows.shape[0]))

    def observe_packed(self, keys, freqs, n_rows: int) -> None:
        """Merge a pre-reduced block of byte-packed keys into the tally.

        ``keys``/``freqs`` are the ``np.unique(..., return_counts=True)``
        reduction of one block of packed rows; ``n_rows`` is the block's
        row count.  ``keys`` may be the packed ``numpy.void`` array
        itself (the hot path: one C-level ``tolist()`` yields the
        ``bytes`` hash keys, no per-key Python loop materialises an
        intermediate list) or any iterable of ``bytes``.  This is the
        mergeable half of :meth:`observe_rows`: a worker can reduce its
        block off-thread (or out-of-process) and the owner folds the
        result in here.  Folding blocks in their serial order
        reproduces the serial tally exactly — counts, totals, and
        first-seen tie-break order.
        """
        if isinstance(keys, np.ndarray):
            # void-dtype arrays list-ify straight to bytes objects.
            keys = keys.tolist()
        if isinstance(freqs, np.ndarray):
            freqs = freqs.tolist()
        counts = self.counts
        first_seen = self._first_seen
        heap = self._heap
        for key, freq in zip(keys, freqs):
            new = counts.get(key, 0) + int(freq)
            counts[key] = new
            seq = first_seen.setdefault(key, len(first_seen))
            if key not in self._returned:
                heapq.heappush(heap, (-new, seq, key))
        self.total += int(n_rows)

    def merge(self, other: "RankingTally") -> None:
        """Fold another tally's counts into this one.

        Keys are ingested in ``other``'s first-seen order, so merging
        shard tallies in shard order matches processing the shards'
        blocks sequentially *per shard*; returned-marks of ``other``
        are ignored (shards never return results themselves).
        """
        if other.key_length != self.key_length or other.dtype != self.dtype:
            raise ValueError("cannot merge tallies with different key layouts")
        ordered = sorted(other.counts, key=other._first_seen.__getitem__)
        self.observe_packed(
            ordered, [other.counts[key] for key in ordered], other.total
        )

    def export_state(self) -> dict:
        """The count table as flat, serialization-friendly buffers.

        Keys are emitted in first-seen order (the tie-break order is
        part of the observable state), concatenated into one ``bytes``
        blob of fixed-width packed keys; counts ride alongside as a
        little-endian ``uint64`` array.  Returned-marks are *not*
        included — they belong to the operator that owns the return
        protocol (see :meth:`GetNextRandomized.export_state`).
        """
        # Keys only ever enter ``counts`` at first observation (and are
        # never deleted), so dict insertion order *is* first-seen order
        # — no sort needed.
        ordered = list(self.counts)
        return {
            "key_length": self.key_length,
            "dtype": self.dtype.name,
            "n_keys": len(ordered),
            "total": self.total,
            "keys": b"".join(ordered),
            "counts": np.array(
                [self.counts[key] for key in ordered], dtype="<u8"
            ),
        }

    @classmethod
    def from_state(
        cls,
        n_items: int,
        *,
        key_length: int,
        dtype: str,
        n_keys: int,
        total: int,
        keys: bytes,
        counts: np.ndarray,
    ) -> "RankingTally":
        """Rebuild a tally from :meth:`export_state` buffers.

        Validates the layout hard — a snapshot whose buffers disagree
        with their declared shape (or whose counts do not sum to the
        total) must never produce a silently wrong count table.
        """
        tally = cls(n_items, key_length)
        if tally.dtype.name != dtype:
            raise ValueError(
                f"key dtype mismatch: n_items={n_items} implies "
                f"{tally.dtype.name}, state says {dtype}"
            )
        width = tally.key_length * tally.dtype.itemsize
        if len(keys) != n_keys * width:
            raise ValueError(
                f"key blob holds {len(keys)} bytes, expected "
                f"{n_keys} keys x {width} bytes"
            )
        freqs = np.asarray(counts, dtype=np.uint64)
        if freqs.shape != (n_keys,):
            raise ValueError(
                f"counts shape {freqs.shape} does not match n_keys={n_keys}"
            )
        if n_keys and int(freqs.min(initial=1)) < 1:
            raise ValueError("tally counts must be positive")
        if int(freqs.sum()) != int(total):
            raise ValueError(
                f"counts sum to {int(freqs.sum())}, total says {total}"
            )
        heap = tally._heap
        for i in range(n_keys):
            key = keys[i * width : (i + 1) * width]
            count = int(freqs[i])
            tally.counts[key] = count
            tally._first_seen[key] = i
            heap.append((-count, i, key))
        if len(tally.counts) != n_keys:
            raise ValueError("key blob contains duplicate keys")
        heapq.heapify(heap)
        tally.total = int(total)
        return tally

    def top_keys(self, m: int) -> list[bytes]:
        """The ``m`` highest-count keys, best first — non-consuming.

        Ignores returned-marks; ties break by first-seen order then key
        bytes, exactly like :meth:`best_unreturned`.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        first_seen = self._first_seen
        return [
            key
            for _, _, key in heapq.nsmallest(
                m,
                (
                    (-count, first_seen[key], key)
                    for key, count in self.counts.items()
                ),
            )
        ]

    def pack_prefix(self, ids) -> bytes:
        """Byte-pack a ranking *prefix* (``1 <= len(ids) <= key_length``).

        The packed bytes are exactly the leading bytes of any full key
        sharing the prefix, so prefix membership is one ``startswith``
        per key — no unpacking.
        """
        ids = list(ids)
        if not 1 <= len(ids) <= self.key_length:
            raise ValueError(
                f"prefix length must be in [1, {self.key_length}], "
                f"got {len(ids)}"
            )
        # Delegate to pack_rows so prefix bytes can never drift from
        # the packing that produced the stored keys.
        row = np.asarray(ids, dtype=self.dtype)[None, :]
        return pack_rows(row, self.dtype)[0].tobytes()

    def prefix_count(self, ids) -> int:
        """Total observations whose key starts with the identifiers ``ids``.

        For a full-ranking tally this is the number of sampled functions
        whose induced ranking *begins* with ``ids`` — i.e. the sample
        count of the ranked prefix — summed over every observed
        completion, so the prefix never needs to be re-sampled under a
        dedicated top-k configuration.  A full-length ``ids`` degrades
        to :meth:`count_of`.  Cost is one bytes-prefix comparison per
        distinct observed key.
        """
        prefix = self.pack_prefix(ids)
        if len(ids) == self.key_length:
            return self.counts.get(prefix, 0)
        return sum(
            count
            for key, count in self.counts.items()
            if key.startswith(prefix)
        )

    def best_unreturned(self) -> bytes | None:
        """The not-yet-returned key with the highest count, or ``None``."""
        heap = self._heap
        while heap:
            neg_count, seq, key = heap[0]
            if key in self._returned or self.counts[key] != -neg_count:
                heapq.heappop(heap)  # stale or already returned
                continue
            return key
        return None

    def mark_returned(self, key: bytes) -> None:
        self._returned.add(key)

    def is_returned(self, key: bytes) -> bool:
        return key in self._returned

    def count_of(self, key: bytes) -> int:
        return self.counts.get(key, 0)

    def unpack(self, key: bytes) -> tuple[int, ...]:
        return unpack_key(key, self.dtype)

    def pack(self, ids) -> bytes:
        """Byte-pack one iterable of identifiers into this tally's key form."""
        row = np.asarray(list(ids), dtype=self.dtype)[None, :]
        return pack_rows(row, self.dtype)[0].tobytes()

    def __len__(self) -> int:
        return len(self.counts)
