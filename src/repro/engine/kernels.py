"""Pluggable kernel backends for the chunk reduction.

Every observe pass — serial, thread-sharded, or process-sharded —
bottoms out in the same chunk reduction: score a block of sampled
functions (one BLAS GEMM), reduce each score row to a ranking key,
byte-pack the keys, and ``np.unique`` them into a mergeable mini-tally.
This module makes the *reduction* stage pluggable:

- :class:`KernelBackend` (``"numpy"``) — the reference implementation,
  delegating to the fused-key routines of :mod:`repro.engine.kernel`;
- :class:`NumbaKernel` (``"numba"``) — a jitted per-row exact top-k
  selection (``nogil``, ``parallel``), compiled lazily on first use and
  falling back to the reference automatically when numba is absent.

Byte identity is a hard contract, not an aspiration: the scoring GEMM
is shared by every backend (a re-derived dot product could differ in
the last ulp and flip a near-tie), and the jitted selection uses the
same exact comparisons — descending score, ties by ascending item id —
as :func:`repro.core.ranking._top_k_order`.  Backends therefore produce
identical packed tallies (keys, counts, first-seen order) for any chunk
plan, and never touch the rng stream.

Selection precedence: an explicit name (the ``--kernel`` CLI flag or a
``kernel=`` argument) beats the ``REPRO_KERNEL`` environment variable,
which beats auto-selection (the fastest available backend).  Requesting
an unavailable backend degrades to numpy with a warning rather than
failing — an operator restored on a host without numba must keep
serving.
"""

from __future__ import annotations

import importlib.util
import os
import warnings

import numpy as np

from repro.engine import kernel

__all__ = [
    "KERNEL_ENV_VAR",
    "KernelBackend",
    "NumbaKernel",
    "register_kernel",
    "available_kernels",
    "get_kernel",
    "resolve_kernel",
]

#: Environment override for the default kernel backend (an explicit
#: ``kernel=`` argument / ``--kernel`` flag still wins).
KERNEL_ENV_VAR = "REPRO_KERNEL"

_REGISTRY: dict[str, type] = {}
_INSTANCES: dict[str, "KernelBackend"] = {}


def register_kernel(cls):
    """Class decorator adding a kernel backend to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_kernels() -> dict[str, bool]:
    """Registered backend names mapped to availability on this host."""
    return {name: cls.available() for name, cls in _REGISTRY.items()}


@register_kernel
class KernelBackend:
    """The numpy reference backend (and base class for the others).

    Stateless: one shared instance per name serves every operator.  The
    unit of work is :meth:`reduce_chunk` — the full chunk reduction from
    sampled weights to a mergeable ``np.unique`` mini-tally — with
    :meth:`rank_rows` as the stage subclasses actually override.
    """

    name = "numpy"

    #: Multiplier applied to :func:`repro.engine.kernel.auto_chunk_size`
    #: tuning — a backend whose reduction is cheaper per row tolerates a
    #: larger transient score block.  ``REPRO_SCORING_CHUNK`` pinning
    #: overrides all of this (see :data:`repro.engine.kernel.CHUNK_ENV_VAR`).
    chunk_scale = 1.0

    @classmethod
    def available(cls) -> bool:
        return True

    def rank_rows(self, scores: np.ndarray, *, kind: str, k: int | None) -> np.ndarray:
        """Reduce a block of score rows to ranking-identifier rows."""
        if kind == "full":
            return kernel.full_ranking_rows(scores)
        return kernel.topk_rows(scores, k, ranked=kind == "topk_ranked")

    def reduce_chunk(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        kind: str,
        k: int | None,
        key_dtype: np.dtype,
        candidates: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ):
        """One chunk's pure reduction: score, rank, pack, unique.

        ``candidates`` maps candidate-space rows back to dataset
        identifiers (the k-skyband pruning path); ``out`` is an optional
        preallocated score buffer reused across the chunks of one pass.
        Returns ``(uniques, freqs, n_rows)`` ready for
        :meth:`~repro.engine.kernel.RankingTally.observe_packed`.
        """
        scores = kernel.score_block(values, weights, out=out)
        rows = self.rank_rows(scores, kind=kind, k=k)
        if candidates is not None:
            rows = candidates[rows]
        packed = kernel.pack_rows(rows, key_dtype)
        uniques, freqs = np.unique(packed, return_counts=True)
        return uniques, freqs, int(rows.shape[0])

    def __repr__(self) -> str:
        return f"<KernelBackend {self.name!r}>"


@register_kernel
class NumbaKernel(KernelBackend):
    """Jitted top-k selection: one exact pass per score row.

    The selection keeps the ``k`` best ``(score desc, id asc)`` items in
    an insertion-sorted window while streaming each row once — no key
    fusion, no partition, no truncated-prefix repair, because the
    comparisons are exact float64 from the start.  Scanning ids in
    ascending order makes the tie-break free: an incoming item can never
    displace an equal-scored stored one (its id is larger), which is
    precisely the :func:`repro.core.ranking._top_k_order` convention.

    Compiled lazily on first use (``nogil`` + ``parallel`` ``prange``
    over rows, on-disk cache), so importing this module costs nothing.
    ``kind="full"`` falls back to the reference reduction: a complete
    ranking's key is as wide as the dataset and the fused-key value sort
    is already near-optimal there.
    """

    name = "numba"
    chunk_scale = 4.0

    _compiled = None

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    @classmethod
    def _topk(cls):
        if cls._compiled is None:
            import numba

            @numba.njit(cache=True, nogil=True, parallel=True)
            def _topk_rows_jit(scores, k, ranked):  # pragma: no cover - jitted
                batch, n = scores.shape
                out = np.empty((batch, k), dtype=np.int64)
                for i in numba.prange(batch):
                    best_s = np.empty(k, dtype=np.float64)
                    best_j = np.empty(k, dtype=np.int64)
                    count = 0
                    for j in range(n):
                        s = scores[i, j]
                        # Ids ascend with j, so an item tied with the
                        # current worst can never enter the window.
                        if count == k and s <= best_s[k - 1]:
                            continue
                        if count < k:
                            pos = count
                            count += 1
                        else:
                            pos = k - 1
                        m = pos
                        # Strict > keeps equal scores in ascending-id
                        # order (the stored item has the smaller id).
                        while m > 0 and s > best_s[m - 1]:
                            best_s[m] = best_s[m - 1]
                            best_j[m] = best_j[m - 1]
                            m -= 1
                        best_s[m] = s
                        best_j[m] = j
                    if ranked:
                        out[i] = best_j
                    else:
                        out[i] = np.sort(best_j)
                return out

            cls._compiled = _topk_rows_jit
        return cls._compiled

    def rank_rows(self, scores: np.ndarray, *, kind: str, k: int | None) -> np.ndarray:
        if kind == "full":
            return kernel.full_ranking_rows(scores)
        scores = np.ascontiguousarray(np.atleast_2d(scores), dtype=np.float64)
        n = scores.shape[1]
        if not 1 <= k <= n:
            raise ValueError(f"k must be in [1, {n}], got {k}")
        return self._topk()(scores, k, kind == "topk_ranked")


def get_kernel(name: str) -> KernelBackend:
    """The shared backend instance for ``name`` (strict: must exist
    and be available)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {', '.join(_REGISTRY)}"
        )
    if not cls.available():
        raise ValueError(f"kernel backend {name!r} is not available on this host")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = cls()
    return instance


def resolve_kernel(choice: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve the kernel backend for one operator.

    Precedence: an explicit ``choice`` (name or instance) beats the
    ``REPRO_KERNEL`` environment variable, which beats ``"auto"`` — the
    last-registered available backend (numba when importable, else
    numpy).  A *named* backend that is not available on this host
    degrades to numpy with a :class:`RuntimeWarning` instead of failing;
    an unknown name is always an error.
    """
    if isinstance(choice, KernelBackend):
        return choice
    name = choice
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR) or None
    if name is None or name == "auto":
        for cls in reversed(list(_REGISTRY.values())):
            if cls.available():
                return get_kernel(cls.name)
        return get_kernel("numpy")  # pragma: no cover - numpy always available
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {', '.join(_REGISTRY)} (or 'auto')"
        )
    if not _REGISTRY[name].available():
        warnings.warn(
            f"kernel backend {name!r} is not available on this host; "
            "falling back to 'numpy' (tallies are identical, only slower)",
            RuntimeWarning,
            stacklevel=2,
        )
        return get_kernel("numpy")
    return get_kernel(name)
