"""Stability backends: one protocol, four registered implementations.

The paper's GET-NEXT families — the exact 2D sweep (section 3), the
exact 2D *top-k* sweep (the section 4.5.1 extension), the lazy
arrangement traversal (section 4.2), and the Monte-Carlo
randomized operator (sections 4.3-4.5) — share a call surface here so
the :class:`~repro.engine.engine.StabilityEngine` facade (and any other
consumer) can treat them interchangeably:

- every backend is constructed as ``Backend(dataset, region=..., rng=...,
  confidence=..., **options)``;
- :meth:`~StabilityBackend.get_next` accepts (and, for the exact
  backends, ignores) the randomized stopping parameters ``budget`` and
  ``error`` so drivers never need per-backend branches;
- :meth:`~StabilityBackend.stability_of` answers Problem 1 for an
  explicit ranking with whatever machinery the backend already has
  (exact interval, shared oracle pool, or cumulative sample counts).

New backends register with :func:`register_backend`; dispatch rules
live in :func:`resolve_backend`.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.core.dataset import Dataset
from repro.core.md import GetNextMD, verify_stability_md
from repro.core.randomized import GetNextRandomized, RankingKind
from repro.core.ranking import Ranking
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.core.twod import GetNext2D, verify_stability_2d
from repro.core.twod_topk import enumerate_topk_2d, verify_topk_2d
from repro.errors import ExhaustedError
from repro.sampling.oracle import StabilityOracle

__all__ = [
    "StabilityBackend",
    "register_backend",
    "get_backend_cls",
    "create_backend",
    "available_backends",
    "resolve_backend",
    "DEFAULT_BUDGET",
    "MD_ITEM_LIMIT",
]

#: Per-call sample budget used when a randomized backend's ``get_next``
#: is invoked without an explicit ``budget`` or ``error`` (the paper's
#: first-call protocol uses 5,000).
DEFAULT_BUDGET = 5_000

#: Above this many items the lazy arrangement's shared pool and split
#: bookkeeping stop paying off and auto-dispatch prefers sampling (the
#: section 6.3 guidance).
MD_ITEM_LIMIT = 1_000


@runtime_checkable
class StabilityBackend(Protocol):
    """What every registered backend provides."""

    name: str
    dataset: Dataset
    region: RegionOfInterest
    #: Ranking kinds the backend can answer ("full", "topk_ranked",
    #: "topk_set"); defaulted to ("full",) by :func:`register_backend`.
    supports_kinds: tuple[str, ...]

    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        """The next most stable not-yet-returned ranking."""
        ...

    def stability_of(self, ranking) -> StabilityResult:
        """Stability of one explicit ranking (Problem 1)."""
        ...

    def __iter__(self) -> Iterator[StabilityResult]: ...


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator adding a backend to the dispatch registry."""

    def decorate(cls: type) -> type:
        cls.name = name
        if not hasattr(cls, "supports_kinds"):
            cls.supports_kinds = ("full",)
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend_cls(name: str) -> type:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def create_backend(name: str, dataset: Dataset, **options) -> StabilityBackend:
    """Instantiate a registered backend by name."""
    return get_backend_cls(name)(dataset, **options)


def resolve_backend(
    dataset: Dataset,
    *,
    kind: RankingKind = "full",
    budget: int | None = None,
    md_item_limit: int = MD_ITEM_LIMIT,
) -> str:
    """Auto-dispatch on ``(d, n, kind, budget)``.

    - partial (top-k) rankings are exact in 2D (the annotated kinetic
      sweep of :mod:`repro.core.twod_topk`); beyond 2D only the
      randomized operator supports them;
    - ``d = 2`` is exact and cheap — always a sweep;
    - an explicit sampling ``budget`` signals a Monte-Carlo workflow;
    - otherwise the arrangement up to ``md_item_limit`` items, sampling
      beyond it.
    """
    if kind != "full":
        return "twod_topk" if dataset.n_attributes == 2 else "randomized"
    if dataset.n_attributes == 2:
        return "twod_exact"
    if budget is not None:
        return "randomized"
    if dataset.n_items <= md_item_limit:
        return "md_arrangement"
    return "randomized"


def _as_ranking(ranking, n_items: int) -> Ranking:
    if isinstance(ranking, Ranking):
        return ranking
    return Ranking(ranking, n_items=n_items)


class _IterMixin:
    def __iter__(self) -> Iterator[StabilityResult]:
        while True:
            try:
                yield self.get_next()
            except ExhaustedError:
                return

    @property
    def raw(self):
        """The wrapped algorithm object (``GetNext2D`` / ``GetNextMD`` /
        ``GetNextRandomized``), for algorithm-specific introspection."""
        return self._engine


@register_backend("twod_exact")
class TwoDExactBackend(_IterMixin):
    """Exact angle-sweep backend (Algorithms 1-3); requires ``d = 2``."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        method: str = "auto",
    ):
        # rng/confidence accepted for signature uniformity; the sweep is
        # deterministic and exact.
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(2)
        self._engine = GetNext2D(dataset, region=self.region, method=method)

    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        return self._engine.get_next()

    def stability_of(self, ranking) -> StabilityResult:
        return verify_stability_2d(
            self.dataset,
            _as_ranking(ranking, self.dataset.n_items),
            region=self.region,
        )


@register_backend("md_arrangement")
class MDArrangementBackend(_IterMixin):
    """Lazy hyperplane-arrangement backend (Algorithm 6) for ``d >= 2``."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        n_samples: int = 100_000,
        min_split_samples: int = 1,
    ):
        self.dataset = dataset
        self.region = (
            region if region is not None else FullSpace(dataset.n_attributes)
        )
        self.confidence = confidence
        self._rng = rng if rng is not None else np.random.default_rng()
        self._n_samples = n_samples
        self._min_split_samples = min_split_samples
        # The arrangement (hyperplane detection + shared pool) is built
        # lazily: verification-only workloads never pay for it.
        self._engine: GetNextMD | None = None
        self._oracle: StabilityOracle | None = None

    def _ensure_engine(self) -> GetNextMD:
        if self._engine is None:
            self._engine = GetNextMD(
                self.dataset,
                region=self.region,
                n_samples=self._n_samples,
                rng=self._rng,
                confidence=self.confidence,
                min_split_samples=self._min_split_samples,
            )
        return self._engine

    @property
    def raw(self) -> GetNextMD:
        return self._ensure_engine()

    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        return self._ensure_engine().get_next()

    def stability_of(self, ranking) -> StabilityResult:
        if self._oracle is None:
            if self._engine is not None:
                # Reuse the arrangement's shared pool so verification is
                # consistent with enumeration estimates (section 5.4).
                pool = self._engine.arrangement.samples
            else:
                pool = self.region.sample(self._n_samples, self._rng)
            self._oracle = StabilityOracle(pool)
        return verify_stability_md(
            self.dataset,
            _as_ranking(ranking, self.dataset.n_items),
            region=self.region,
            oracle=self._oracle,
            confidence=self.confidence,
        )


@register_backend("twod_topk")
class TwoDTopkBackend(_IterMixin):
    """Exact top-k backend for ``d = 2`` (the annotated kinetic sweep).

    Wraps :mod:`repro.core.twod_topk`: the first ``get_next`` runs one
    sweep enumerating every feasible top-k outcome with its exact
    stability, then results stream best-first from the cached list.
    The randomized stopping parameters (``budget`` / ``error``) are
    accepted and ignored, like the other exact backends.
    """

    supports_kinds = ("topk_ranked", "topk_set")

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        kind: RankingKind = "topk_set",
        k: int | None = None,
    ):
        # rng/confidence accepted for signature uniformity; the sweep is
        # deterministic and exact.
        if dataset.n_attributes != 2:
            raise ValueError(
                f"twod_topk requires d = 2, got d = {dataset.n_attributes}"
            )
        if kind not in self.supports_kinds:
            raise ValueError(
                f"twod_topk serves top-k kinds {self.supports_kinds}, "
                f"got kind={kind!r}"
            )
        if k is None or not 1 <= k <= dataset.n_items:
            raise ValueError(
                f"top-k kinds require 1 <= k <= {dataset.n_items}, got {k}"
            )
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(2)
        self.kind: RankingKind = kind
        self.k = int(k)
        self._results: list[StabilityResult] | None = None
        self._pos = 0

    @property
    def _sweep_kind(self) -> str:
        return "set" if self.kind == "topk_set" else "ranked"

    def _ensure_results(self) -> list[StabilityResult]:
        if self._results is None:
            self._results = enumerate_topk_2d(
                self.dataset, self.k, region=self.region, kind=self._sweep_kind
            )
        return self._results

    @property
    def raw(self):
        """The backend itself — the sweep has no separate engine object."""
        return self

    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        results = self._ensure_results()
        if self._pos >= len(results):
            raise ExhaustedError(
                "every feasible top-k outcome has been returned"
            )
        result = results[self._pos]
        self._pos += 1
        return result

    def stability_of(self, ranking) -> StabilityResult:
        return verify_topk_2d(
            self.dataset, ranking, region=self.region, kind=self._sweep_kind
        )


@register_backend("randomized")
class RandomizedBackend(_IterMixin):
    """Monte-Carlo backend (Algorithms 7-8); the only one supporting
    partial (top-k) rankings beyond two dimensions, running on the
    vectorized kernel."""

    supports_kinds = ("full", "topk_ranked", "topk_set")

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        kind: RankingKind = "full",
        k: int | None = None,
        scoring_chunk: int | None = None,
        prune_topk: bool | None = None,
        skyband=None,
        kernel_backend=None,
        sampling: str = "mc",
    ):
        self.dataset = dataset
        self.region = (
            region if region is not None else FullSpace(dataset.n_attributes)
        )
        self._engine = GetNextRandomized(
            dataset,
            region=self.region,
            kind=kind,
            k=k,
            rng=rng,
            confidence=confidence,
            scoring_chunk=scoring_chunk,
            prune_topk=prune_topk,
            skyband=skyband,
            kernel_backend=kernel_backend,
            sampling=sampling,
        )

    @property
    def total_samples(self) -> int:
        return self._engine.total_samples

    def observe(self, n_new: int) -> None:
        """Grow the cumulative sample pool without returning a result."""
        self._engine.observe(n_new)

    def next_from_pool(self) -> StabilityResult:
        """Consume the best unreturned ranking of the current pool."""
        return self._engine.next_from_pool()

    def export_state(self) -> dict:
        """Serializable pool state (tally, rng, return cursor, chunking).

        The snapshot subsystem (:mod:`repro.service.persist`) calls this
        where the pool handle lives; see
        :meth:`~repro.core.randomized.GetNextRandomized.export_state`.
        """
        return self._engine.export_state()

    def restore_state(self, state: dict) -> None:
        """Adopt an exported pool state (same dataset, same kind/k)."""
        self._engine.restore_state(state)

    def top_from_pool(self, m: int) -> list[StabilityResult]:
        """The ``m`` most frequent pool rankings, best first (non-consuming)."""
        return self._engine.top_from_pool(m)

    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        if budget is None and error is None:
            budget = DEFAULT_BUDGET
        return self._engine.get_next(budget=budget, error=error)

    def stability_of(self, ranking, **options) -> StabilityResult:
        return self._engine.stability_of(ranking, **options)
