"""The :class:`StabilityEngine` facade — the library's front door.

One object answers the paper's three problems over any dataset without
the caller choosing an algorithm family:

>>> import numpy as np
>>> from repro import Dataset, StabilityEngine
>>> data = Dataset(np.array([[0.63, 0.71], [0.83, 0.65], [0.58, 0.78],
...                          [0.70, 0.68], [0.53, 0.82]]))
>>> engine = StabilityEngine(data)
>>> engine.backend_name
'twod_exact'
>>> best = engine.get_next()
>>> 0.0 < best.stability <= 1.0
True

Dispatch follows :func:`repro.engine.backends.resolve_backend`:
``d = 2`` goes to the exact sweeps (the annotated top-k sweep for
partial-ranking kinds), small ``d > 2`` instances to the lazy
arrangement, and everything else (partial kinds beyond 2D, large ``n``,
or an explicit sampling budget) to the randomized operator.  Pass
``backend="..."`` to override.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.dataset import Dataset
from repro.core.randomized import RankingKind
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.engine.backends import (
    DEFAULT_BUDGET,
    StabilityBackend,
    available_backends,
    create_backend,
    get_backend_cls,
    resolve_backend,
)
from repro.errors import ExhaustedError

__all__ = ["StabilityEngine"]


class StabilityEngine:
    """Unified dispatching facade over the three stability backends.

    Parameters
    ----------
    dataset:
        The database (any ``n``, ``d``).
    region:
        Region of interest ``U*``; defaults to the full function space.
    backend:
        ``"auto"`` (default) dispatches on ``(d, n, kind, budget)``;
        otherwise one of :func:`repro.engine.backends.available_backends`
        (``"twod_exact"``, ``"md_arrangement"``, ``"randomized"``).
    kind:
        ``"full"`` for complete rankings, ``"topk_ranked"`` /
        ``"topk_set"`` for the partial notions (randomized backend
        only); ``k`` gives the prefix size.
    budget:
        Default per-call sample budget for randomized ``get_next``
        calls; also a dispatch hint (an explicit budget selects the
        randomized backend for ``d > 2`` under ``backend="auto"``).
    rng, confidence:
        Source of randomness and confidence level for Monte-Carlo
        backends.
    **backend_options:
        Forwarded verbatim to the chosen backend's constructor (e.g.
        ``method=`` for the 2D sweep, ``n_samples=`` for the
        arrangement, ``scoring_chunk=`` for the randomized kernel).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        backend: str = "auto",
        kind: RankingKind = "full",
        k: int | None = None,
        budget: int | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        **backend_options,
    ):
        self.dataset = dataset
        self.region = (
            region if region is not None else FullSpace(dataset.n_attributes)
        )
        self.kind: RankingKind = kind
        self.k = k
        self.budget = budget
        if backend == "auto":
            backend = resolve_backend(dataset, kind=kind, budget=budget)
        elif backend not in available_backends():
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"available: {', '.join(available_backends())} (or 'auto')"
            )
        supported = getattr(get_backend_cls(backend), "supports_kinds", ("full",))
        if kind not in supported:
            raise ValueError(
                f"kind={kind!r} is not supported by backend {backend!r} "
                f"(supports: {', '.join(supported)})"
            )
        if kind != "full":
            backend_options.setdefault("kind", kind)
            backend_options.setdefault("k", k)
        self._backend: StabilityBackend = create_backend(
            backend,
            dataset,
            region=self.region,
            rng=rng,
            confidence=confidence,
            **backend_options,
        )

    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """Name of the backend serving this engine."""
        return self._backend.name

    @property
    def backend(self) -> StabilityBackend:
        """The underlying backend, for algorithm-specific introspection."""
        return self._backend

    # ------------------------------------------------------------------
    def get_next(
        self, *, budget: int | None = None, error: float | None = None
    ) -> StabilityResult:
        """The next most stable not-yet-returned ranking (Problem 3).

        ``budget`` / ``error`` configure the randomized stopping rules
        (Algorithms 7/8) and are ignored by the exact backends; with
        neither given, the engine-level default ``budget`` applies.

        Raises
        ------
        ExhaustedError
            Once every feasible (observed) ranking has been returned.
        """
        if budget is None and error is None:
            budget = self.budget
        return self._backend.get_next(budget=budget, error=error)

    def stability_of(self, ranking, **options) -> StabilityResult:
        """Stability of one explicit ranking (Problem 1).

        Accepts a :class:`~repro.core.ranking.Ranking` or a plain
        identifier sequence (for ``kind="topk_set"``, any iterable of
        the set's members).  ``options`` are backend-specific (e.g.
        ``min_samples=`` for the randomized backend).
        """
        return self._backend.stability_of(ranking, **options)

    def top_stable(
        self,
        m: int,
        *,
        min_stability: float = 0.0,
        budget_first: int | None = None,
        budget_rest: int | None = None,
    ) -> list[StabilityResult]:
        """The ``m`` most stable rankings (Problem 2's top-h form).

        Drives :meth:`get_next` with the paper's budget schedule for
        randomized backends (defaults 5,000 then 1,000 samples per
        call), stopping early on exhaustion or the first result below
        ``min_stability``.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if budget_first is not None:
            first = budget_first
        elif self.budget is not None:
            first = self.budget
        else:
            first = DEFAULT_BUDGET
        rest = budget_rest if budget_rest is not None else max(first // 5, 1)
        results: list[StabilityResult] = []
        for i in range(m):
            try:
                result = self.get_next(budget=first if i == 0 else rest)
            except ExhaustedError:
                break
            if result.stability < min_stability:
                break
            results.append(result)
        return results

    def __iter__(self) -> Iterator[StabilityResult]:
        return iter(self._backend)

    def __repr__(self) -> str:
        return (
            f"StabilityEngine(n={self.dataset.n_items}, "
            f"d={self.dataset.n_attributes}, backend={self.backend_name!r}, "
            f"kind={self.kind!r})"
        )
