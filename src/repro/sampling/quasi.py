"""Quasi-Monte-Carlo function sampling (a variance-reduction ablation).

The paper's stability oracle (Algorithm 12) estimates region volumes
with plain Monte-Carlo, whose error decays as ``N^{-1/2}``.  Because
the function space is a low-dimensional manifold (``d - 1`` intrinsic
dimensions), a low-discrepancy point set can estimate the same volumes
with visibly lower error at equal budget — the classical
``O(log^s N / N)`` Koksma-Hlawka behaviour.  This module provides:

- :func:`halton` — the Halton low-discrepancy sequence, optionally
  with a Cranley-Patterson random shift so independent replications
  remain unbiased;
- :func:`quasi_cap_points` — a Halton-driven version of the paper's
  inverse-CDF cap sampler (Algorithm 11): the colatitude uses the
  exact sin-power inverse CDF, the cross-section direction uses the
  hierarchical spherical-angle inverse CDFs;
- :func:`quasi_orthant_points` — low-discrepancy points on the first
  orthant of the unit sphere (the full function space ``U``), obtained
  by folding a full-sphere point set through coordinate reflection.

``benchmarks/bench_ablation_quasi_mc.py`` compares estimator spread
against plain Monte-Carlo on regions of known exact stability; the
property tests check that the points land in the right region and that
their empirical colatitude law matches the analytic CDF.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.geometry.rotation import rotation_matrix_to_ray
from repro.geometry.spherical import inverse_cap_cdf

__all__ = [
    "halton",
    "quasi_cap_points",
    "quasi_orthant_points",
    "QuasiStream",
]

_FIRST_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
)


def _radical_inverse(indices: np.ndarray, base: int) -> np.ndarray:
    """Van der Corput radical inverse of each index in the given base."""
    result = np.zeros(indices.shape[0], dtype=np.float64)
    factor = 1.0 / base
    remaining = indices.copy()
    while np.any(remaining > 0):
        result += factor * (remaining % base)
        remaining //= base
        factor /= base
    return result


def halton(
    n: int,
    dim: int,
    *,
    start: int = 1,
    shift: np.ndarray | None = None,
) -> np.ndarray:
    """The first ``n`` Halton points in ``[0, 1)^dim``.

    Parameters
    ----------
    n:
        Number of points.
    dim:
        Dimension; at most ``len(_FIRST_PRIMES)`` (20), far beyond the
        paper's d <= 5 regime.
    start:
        First sequence index (1-based; index 0 is the degenerate origin
        and is skipped by default).
    shift:
        Optional Cranley-Patterson rotation: a length-``dim`` vector
        added modulo 1, turning the deterministic sequence into an
        unbiased randomised QMC estimator across replications.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 1 <= dim <= len(_FIRST_PRIMES):
        raise ValueError(f"dim must be in [1, {len(_FIRST_PRIMES)}], got {dim}")
    indices = np.arange(start, start + n, dtype=np.int64)
    points = np.stack(
        [_radical_inverse(indices, _FIRST_PRIMES[j]) for j in range(dim)], axis=1
    )
    if shift is not None:
        offset = np.asarray(shift, dtype=np.float64)
        if offset.shape != (dim,):
            raise ValueError(f"shift must have shape ({dim},), got {offset.shape}")
        points = (points + offset) % 1.0
    return points


def _inverse_sin_power_cdf(y: np.ndarray, power: int) -> np.ndarray:
    """Inverse CDF of the density ``sin^power`` on the full ``[0, pi]``.

    The cap machinery of :mod:`repro.geometry.spherical` stops at
    ``theta = pi/2`` (the orthant never needs more); polar angles of a
    full sphere run to ``pi``, so this helper splits the range at the
    equator and applies the regularized-incomplete-beta inverse on each
    symmetric half.
    """
    ys = np.clip(np.asarray(y, dtype=np.float64), 0.0, 1.0)
    a = (power + 1) / 2.0
    lower = ys <= 0.5
    out = np.empty_like(ys)
    s2_low = special.betaincinv(a, 0.5, 2.0 * ys[lower])
    out[lower] = np.arcsin(np.sqrt(np.clip(s2_low, 0.0, 1.0)))
    s2_high = special.betaincinv(a, 0.5, 2.0 * (1.0 - ys[~lower]))
    out[~lower] = math.pi - np.arcsin(np.sqrt(np.clip(s2_high, 0.0, 1.0)))
    return out


def _sphere_from_cube(cube: np.ndarray) -> np.ndarray:
    """Map ``[0,1)^(m-1)`` points onto the unit sphere ``S^(m-1)``.

    Uses the hierarchical spherical-angle parametrisation: angle ``i``
    (0-based) of ``m - 2`` polar angles has density proportional to
    ``sin^(m-2-i)`` on ``[0, pi]`` — inverted through the same
    regularized-incomplete-beta machinery as the cap sampler — and the
    final azimuthal angle is uniform on ``[0, 2 pi)``.
    """
    n, coords = cube.shape
    m = coords + 1  # ambient dimension of the sphere
    if m == 1:
        raise ValueError("sphere dimension must be at least 1 (m >= 2)")
    if m == 2:
        angle = 2.0 * math.pi * cube[:, 0]
        return np.stack([np.cos(angle), np.sin(angle)], axis=1)
    angles = np.empty((n, m - 1))
    for i in range(m - 2):
        angles[:, i] = _inverse_sin_power_cdf(cube[:, i], m - 2 - i)
    angles[:, m - 2] = 2.0 * math.pi * cube[:, m - 2]
    # Cartesian assembly: x_i = (prod_{j<i} sin a_j) * cos a_i, last uses sin.
    out = np.empty((n, m))
    sin_prod = np.ones(n)
    for i in range(m - 1):
        out[:, i] = sin_prod * np.cos(angles[:, i])
        sin_prod = sin_prod * np.sin(angles[:, i])
    out[:, m - 1] = sin_prod
    return out


def cap_cube_coords(d: int) -> int:
    """Halton dimensions the cap construction consumes for ambient ``d``."""
    return max(d - 1, 1) if d > 2 else 2


def quasi_cap_points(
    ray: np.ndarray,
    theta: float,
    n: int,
    *,
    rng: np.random.Generator | None = None,
    start: int = 1,
    shift: np.ndarray | None = None,
) -> np.ndarray:
    """Low-discrepancy uniform points on the cap of ``theta`` around ``ray``.

    The Halton coordinates drive the same two-stage construction as
    Algorithm 11: coordinate 0 becomes the colatitude via the exact
    inverse CDF, the remaining coordinates the cross-section direction.
    When ``rng`` is given, a Cranley-Patterson shift randomises the
    sequence (unbiased across replications); an explicit ``shift``
    pins the randomisation instead, and ``start`` is the first Halton
    index — together they let a resumable stream (:class:`QuasiStream`)
    continue one sequence across calls, chunk boundaries invisible.
    """
    direction = np.asarray(ray, dtype=np.float64)
    d = direction.shape[0]
    if d < 2:
        raise ValueError("cap sampling requires dimension >= 2")
    if not 0.0 < theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in (0, pi/2], got {theta}")
    n_coords = cap_cube_coords(d)
    if shift is None and rng is not None:
        shift = rng.uniform(0.0, 1.0, size=n_coords)
    cube = halton(n, n_coords, start=start, shift=shift)
    colat = np.asarray(inverse_cap_cdf(cube[:, 0], theta, d))
    if d == 2:
        signs = np.where(cube[:, 1] < 0.5, -1.0, 1.0)
        local = np.stack([np.sin(colat) * signs, np.cos(colat)], axis=1)
    else:
        shell = _sphere_from_cube(cube[:, 1:])  # points on S^(d-2)
        local = np.concatenate(
            [shell * np.sin(colat)[:, None], np.cos(colat)[:, None]], axis=1
        )
    return local @ rotation_matrix_to_ray(direction).T


def quasi_orthant_points(
    dim: int,
    n: int,
    *,
    rng: np.random.Generator | None = None,
    start: int = 1,
    shift: np.ndarray | None = None,
) -> np.ndarray:
    """Low-discrepancy uniform points on the orthant section of the sphere.

    A uniform point on the full sphere reflected into the first orthant
    (coordinate-wise absolute value) is uniform on the orthant section
    — the sphere is tiled by the ``2^d`` reflected copies — so the
    full-sphere Halton construction folds directly onto the paper's
    function space ``U``.  ``start`` / an explicit ``shift`` continue
    one randomised sequence across calls (see :func:`quasi_cap_points`).
    """
    if dim < 2:
        raise ValueError(f"dimension must be >= 2, got {dim}")
    n_coords = dim - 1
    if shift is None and rng is not None:
        shift = rng.uniform(0.0, 1.0, size=n_coords)
    cube = halton(n, n_coords, start=start, shift=shift)
    return np.abs(_sphere_from_cube(cube))


class QuasiStream:
    """A resumable randomised-QMC weight stream over one region.

    Wraps the quasi samplers for use as the randomized operator's
    sampling source: one Cranley-Patterson shift is drawn from the
    operator's rng at construction (so replications with different
    seeds stay unbiased and independent), and a running Halton index
    makes successive :meth:`sample` calls continue a *single*
    low-discrepancy sequence — the chunk decomposition of an observe
    pass is invisible to the point set, exactly as the plain-MC rng
    stream is.

    Supported regions: the full function space (orthant folding) and
    cones whose cap stays inside the non-negative orthant (the exact
    inverse-CDF construction).  A cap that leaves the orthant — or a
    constraint-defined region — needs acceptance-rejection, which has
    no fixed per-point Halton cost, so those regions reject ``qmc``
    sampling up front instead of silently estimating the wrong measure.
    """

    __slots__ = ("region", "_index", "_shift")

    def __init__(self, region, *, shift: np.ndarray, index: int = 1):
        self._check_region(region)
        self.region = region
        expected = self.coords_for(region)
        shift = np.asarray(shift, dtype=np.float64)
        if shift.shape != (expected,):
            raise ValueError(
                f"shift must have shape ({expected},), got {shift.shape}"
            )
        if int(index) < 1:
            raise ValueError(f"index must be >= 1, got {index}")
        self._shift = shift
        self._index = int(index)

    # -- region support -------------------------------------------------
    @staticmethod
    def _check_region(region) -> None:
        from repro.core.region import Cone, FullSpace

        if isinstance(region, FullSpace):
            return
        if isinstance(region, Cone):
            if region._needs_orthant_check:
                raise ValueError(
                    "qmc sampling requires a cap contained in the "
                    "non-negative orthant; this cone needs rejection "
                    "(use sampling='mc')"
                )
            return
        raise ValueError(
            f"qmc sampling supports FullSpace and Cone regions, "
            f"got {type(region).__name__}"
        )

    @staticmethod
    def coords_for(region) -> int:
        """Halton dimensions the stream consumes for ``region``."""
        from repro.core.region import Cone

        if isinstance(region, Cone):
            return cap_cube_coords(region.dim)
        return region.dim - 1

    @classmethod
    def for_region(cls, region, rng: np.random.Generator) -> "QuasiStream":
        """A fresh stream with its shift drawn from ``rng`` (one draw)."""
        cls._check_region(region)
        shift = rng.uniform(0.0, 1.0, size=cls.coords_for(region))
        return cls(region, shift=shift)

    # -- sampling -------------------------------------------------------
    @property
    def index(self) -> int:
        """The next Halton index this stream will consume (1-based)."""
        return self._index

    def sample(self, n: int) -> np.ndarray:
        """The next ``n`` stream points as ``(n, d)`` weight rows."""
        from repro.core.region import Cone

        if n <= 0:
            return np.empty((0, self.region.dim))
        if isinstance(self.region, Cone):
            points = quasi_cap_points(
                self.region.ray,
                self.region.theta,
                n,
                start=self._index,
                shift=self._shift,
            )
        else:
            points = quasi_orthant_points(
                self.region.dim, n, start=self._index, shift=self._shift
            )
        self._index += n
        return points

    # -- durable state --------------------------------------------------
    def export_state(self) -> dict:
        """Mid-stream state: the shift and the next Halton index."""
        return {"index": self._index, "shift": self._shift.tolist()}

    @classmethod
    def restore(cls, region, state: dict) -> "QuasiStream":
        """Rebuild a stream mid-sequence from :meth:`export_state`."""
        return cls(
            region,
            shift=np.asarray(state["shift"], dtype=np.float64),
            index=int(state["index"]),
        )
