"""Quasi-Monte-Carlo function sampling (a variance-reduction ablation).

The paper's stability oracle (Algorithm 12) estimates region volumes
with plain Monte-Carlo, whose error decays as ``N^{-1/2}``.  Because
the function space is a low-dimensional manifold (``d - 1`` intrinsic
dimensions), a low-discrepancy point set can estimate the same volumes
with visibly lower error at equal budget — the classical
``O(log^s N / N)`` Koksma-Hlawka behaviour.  This module provides:

- :func:`halton` — the Halton low-discrepancy sequence, optionally
  with a Cranley-Patterson random shift so independent replications
  remain unbiased;
- :func:`quasi_cap_points` — a Halton-driven version of the paper's
  inverse-CDF cap sampler (Algorithm 11): the colatitude uses the
  exact sin-power inverse CDF, the cross-section direction uses the
  hierarchical spherical-angle inverse CDFs;
- :func:`quasi_orthant_points` — low-discrepancy points on the first
  orthant of the unit sphere (the full function space ``U``), obtained
  by folding a full-sphere point set through coordinate reflection.

``benchmarks/bench_ablation_quasi_mc.py`` compares estimator spread
against plain Monte-Carlo on regions of known exact stability; the
property tests check that the points land in the right region and that
their empirical colatitude law matches the analytic CDF.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.geometry.rotation import rotation_matrix_to_ray
from repro.geometry.spherical import inverse_cap_cdf

__all__ = [
    "halton",
    "quasi_cap_points",
    "quasi_orthant_points",
]

_FIRST_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
)


def _radical_inverse(indices: np.ndarray, base: int) -> np.ndarray:
    """Van der Corput radical inverse of each index in the given base."""
    result = np.zeros(indices.shape[0], dtype=np.float64)
    factor = 1.0 / base
    remaining = indices.copy()
    while np.any(remaining > 0):
        result += factor * (remaining % base)
        remaining //= base
        factor /= base
    return result


def halton(
    n: int,
    dim: int,
    *,
    start: int = 1,
    shift: np.ndarray | None = None,
) -> np.ndarray:
    """The first ``n`` Halton points in ``[0, 1)^dim``.

    Parameters
    ----------
    n:
        Number of points.
    dim:
        Dimension; at most ``len(_FIRST_PRIMES)`` (20), far beyond the
        paper's d <= 5 regime.
    start:
        First sequence index (1-based; index 0 is the degenerate origin
        and is skipped by default).
    shift:
        Optional Cranley-Patterson rotation: a length-``dim`` vector
        added modulo 1, turning the deterministic sequence into an
        unbiased randomised QMC estimator across replications.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 1 <= dim <= len(_FIRST_PRIMES):
        raise ValueError(f"dim must be in [1, {len(_FIRST_PRIMES)}], got {dim}")
    indices = np.arange(start, start + n, dtype=np.int64)
    points = np.stack(
        [_radical_inverse(indices, _FIRST_PRIMES[j]) for j in range(dim)], axis=1
    )
    if shift is not None:
        offset = np.asarray(shift, dtype=np.float64)
        if offset.shape != (dim,):
            raise ValueError(f"shift must have shape ({dim},), got {offset.shape}")
        points = (points + offset) % 1.0
    return points


def _inverse_sin_power_cdf(y: np.ndarray, power: int) -> np.ndarray:
    """Inverse CDF of the density ``sin^power`` on the full ``[0, pi]``.

    The cap machinery of :mod:`repro.geometry.spherical` stops at
    ``theta = pi/2`` (the orthant never needs more); polar angles of a
    full sphere run to ``pi``, so this helper splits the range at the
    equator and applies the regularized-incomplete-beta inverse on each
    symmetric half.
    """
    ys = np.clip(np.asarray(y, dtype=np.float64), 0.0, 1.0)
    a = (power + 1) / 2.0
    lower = ys <= 0.5
    out = np.empty_like(ys)
    s2_low = special.betaincinv(a, 0.5, 2.0 * ys[lower])
    out[lower] = np.arcsin(np.sqrt(np.clip(s2_low, 0.0, 1.0)))
    s2_high = special.betaincinv(a, 0.5, 2.0 * (1.0 - ys[~lower]))
    out[~lower] = math.pi - np.arcsin(np.sqrt(np.clip(s2_high, 0.0, 1.0)))
    return out


def _sphere_from_cube(cube: np.ndarray) -> np.ndarray:
    """Map ``[0,1)^(m-1)`` points onto the unit sphere ``S^(m-1)``.

    Uses the hierarchical spherical-angle parametrisation: angle ``i``
    (0-based) of ``m - 2`` polar angles has density proportional to
    ``sin^(m-2-i)`` on ``[0, pi]`` — inverted through the same
    regularized-incomplete-beta machinery as the cap sampler — and the
    final azimuthal angle is uniform on ``[0, 2 pi)``.
    """
    n, coords = cube.shape
    m = coords + 1  # ambient dimension of the sphere
    if m == 1:
        raise ValueError("sphere dimension must be at least 1 (m >= 2)")
    if m == 2:
        angle = 2.0 * math.pi * cube[:, 0]
        return np.stack([np.cos(angle), np.sin(angle)], axis=1)
    angles = np.empty((n, m - 1))
    for i in range(m - 2):
        angles[:, i] = _inverse_sin_power_cdf(cube[:, i], m - 2 - i)
    angles[:, m - 2] = 2.0 * math.pi * cube[:, m - 2]
    # Cartesian assembly: x_i = (prod_{j<i} sin a_j) * cos a_i, last uses sin.
    out = np.empty((n, m))
    sin_prod = np.ones(n)
    for i in range(m - 1):
        out[:, i] = sin_prod * np.cos(angles[:, i])
        sin_prod = sin_prod * np.sin(angles[:, i])
    out[:, m - 1] = sin_prod
    return out


def quasi_cap_points(
    ray: np.ndarray,
    theta: float,
    n: int,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Low-discrepancy uniform points on the cap of ``theta`` around ``ray``.

    The Halton coordinates drive the same two-stage construction as
    Algorithm 11: coordinate 0 becomes the colatitude via the exact
    inverse CDF, the remaining coordinates the cross-section direction.
    When ``rng`` is given, a Cranley-Patterson shift randomises the
    sequence (unbiased across replications); otherwise the point set is
    deterministic.
    """
    direction = np.asarray(ray, dtype=np.float64)
    d = direction.shape[0]
    if d < 2:
        raise ValueError("cap sampling requires dimension >= 2")
    if not 0.0 < theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in (0, pi/2], got {theta}")
    n_coords = max(d - 1, 1) if d > 2 else 2
    shift = rng.uniform(0.0, 1.0, size=n_coords) if rng is not None else None
    cube = halton(n, n_coords, shift=shift)
    colat = np.asarray(inverse_cap_cdf(cube[:, 0], theta, d))
    if d == 2:
        signs = np.where(cube[:, 1] < 0.5, -1.0, 1.0)
        local = np.stack([np.sin(colat) * signs, np.cos(colat)], axis=1)
    else:
        shell = _sphere_from_cube(cube[:, 1:])  # points on S^(d-2)
        local = np.concatenate(
            [shell * np.sin(colat)[:, None], np.cos(colat)[:, None]], axis=1
        )
    return local @ rotation_matrix_to_ray(direction).T


def quasi_orthant_points(
    dim: int,
    n: int,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Low-discrepancy uniform points on the orthant section of the sphere.

    A uniform point on the full sphere reflected into the first orthant
    (coordinate-wise absolute value) is uniform on the orthant section
    — the sphere is tiled by the ``2^d`` reflected copies — so the
    full-sphere Halton construction folds directly onto the paper's
    function space ``U``.
    """
    if dim < 2:
        raise ValueError(f"dimension must be >= 2, got {dim}")
    n_coords = dim - 1
    shift = rng.uniform(0.0, 1.0, size=n_coords) if rng is not None else None
    cube = halton(n, n_coords, shift=shift)
    return np.abs(_sphere_from_cube(cube))
