"""The stability oracle (Algorithm 12, section 5.3).

Ranking regions are convex cones whose exact volume is #P-hard to compute
(Dyer & Frieze), so the paper estimates stability by Monte-Carlo: draw a
pool of uniform samples from the region of interest once, then estimate
the stability of any region as the fraction of pool samples it contains.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.halfspace import ConvexCone
from repro.sampling.montecarlo import confidence_error

__all__ = ["StabilityOracle"]


class StabilityOracle:
    """Monte-Carlo volume-ratio oracle over a fixed sample pool.

    Parameters
    ----------
    samples:
        ``(N, d)`` array of points drawn uniformly at random from the
        region of interest ``U*``.  The pool is shared by every query, so
        estimates of disjoint regions are consistent (they sum to at most
        1 exactly).
    """

    def __init__(self, samples: np.ndarray):
        pool = np.asarray(samples, dtype=np.float64)
        if pool.ndim != 2 or pool.shape[0] == 0:
            raise ValueError("sample pool must be a non-empty (N, d) array")
        self.samples = pool
        self.pool_size = pool.shape[0]
        self.dim = pool.shape[1]

    def stability(self, region: ConvexCone) -> float:
        """Algorithm 12: fraction of the pool inside ``region``."""
        if region.dim != self.dim:
            raise ValueError(f"region dim {region.dim} != pool dim {self.dim}")
        return float(region.contains_all(self.samples).mean())

    def stability_with_error(
        self, region: ConvexCone, *, confidence: float = 0.95
    ) -> tuple[float, float]:
        """Stability estimate plus its confidence error (Equation 10)."""
        s = self.stability(region)
        return s, confidence_error(s, self.pool_size, confidence=confidence)

    def count(self, region: ConvexCone) -> int:
        """Number of pool samples inside ``region``."""
        return int(region.contains_all(self.samples).sum())
