"""Uniform sampling from a hyperspherical cap (Algorithms 10-11).

A hypercone region of interest ``U*`` — "all functions within angle theta
of reference ray rho" — maps onto the spherical cap of colatitude
``theta`` around ``rho``.  A uniform sample on the cap is produced by:

1. drawing the colatitude ``x`` in ``[0, theta]`` with density
   proportional to ``sin^{d-2}(x)`` (the area of the ``(d-1)``-sphere at
   colatitude ``x``) via inverse-CDF sampling (Algorithm 11 lines 1-4);
2. drawing a uniform direction on the ``(d-1)``-sphere of that colatitude
   (Algorithm 11 lines 5-6, by the Marsaglia trick);
3. assembling the point around the ``x_d`` axis and rotating it so the
   cap centre falls on ``rho`` (Algorithm 11 lines 7-8, Appendix A).

Three interchangeable inverse-CDF backends are provided, mirroring the
paper's discussion in section 5.2:

- ``"exact"`` — closed form for d = 2, 3 (Equation 15) and the
  regularized-incomplete-beta inverse for general d (Equation 16 via
  ``scipy.special.betaincinv``);
- ``"riemann"`` — the paper's numeric Riemann-sum table with binary
  search (Algorithms 10-11);
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rotation import rotation_matrix_to_ray
from repro.geometry.spherical import inverse_cap_cdf, riemann_cdf_table
from repro.sampling.uniform import sample_sphere

__all__ = ["CapSampler", "sample_cap"]

_METHODS = ("exact", "riemann")


class CapSampler:
    """Reusable uniform sampler for the cap of angle ``theta`` around ``ray``.

    Precomputes the rotation matrix and (for the Riemann backend) the CDF
    table once, so repeated draws are cheap — this matters because the
    randomized GET-NEXT operator calls the sampler thousands of times.

    Parameters
    ----------
    ray:
        Reference weight vector (the cap centre); any positive scaling.
    theta:
        Cap colatitude in ``(0, pi/2]``.
    method:
        ``"exact"`` (closed forms / betaincinv) or ``"riemann"``
        (Algorithm 10 table + binary search).
    partitions:
        Size of the Riemann table (Algorithm 10's ``gamma``); ignored by
        the exact backend.
    """

    def __init__(
        self,
        ray: np.ndarray,
        theta: float,
        *,
        method: str = "exact",
        partitions: int = 4096,
    ):
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        self.ray = np.asarray(ray, dtype=np.float64)
        self.dim = self.ray.shape[0]
        if self.dim < 2:
            raise ValueError("cap sampling requires dimension >= 2")
        if not 0.0 < theta <= np.pi / 2 + 1e-12:
            raise ValueError(f"theta must be in (0, pi/2], got {theta}")
        self.theta = float(theta)
        self.method = method
        self._rotation = rotation_matrix_to_ray(self.ray)
        self._table = (
            riemann_cdf_table(self.theta, self.dim, partitions)
            if method == "riemann"
            else None
        )
        self._eps = self.theta / partitions if method == "riemann" else 0.0

    # ------------------------------------------------------------------
    def _sample_colatitudes(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw colatitudes in [0, theta] with density ~ sin^{d-2}."""
        y = rng.uniform(0.0, 1.0, size=size)
        if self.method == "exact":
            return np.asarray(inverse_cap_cdf(y, self.theta, self.dim))
        # Algorithm 11 lines 1-4: binary-search the Riemann table, then a
        # uniform offset within the located partition.
        table = self._table
        idx = np.searchsorted(table, y, side="right") - 1
        idx = np.clip(idx, 0, len(table) - 2)
        gaps = table[idx + 1] - table[idx]
        frac = np.where(gaps > 0, (y - table[idx]) / np.where(gaps > 0, gaps, 1.0), 0.0)
        return (idx + frac) * self._eps

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` uniform unit vectors from the cap.

        Returns an ``(size, dim)`` array.  Note the vectors are uniform on
        the *cap*; when the cap pokes out of the non-negative orthant
        (possible for wide caps around off-centre rays), callers who need
        orthant-only functions should compose with rejection — see
        :class:`repro.sampling.rejection.RejectionSampler`.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return np.empty((0, self.dim))
        x = self._sample_colatitudes(size, rng)
        if self.dim == 2:
            # A "cap" on the circle is an arc; colatitude fully determines
            # the point up to the side, chosen uniformly.
            signs = rng.integers(0, 2, size=size) * 2 - 1
            local = np.stack([np.sin(x) * signs, np.cos(x)], axis=1)
        else:
            # Uniform direction on the (d-1)-sphere at colatitude x around
            # the d-th axis (Algorithm 11 lines 5-7).
            shell = sample_sphere(self.dim - 1, size, rng)
            local = np.concatenate(
                [shell * np.sin(x)[:, None], np.cos(x)[:, None]], axis=1
            )
        return local @ self._rotation.T

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single uniform unit vector from the cap."""
        return self.sample(1, rng)[0]


def sample_cap(
    ray: np.ndarray,
    theta: float,
    size: int,
    rng: np.random.Generator,
    *,
    method: str = "exact",
    partitions: int = 4096,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`CapSampler`."""
    return CapSampler(ray, theta, method=method, partitions=partitions).sample(size, rng)
