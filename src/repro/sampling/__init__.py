"""Unbiased function sampling (section 5 of the paper).

Uniform sampling of scoring functions is the engine behind both the
stability oracle (Monte-Carlo volume estimation, Algorithm 12) and the
randomized GET-NEXT operators (section 4.3).  The package provides:

- :mod:`repro.sampling.uniform` — uniform directions on the non-negative
  orthant of the unit d-sphere (Algorithm 9, Muller/Marsaglia trick).
- :mod:`repro.sampling.cap` — uniform directions on a hyperspherical cap
  via inverse-CDF sampling of the colatitude (Algorithms 10-11) in both
  the paper's Riemann-table form and scipy closed forms.
- :mod:`repro.sampling.rejection` — acceptance-rejection sampling for
  constraint-defined regions of interest (section 5.2).
- :mod:`repro.sampling.oracle` — the sample-counting stability oracle
  (Algorithm 12).
- :mod:`repro.sampling.montecarlo` — confidence intervals and expected
  sample-cost formulas (Equations 9-11, Theorem 2).
- :mod:`repro.sampling.quasi` — quasi-Monte-Carlo (Halton) variants of
  the cap and orthant samplers, a variance-reduction ablation.
"""

from repro.sampling.uniform import sample_orthant, sample_sphere
from repro.sampling.cap import CapSampler, sample_cap
from repro.sampling.rejection import RejectionSampler
from repro.sampling.oracle import StabilityOracle
from repro.sampling.montecarlo import (
    confidence_error,
    expected_samples_for_discovery,
    expected_samples_for_error,
    z_score,
)
from repro.sampling.quasi import halton, quasi_cap_points, quasi_orthant_points

__all__ = [
    "sample_orthant",
    "sample_sphere",
    "CapSampler",
    "sample_cap",
    "RejectionSampler",
    "StabilityOracle",
    "confidence_error",
    "expected_samples_for_discovery",
    "expected_samples_for_error",
    "z_score",
    "halton",
    "quasi_cap_points",
    "quasi_orthant_points",
]
