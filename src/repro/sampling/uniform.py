"""Uniform sampling of scoring functions from the full space ``U``.

Algorithm 9 of the paper: draw each weight as the absolute value of a
standard normal and normalise.  Because the multivariate standard normal
is rotation-invariant, the normalised vector is uniform on the sphere's
surface, and taking absolute values folds it uniformly onto the
non-negative orthant — the space ``U`` of all scoring functions.

The paper demonstrates (Figures 3-4) that the naive alternative —
sampling the polar angles uniformly — is *not* uniform for d > 2; the
test-suite's statistical checks reproduce that contrast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_orthant", "sample_sphere", "sample_angles_naive"]


def sample_sphere(dim: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform directions on the full unit ``dim``-sphere surface.

    Marsaglia/Muller method: normalise i.i.d. standard normal vectors.

    Returns an ``(size, dim)`` array of unit vectors.
    """
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    raw = rng.standard_normal((size, dim))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    # A zero vector has probability 0; regenerate defensively if it occurs.
    bad = norms[:, 0] <= 1e-300
    while np.any(bad):
        raw[bad] = rng.standard_normal((int(bad.sum()), dim))
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
        bad = norms[:, 0] <= 1e-300
    return raw / norms


def sample_orthant(dim: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Algorithm 9 (SampleU): uniform scoring functions from ``U``.

    Returns an ``(size, dim)`` array of unit weight vectors with
    non-negative components, uniform on the orthant of the sphere.
    """
    return np.abs(sample_sphere(dim, size, rng))


def sample_angles_naive(dim: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """The *biased* sampler of Figure 3: uniform polar angles.

    Draws each of the ``d - 1`` polar angles uniformly from
    ``[0, pi/2]`` and converts to Cartesian coordinates.  For ``d > 2``
    the resulting directions concentrate near the poles.  Exposed only so
    tests and the documentation can demonstrate the bias the paper warns
    about; never use this for stability estimation.
    """
    from repro.geometry.angles import angles_to_weights_batch

    if dim < 2:
        raise ValueError(f"dimension must be >= 2, got {dim}")
    angles = rng.uniform(0.0, np.pi / 2, size=(size, dim - 1))
    return angles_to_weights_batch(angles)
