"""Monte-Carlo statistics used by the randomized operators (sections 4.4-4.5).

The stability of a ranking ``r`` is the success probability of the
Bernoulli variable "a uniform function generates ``r``" (Equation 8), so
standard normal-approximation machinery applies:

- :func:`confidence_error` — the half-width ``e`` of the confidence
  interval around an estimated stability (Equation 10);
- :func:`expected_samples_for_error` — the expected budget to reach a
  target error (Equation 11);
- :func:`expected_samples_for_discovery` — the geometric-distribution
  expectation and variance of the cost of *observing* a ranking at all
  (Theorem 2).
"""

from __future__ import annotations

import math

from scipy import stats

__all__ = [
    "z_score",
    "confidence_error",
    "expected_samples_for_error",
    "expected_samples_for_discovery",
]


def z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile ``Z(1 - alpha/2)``.

    ``confidence`` is ``1 - alpha``; e.g. ``z_score(0.95) ≈ 1.96``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    return float(stats.norm.ppf(1.0 - alpha / 2.0))


def confidence_error(
    stability: float, n_samples: int, *, confidence: float = 0.95
) -> float:
    """Equation 10: ``e = Z(1-alpha/2) * sqrt(s(1-s)/N)``.

    The half-width of the normal-approximation confidence interval for a
    Bernoulli mean estimated from ``n_samples`` draws.
    """
    if not 0.0 <= stability <= 1.0:
        raise ValueError(f"stability must be in [0, 1], got {stability}")
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    return z_score(confidence) * math.sqrt(stability * (1.0 - stability) / n_samples)


def expected_samples_for_error(
    stability: float, error: float, *, confidence: float = 0.95
) -> int:
    """Equation 11: expected budget to certify ``stability`` within ``error``.

    ``N = s(1-s) (Z/e)^2`` rounded up.  Returns at least 1.
    """
    if error <= 0.0:
        raise ValueError(f"error must be positive, got {error}")
    if not 0.0 <= stability <= 1.0:
        raise ValueError(f"stability must be in [0, 1], got {stability}")
    z = z_score(confidence)
    return max(1, math.ceil(stability * (1.0 - stability) * (z / error) ** 2))


def expected_samples_for_discovery(stability: float) -> tuple[float, float]:
    """Theorem 2: cost of first observing a ranking with stability ``s``.

    The number of uniform draws until a region of probability ``s`` is
    first hit is geometric, with mean ``1/s`` and variance
    ``(1-s)/s^2``.  Returns ``(mean, variance)``.
    """
    if not 0.0 < stability <= 1.0:
        raise ValueError(f"stability must be in (0, 1], got {stability}")
    mean = 1.0 / stability
    variance = (1.0 - stability) / stability**2
    return mean, variance
