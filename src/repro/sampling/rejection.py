"""Acceptance-rejection sampling for regions of interest (section 5.2).

When ``U*`` is given by a set of linear constraints (a convex cone) rather
than a (ray, angle) cap, the paper samples it by proposing from a broader
distribution and discarding proposals outside ``U*``:

1. propose uniformly from the orthant (Algorithm 9), or — when a bounding
   cap for ``U*`` is known — from that cap (Algorithm 11), which raises
   the acceptance rate;
2. accept iff the proposal satisfies every constraint.

The expected number of proposals per accepted sample is ``1/p`` where
``p`` is the volume ratio of ``U*`` to the proposal region, so the
bounding-cap refinement matters exactly when ``U*`` is small.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleRegionError
from repro.geometry.halfspace import ConvexCone
from repro.sampling.cap import CapSampler
from repro.sampling.uniform import sample_orthant

__all__ = ["RejectionSampler"]


class RejectionSampler:
    """Uniform sampler for a constraint-defined region of interest.

    Parameters
    ----------
    cone:
        The region of interest as a :class:`ConvexCone` (its intersection
        with the non-negative orthant is sampled).
    proposal_cap:
        Optional ``(ray, theta)`` pair: propose from this cap instead of
        the whole orthant.  The cap must contain ``cone ∩ orthant``; use
        :meth:`ConvexCone.bounding_cap` to derive one.
    max_attempts_per_sample:
        Safety valve — the expected attempts are ``1/p``; exceeding this
        multiple signals a (near-)empty region.
    """

    def __init__(
        self,
        cone: ConvexCone,
        *,
        proposal_cap: tuple[np.ndarray, float] | None = None,
        max_attempts_per_sample: int = 100_000,
    ):
        self.cone = cone
        self.dim = cone.dim
        self._cap = (
            CapSampler(proposal_cap[0], proposal_cap[1]) if proposal_cap else None
        )
        self.max_attempts_per_sample = int(max_attempts_per_sample)
        self.proposals_made = 0
        self.samples_accepted = 0

    @property
    def acceptance_rate(self) -> float:
        """Empirical acceptance probability so far (1.0 before any draw)."""
        if self.proposals_made == 0:
            return 1.0
        return self.samples_accepted / self.proposals_made

    def _propose(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if self._cap is not None:
            return self._cap.sample(size, rng)
        return sample_orthant(self.dim, size, rng)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` uniform samples from ``cone ∩ orthant``.

        Proposals are drawn in adaptive batches so the method stays
        vectorised even at low acceptance rates.

        Raises
        ------
        InfeasibleRegionError
            If the attempt budget is exhausted — the region is empty or
            vanishingly small relative to the proposal region.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return np.empty((0, self.dim))
        accepted: list[np.ndarray] = []
        remaining = size
        attempts_left = self.max_attempts_per_sample * size
        batch = max(4 * size, 64)
        while remaining > 0:
            if attempts_left <= 0:
                raise InfeasibleRegionError(
                    "rejection sampler exhausted its attempt budget; the "
                    "region of interest is empty or far smaller than the "
                    "proposal region"
                )
            batch = int(min(batch, attempts_left))
            proposals = self._propose(batch, rng)
            self.proposals_made += batch
            attempts_left -= batch
            mask = self.cone.contains_all(proposals)
            # Proposals from a cap can stray outside the orthant; scoring
            # functions must be non-negative (Definition 1).
            mask &= np.all(proposals >= 0.0, axis=1)
            hits = proposals[mask]
            # The acceptance counter tracks every hit (not just the ones
            # kept), so acceptance_rate estimates vol(U*)/vol(proposal).
            self.samples_accepted += hits.shape[0]
            if hits.shape[0] > 0:
                take = hits[:remaining]
                accepted.append(take)
                remaining -= take.shape[0]
                # Grow the batch when acceptance is poor.
                rate = max(hits.shape[0] / batch, 1e-3)
                batch = max(int(remaining / rate) + 16, 64)
            else:
                batch = min(batch * 2, 1 << 20)
        return np.concatenate(accepted, axis=0)

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single sample."""
        return self.sample(1, rng)[0]
