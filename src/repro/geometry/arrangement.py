"""Lazy arrangement of ordering-exchange hyperplanes (sections 4.2, 5.4).

The multi-dimensional GET-NEXT operator works over the *arrangement* of
ordering-exchange hyperplanes restricted to the region of interest: the
dissection of ``U*`` into convex cones, one per feasible ranking
(Theorem 1).  Constructing the whole arrangement costs ``O(n^{2d})``
regions, so Algorithm 6 builds it lazily — always splitting only the
currently most-stable region.

This module supplies the two ingredients the core algorithm composes:

- :class:`ArrangementRegion` — the ``Region`` record of Figure 2: the
  halfspaces ``C`` carved so far, the stability estimate ``S``, the index
  of the first ``pending`` hyperplane, and the sample range
  ``[sb, se)`` into the shared sample pool.
- :class:`Arrangement` — owns the hyperplane list ``H`` and the sample
  pool, and implements ``passThrough`` via the quick-sort partition trick
  of section 5.4: samples of a region occupy a contiguous slice of one
  shared array; splitting a region by a hyperplane partitions the slice in
  place, simultaneously answering the intersection test and updating the
  stability estimates in O(slice length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.halfspace import ConvexCone, Halfspace

__all__ = ["Arrangement", "ArrangementRegion"]


@dataclass
class ArrangementRegion:
    """The ``Region`` data structure of Figure 2.

    Attributes
    ----------
    cone:
        Halfspace constraints accumulated so far (the field ``C``).
    pending:
        Index into the arrangement's hyperplane list of the next
        hyperplane that has not yet been tested against this region.
    sample_begin, sample_end:
        Bounds ``[sb, se)`` of this region's samples within the shared
        pool.  The stability estimate is
        ``(se - sb) / total_samples`` (section 5.4).
    """

    cone: ConvexCone
    pending: int
    sample_begin: int
    sample_end: int
    _depth: int = field(default=0)

    def sample_count(self) -> int:
        return self.sample_end - self.sample_begin

    def stability_estimate(self, total_samples: int) -> float:
        """Monte-Carlo stability: fraction of pool samples in the region."""
        if total_samples <= 0:
            return 0.0
        return self.sample_count() / total_samples


class Arrangement:
    """Lazily constructed arrangement of hyperplanes over a sample pool.

    Parameters
    ----------
    hyperplanes:
        ``(m, d)`` array; row ``k`` is the normal of hyperplane ``H[k]``
        (ordering exchanges, through the origin).
    samples:
        ``(N, d)`` array of points drawn uniformly at random from the
        region of interest.  The array is reordered in place as regions
        split, exactly as section 5.4 describes; do not reuse it outside.
    min_split_samples:
        Regions whose sample slice is smaller than this are never split
        further (their stability estimate would be meaningless anyway).
        The paper implicitly does the same: a hyperplane "does not
        intersect" a region when no sample pair straddles it.
    """

    def __init__(
        self,
        hyperplanes: np.ndarray,
        samples: np.ndarray,
        *,
        min_split_samples: int = 1,
    ):
        self.hyperplanes = np.asarray(hyperplanes, dtype=np.float64)
        if self.hyperplanes.ndim != 2:
            raise ValueError("hyperplanes must be a 2-D array (m, d)")
        self.samples = np.asarray(samples, dtype=np.float64)
        if self.samples.ndim != 2:
            raise ValueError("samples must be a 2-D array (N, d)")
        if self.samples.shape[0] == 0:
            raise ValueError("the sample pool must not be empty")
        if (
            self.hyperplanes.shape[0] > 0
            and self.samples.shape[1] != self.hyperplanes.shape[1]
        ):
            raise ValueError("samples and hyperplanes have mismatched dimension")
        self.min_split_samples = max(1, int(min_split_samples))
        self.total_samples = self.samples.shape[0]
        self._dim = self.samples.shape[1]

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_hyperplanes(self) -> int:
        return self.hyperplanes.shape[0]

    def root_region(self) -> ArrangementRegion:
        """The region covering all of ``U*`` before any split (stability 1)."""
        return ArrangementRegion(
            cone=ConvexCone(dim=self._dim),
            pending=0,
            sample_begin=0,
            sample_end=self.total_samples,
        )

    # ------------------------------------------------------------------
    # The section 5.4 partition primitive
    # ------------------------------------------------------------------
    def partition(
        self, region: ArrangementRegion, hyperplane_index: int
    ) -> tuple[ArrangementRegion, ArrangementRegion] | None:
        """Split ``region`` by hyperplane ``H[k]`` if it passes through.

        Implements ``passThrough`` + split in one step, per section 5.4:
        the samples in the region's slice are partitioned (stable
        two-pointer pass, like quicksort's partition) into the negative
        side followed by the positive side.  If either side is empty the
        hyperplane misses the region and ``None`` is returned; otherwise
        two child regions sharing the parent's slice are returned,
        ``(negative_child, positive_child)``.

        The children's ``pending`` index is ``k + 1`` — they have, by
        construction, already been compared against every earlier
        hyperplane (their parent was).
        """
        k = int(hyperplane_index)
        if not 0 <= k < self.n_hyperplanes:
            raise IndexError(f"hyperplane index {k} out of range")
        sb, se = region.sample_begin, region.sample_end
        if se - sb < 2 * self.min_split_samples:
            return None
        normal = self.hyperplanes[k]
        block = self.samples[sb:se]
        side = block @ normal > 0.0
        n_pos = int(side.sum())
        n_neg = block.shape[0] - n_pos
        if n_pos < self.min_split_samples or n_neg < self.min_split_samples:
            return None
        # Stable partition: negative side first, then positive side.  A
        # stable pass (rather than quicksort's unstable one) keeps the
        # construction deterministic for tests.
        self.samples[sb:se] = np.concatenate([block[~side], block[side]])
        split = sb + n_neg
        neg_hs = Halfspace(tuple(normal), -1)
        pos_hs = Halfspace(tuple(normal), +1)
        left = ArrangementRegion(
            cone=region.cone.with_halfspace(neg_hs),
            pending=k + 1,
            sample_begin=sb,
            sample_end=split,
            _depth=region._depth + 1,
        )
        right = ArrangementRegion(
            cone=region.cone.with_halfspace(pos_hs),
            pending=k + 1,
            sample_begin=split,
            sample_end=se,
            _depth=region._depth + 1,
        )
        return left, right

    def next_intersecting_hyperplane(self, region: ArrangementRegion) -> int | None:
        """Advance ``region.pending`` to the first hyperplane that splits it.

        Returns the hyperplane index, or ``None`` when the region is a
        final cell of the arrangement (no remaining hyperplane passes
        through it).  ``region.pending`` is mutated to skip misses, so the
        scan never re-tests a hyperplane (Algorithm 6 lines 8-16).
        """
        sb, se = region.sample_begin, region.sample_end
        block = self.samples[sb:se]
        while region.pending < self.n_hyperplanes:
            k = region.pending
            side = block @ self.hyperplanes[k] > 0.0
            n_pos = int(side.sum())
            n_neg = block.shape[0] - n_pos
            if n_pos >= self.min_split_samples and n_neg >= self.min_split_samples:
                return k
            region.pending += 1
        return None

    def representative_point(self, region: ArrangementRegion) -> np.ndarray:
        """A scoring function inside the region ("a point in r", Alg. 6).

        Uses the normalised mean direction of the region's samples, which
        lies in the (convex) region; falls back to the first sample if the
        mean degenerates.
        """
        sb, se = region.sample_begin, region.sample_end
        if se <= sb:
            raise ValueError("region has no samples")
        block = self.samples[sb:se]
        centre = block.mean(axis=0)
        norm = float(np.linalg.norm(centre))
        if norm <= 1e-12 or not region.cone.contains(centre):
            centre = block[0]
            norm = float(np.linalg.norm(centre))
        return centre / norm
