"""Geometric substrate for the stable-rankings library.

This package implements the combinatorial-geometry machinery the paper's
algorithms are built on:

- :mod:`repro.geometry.angles` — polar/Cartesian conversion of weight
  vectors, angular distance and cosine similarity (section 2.1.2).
- :mod:`repro.geometry.dual` — the dual space in which each item is a
  hyperplane, and ordering-exchange hyperplanes/angles (Equations 1, 5-7).
- :mod:`repro.geometry.halfspace` — halfspaces, convex cone regions, LP
  feasibility and interior-point queries (sections 4.1-4.2).
- :mod:`repro.geometry.spherical` — hypersphere and hyperspherical-cap
  surface areas and the regularized incomplete beta form of the cap CDF
  (Equations 12-16).
- :mod:`repro.geometry.rotation` — the axis-by-axis rotation matrices of
  Appendix A (Algorithm 13).
- :mod:`repro.geometry.arrangement` — incremental construction of the
  arrangement of ordering-exchange hyperplanes with the sample-partition
  trick of section 5.4.
- :mod:`repro.geometry.minball` — Welzl's smallest enclosing ball and
  the bounding caps it induces for rejection proposals (section 5.2,
  reference [37]).
"""

from repro.geometry.angles import (
    angle_between,
    angles_to_weights,
    cosine_similarity,
    cosine_to_angle,
    angle_to_cosine,
    weights_to_angles,
)
from repro.geometry.dual import (
    dual_hyperplane_value,
    exchange_angle_2d,
    exchange_hyperplane,
    dominates,
)
from repro.geometry.halfspace import Halfspace, ConvexCone
from repro.geometry.rotation import axis_rotation_matrix, rotate_to_ray, rotation_matrix_to_ray
from repro.geometry.spherical import (
    cap_area,
    cap_cdf,
    cap_fraction_of_orthant,
    inverse_cap_cdf,
    sin_power_integral,
    sphere_surface_area,
)
from repro.geometry.arrangement import Arrangement, ArrangementRegion
from repro.geometry.minball import Ball, bounding_cap_of_directions, min_enclosing_ball

__all__ = [
    "angle_between",
    "angles_to_weights",
    "cosine_similarity",
    "cosine_to_angle",
    "angle_to_cosine",
    "weights_to_angles",
    "dual_hyperplane_value",
    "exchange_angle_2d",
    "exchange_hyperplane",
    "dominates",
    "Halfspace",
    "ConvexCone",
    "axis_rotation_matrix",
    "rotate_to_ray",
    "rotation_matrix_to_ray",
    "cap_area",
    "cap_cdf",
    "cap_fraction_of_orthant",
    "inverse_cap_cdf",
    "sin_power_integral",
    "sphere_surface_area",
    "Arrangement",
    "ArrangementRegion",
    "Ball",
    "min_enclosing_ball",
    "bounding_cap_of_directions",
]
