"""Coordinate-system rotations (Appendix A, Algorithm 13).

The cap sampler of Algorithm 11 draws points on a spherical cap centred on
the ``x_d`` axis and must then rotate them so the cap centre falls on the
reference ray ``rho``.  Appendix A composes ``d - 1`` planar (Givens-style)
rotations ``M_{d-1} ... M_1``, each acting on the ``x_1``-``x_{i+1}``
plane, with the last angle replaced by ``pi/2 - rho_{d-1}`` so every
rotation is counterclockwise.

We implement the matrices exactly as in Equation 17 and additionally
provide :func:`rotation_matrix_to_ray`, a robust Householder-based rotation
that maps ``e_d`` onto an arbitrary unit vector — used as a fallback and to
property-test the appendix construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.angles import as_unit_vector

__all__ = [
    "axis_rotation_matrix",
    "rotate_to_ray",
    "rotation_matrix_to_ray",
    "householder_rotation",
]


def axis_rotation_matrix(dim: int, plane_axis: int, angle: float) -> np.ndarray:
    """The matrix ``M_i`` of Equation 17.

    Rotates the ``x_1``-``x_{i+1}`` plane counterclockwise by ``angle``,
    where ``plane_axis = i`` in ``1..d-1``.  All other coordinates are
    fixed.

    Parameters
    ----------
    dim:
        Ambient dimension ``d``.
    plane_axis:
        The ``i`` of ``M_i``; the rotation couples coordinates 1 and
        ``i + 1`` (1-based as in the paper).
    angle:
        Rotation angle ``rho_i`` in radians.
    """
    if not 1 <= plane_axis <= dim - 1:
        raise ValueError(f"plane_axis must be in [1, {dim - 1}], got {plane_axis}")
    m = np.eye(dim)
    c, s = math.cos(angle), math.sin(angle)
    j = plane_axis  # 0-based column of x_{i+1}
    m[0, 0] = c
    m[0, j] = -s
    m[j, 0] = s
    m[j, j] = c
    return m


def rotate_to_ray(vector: np.ndarray, ray: np.ndarray) -> np.ndarray:
    """Algorithm 13: rotate ``vector`` so the ``x_d`` axis maps onto ``ray``.

    ``ray`` is given as a weight vector (any positive scaling); internally
    its ``d - 1`` polar angles ``rho`` are computed, the last one replaced
    by ``pi/2 - rho_{d-1}``, and the planar rotations of Equation 17 are
    applied from ``i = d-1`` down to ``1``.

    The guarantee property-tested in the suite: ``rotate_to_ray(e_d, ray)``
    equals the unit vector of ``ray``, and the map is orthogonal (norms
    and pairwise angles are preserved).
    """
    w = np.asarray(vector, dtype=np.float64)
    ray_arr = np.asarray(ray, dtype=np.float64)
    if ray_arr.shape[0] != w.shape[0]:
        raise ValueError(f"ray dimension {ray_arr.shape[0]} != vector dimension {w.shape[0]}")
    return rotation_matrix_to_ray(ray_arr) @ w


def rotation_matrix_to_ray(ray: np.ndarray) -> np.ndarray:
    """The full ``d x d`` rotation matrix of Algorithm 13.

    Like Appendix A, the matrix is a composition of ``d - 1`` planar
    rotations; we determine each plane's angle constructively (a Givens
    sequence that reduces ``unit(ray)`` to ``e_d``, then inverted) instead
    of trusting the polar-angle bookkeeping of Equation 17, which is
    sign-ambiguous in degenerate configurations.  The result satisfies
    ``M @ e_d == unit(ray)`` and ``M.T @ M == I`` exactly (to float
    precision) for every ray, which is all Algorithm 11 requires.
    """
    u = as_unit_vector(np.asarray(ray, dtype=np.float64))
    d = u.shape[0]
    v = u.copy()
    m = np.eye(d)
    # Fold each coordinate i into coordinate d-1 with a planar rotation;
    # afterwards v == e_d and m maps u onto e_d.  The inverse (transpose)
    # maps e_d back onto u.
    for i in range(d - 1):
        r = math.hypot(v[d - 1], v[i])
        if r <= 1e-300:
            continue
        c = v[d - 1] / r
        s = v[i] / r
        g = np.eye(d)
        g[d - 1, d - 1] = c
        g[d - 1, i] = s
        g[i, d - 1] = -s
        g[i, i] = c
        v = g @ v
        m = g @ m
    return m.T


def householder_rotation(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """An orthogonal matrix with determinant +1 mapping ``source`` to ``target``.

    Composes two Householder reflections: one through the bisector of
    ``source`` and ``target`` (which swaps them), then one through
    ``target`` (fixing it while restoring orientation).  Both inputs are
    normalised first.  Used as the numerically robust fallback of
    :func:`rotation_matrix_to_ray` and as the reference implementation in
    property tests.
    """
    s = as_unit_vector(np.asarray(source, dtype=np.float64))
    t = as_unit_vector(np.asarray(target, dtype=np.float64))
    d = s.shape[0]
    if np.allclose(s, t, atol=1e-15):
        return np.eye(d)
    # Reflection through the hyperplane orthogonal to (s - t) swaps s and t
    # but has determinant -1; composing with a reflection that fixes t
    # restores orientation while keeping the image of s at t.
    v = s - t
    v /= np.linalg.norm(v)
    swap = np.eye(d) - 2.0 * np.outer(v, v)
    u = np.eye(d)[int(np.argmin(np.abs(t)))]
    u = u - t * float(np.dot(u, t))
    u /= np.linalg.norm(u)
    fix_t = np.eye(d) - 2.0 * np.outer(u, u)
    return fix_t @ swap
