"""Smallest enclosing ball (Welzl's algorithm) and spherical bounding caps.

Section 5.2 of the paper tightens acceptance-rejection sampling for a
constraint-defined region of interest: "the bounding sphere [37] for
the base of its d-cone identifies the ray and angle distance that
include U*".  This module provides that machinery:

- :func:`min_enclosing_ball` — the exact smallest ball containing a
  point set, via Welzl's move-to-front recursion (expected linear time
  for fixed ``d``); reference [37] (Fischer, Gärtner & Kutz) is the
  high-dimensional engineering of the same primitive.
- :func:`bounding_cap_of_directions` — converts a set of unit
  directions into a (ray, angle) spherical cap: the enclosing ball of
  the directions is lifted back to the sphere, giving a cap that is
  optimal among caps centred on the ball centre's direction.

:class:`repro.geometry.halfspace.ConvexCone.bounding_cap` consumes
these to propose from a hyperspherical cap (Algorithm 11) instead of
the whole orthant, which is exactly the paper's acceptance-rate
improvement for small ``U*``.
"""

from __future__ import annotations

import math
import sys

import numpy as np

__all__ = [
    "Ball",
    "min_enclosing_ball",
    "bounding_cap_of_directions",
]


class Ball:
    """A closed ball ``{x : |x - centre| <= radius}``."""

    __slots__ = ("centre", "radius")

    def __init__(self, centre: np.ndarray, radius: float):
        self.centre = np.asarray(centre, dtype=np.float64)
        self.radius = float(radius)

    def contains(self, point: np.ndarray, *, tol: float = 1e-9) -> bool:
        """Membership with an absolute tolerance on the radius."""
        gap = float(np.linalg.norm(np.asarray(point, dtype=np.float64) - self.centre))
        return gap <= self.radius + tol

    def contains_all(self, points: np.ndarray, *, tol: float = 1e-9) -> bool:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        gaps = np.linalg.norm(pts - self.centre, axis=1)
        return bool(np.all(gaps <= self.radius + tol))

    def __repr__(self) -> str:
        return f"Ball(centre={self.centre.tolist()}, radius={self.radius:.6g})"


def _ball_from_boundary(boundary: list[np.ndarray], dim: int) -> Ball:
    """The unique smallest ball with all ``boundary`` points on its surface.

    For ``m`` affinely independent boundary points the centre is the
    circumcentre within their affine hull, found by solving the linear
    system expressing equidistance; degenerate (affinely dependent)
    subsets fall back to a least-squares solution, which is harmless —
    Welzl only commits to boundary sets that are genuinely extremal.
    """
    if not boundary:
        return Ball(np.zeros(dim), 0.0)
    base = boundary[0]
    if len(boundary) == 1:
        return Ball(base.copy(), 0.0)
    # Centre = base + A^+ b in the affine frame spanned by the others.
    rows = np.stack([p - base for p in boundary[1:]])  # (m-1, d)
    rhs = 0.5 * np.einsum("ij,ij->i", rows, rows)
    # Solve rows @ x = rhs for the offset x in the row space.
    solution, *_ = np.linalg.lstsq(rows, rhs, rcond=None)
    centre = base + solution
    radius = float(np.linalg.norm(centre - base))
    return Ball(centre, radius)


def min_enclosing_ball(
    points: np.ndarray, *, rng: np.random.Generator | None = None
) -> Ball:
    """Exact smallest enclosing ball of a point set (Welzl, 1991).

    Expected ``O(n)`` for fixed dimension after the initial shuffle.
    The recursion depth is bounded by ``n``, so the recursion limit is
    raised locally for large inputs.

    Parameters
    ----------
    points:
        ``(n, d)`` array, ``n >= 1``.
    rng:
        Shuffle source; a fixed default keeps results reproducible.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if not np.all(np.isfinite(pts)):
        raise ValueError("points must be finite")
    n, dim = pts.shape
    generator = rng if rng is not None else np.random.default_rng(0xB411)
    order = generator.permutation(n)
    shuffled = [pts[i] for i in order]

    def welzl(front: int, boundary: list[np.ndarray]) -> Ball:
        # Boundary saturated at d+1 points: the ball is determined.
        if front == 0 or len(boundary) == dim + 1:
            return _ball_from_boundary(boundary, dim)
        ball = welzl(front - 1, boundary)
        point = shuffled[front - 1]
        if ball.contains(point):
            return ball
        return welzl(front - 1, [*boundary, point])

    # Welzl's recursion depth is bounded by n; raise the limit locally
    # rather than rewriting the classic algorithm iteratively.
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n + 1000))
    try:
        ball = welzl(n, [])
    finally:
        sys.setrecursionlimit(old_limit)
    # Guard against floating-point slack: grow the radius minimally so
    # every input point is inside.
    gaps = np.linalg.norm(pts - ball.centre, axis=1)
    return Ball(ball.centre, max(ball.radius, float(gaps.max())))


def bounding_cap_of_directions(
    directions: np.ndarray, *, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, float]:
    """A (unit ray, angle) spherical cap containing the given directions.

    The directions are normalised onto the unit sphere, their smallest
    enclosing (Euclidean) ball is computed, and the ball centre's
    direction becomes the cap axis; the cap angle is the largest angle
    from the axis to any direction.  Among caps centred on that axis the
    angle is minimal by construction.

    Returns
    -------
    (ray, angle):
        Unit axis and half-angle in ``[0, pi]``.

    Raises
    ------
    ValueError
        If the directions have no consistent hemisphere (enclosing-ball
        centre at the origin), in which case no cap of angle < pi/2
        centred anywhere contains them in a usable way.
    """
    pts = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    norms = np.linalg.norm(pts, axis=1, keepdims=True)
    if np.any(norms <= 0):
        raise ValueError("directions must be non-zero")
    unit = pts / norms
    ball = min_enclosing_ball(unit, rng=rng)
    centre_norm = float(np.linalg.norm(ball.centre))
    if centre_norm <= 1e-12:
        raise ValueError(
            "directions span more than a hemisphere; no bounding cap exists"
        )
    axis = ball.centre / centre_norm
    cosines = np.clip(unit @ axis, -1.0, 1.0)
    angle = float(math.acos(float(cosines.min())))
    return axis, angle
