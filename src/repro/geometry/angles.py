"""Polar-coordinate representation of scoring functions.

Section 2.1.2 of the paper identifies a scoring function ``f_w`` with the
origin-starting ray through its weight vector ``w``.  A ray in ``R^d`` is
described by ``d - 1`` angles ``<theta_1, ..., theta_{d-1}>``, each in
``[0, pi/2]`` because weights are non-negative.  This module implements the
conversion in both directions plus the angular-distance and
cosine-similarity helpers used to specify regions of interest
(section 2.2.2).

The polar convention matches Algorithm 11 and Appendix A of the paper: for
a unit vector ``w`` in ``R^d`` with angles ``<theta_1, ..., theta_{d-1}>``,

``w[d-1] = cos(theta_{d-1})``
``w[i]   = cos(theta_i) * prod_{j > i} sin(theta_j)``   (0 < i < d-1)
``w[0]   = prod_{j >= 1} sin(theta_j)``

The 2D algorithms in the paper instead measure a single angle from the
``x1`` axis with ``w = (cos(theta), sin(theta))``; the two conventions
coincide under ``theta -> pi/2 - theta`` and :mod:`repro.core.twod` uses
the paper's 2D convention directly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidWeightsError

__all__ = [
    "weights_to_angles",
    "angles_to_weights",
    "angles_to_weights_batch",
    "angle_between",
    "cosine_similarity",
    "cosine_to_angle",
    "angle_to_cosine",
    "as_unit_vector",
    "validate_weights",
]


def validate_weights(weights: np.ndarray, *, dim: int | None = None) -> np.ndarray:
    """Validate and canonicalise a weight vector.

    Parameters
    ----------
    weights:
        Array-like of weights.  Must be finite, non-negative, and not all
        zero (a zero vector does not define a ray, Definition 1).
    dim:
        If given, additionally require ``len(weights) == dim``.

    Returns
    -------
    numpy.ndarray
        A float64 copy of ``weights``.

    Raises
    ------
    InvalidWeightsError
        If any requirement is violated.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise InvalidWeightsError(f"weight vector must be 1-dimensional, got shape {w.shape}")
    if dim is not None and w.shape[0] != dim:
        raise InvalidWeightsError(f"expected {dim} weights, got {w.shape[0]}")
    if w.shape[0] < 2:
        raise InvalidWeightsError("need at least 2 scoring attributes to rank")
    if not np.all(np.isfinite(w)):
        raise InvalidWeightsError("weights must be finite")
    if np.any(w < 0):
        raise InvalidWeightsError("weights must be non-negative (paper assumption w_j >= 0)")
    if not np.any(w > 0):
        raise InvalidWeightsError("weight vector must not be all zeros")
    return w.copy()


def as_unit_vector(weights: np.ndarray) -> np.ndarray:
    """Return the unit vector along the ray of ``weights``.

    Scoring functions that are positive multiples of one another induce
    the same ranking, so the unit vector is the canonical representative
    of the ray (the point where the ray meets the unit d-sphere).
    """
    w = np.asarray(weights, dtype=np.float64)
    norm = float(np.linalg.norm(w))
    if norm == 0.0 or not math.isfinite(norm):
        raise InvalidWeightsError("cannot normalise a zero or non-finite weight vector")
    return w / norm


def weights_to_angles(weights: np.ndarray) -> np.ndarray:
    """Convert a weight vector to its ``d - 1`` polar angles.

    The convention follows Algorithm 11 / Appendix A: the last angle
    ``theta_{d-1}`` is measured from the ``x_d`` axis, and each earlier
    angle ``theta_i`` is measured within the subspace of the first
    ``i + 1`` coordinates.  Concretely, for a unit vector ``u``:

    ``u[d-1] = cos(theta_{d-1})``
    ``u[i]   = cos(theta_i) * prod_{j>i} sin(theta_j)``   for ``0 < i < d-1``
    ``u[0]   = prod_{j>=1} sin(theta_j)``

    Round trip: ``angles_to_weights(weights_to_angles(w))`` is the unit
    vector of ``w``.

    Returns
    -------
    numpy.ndarray
        Angles in ``[0, pi/2]`` (length ``d - 1``), ordered
        ``<theta_1, ..., theta_{d-1}>``.
    """
    u = as_unit_vector(validate_weights(weights))
    d = u.shape[0]
    angles = np.empty(d - 1, dtype=np.float64)
    # theta_j = atan2(||u[0:j]||, u[j]) — numerically stable even when the
    # prefix norm is tiny (acos of a near-1 cosine would lose precision).
    prefix_sq = np.concatenate([[0.0], np.cumsum(u * u)])
    for j in range(d - 1, 0, -1):
        prefix_norm = math.sqrt(max(prefix_sq[j], 0.0))
        angles[j - 1] = math.atan2(prefix_norm, u[j])
    return angles


def angles_to_weights(angles: np.ndarray) -> np.ndarray:
    """Convert ``d - 1`` polar angles to the corresponding unit vector.

    Inverse of :func:`weights_to_angles`; see that function for the
    convention.  Angles must lie in ``[0, pi/2]`` so the resulting vector
    is in the non-negative orthant.
    """
    theta = np.asarray(angles, dtype=np.float64)
    if theta.ndim != 1 or theta.shape[0] < 1:
        raise InvalidWeightsError("need at least one angle")
    if np.any(theta < -1e-12) or np.any(theta > math.pi / 2 + 1e-12):
        raise InvalidWeightsError("angles must lie in [0, pi/2] for non-negative weights")
    d = theta.shape[0] + 1
    u = np.empty(d, dtype=np.float64)
    remaining = 1.0
    for j in range(d - 1, 0, -1):
        t = float(theta[j - 1])
        u[j] = remaining * math.cos(t)
        remaining *= math.sin(t)
    u[0] = remaining
    # Guard against tiny negative values introduced by clamping.
    np.clip(u, 0.0, None, out=u)
    return u


def angles_to_weights_batch(angles: np.ndarray) -> np.ndarray:
    """Vectorised :func:`angles_to_weights` over an ``(m, d - 1)`` block.

    Same polar convention, one reverse-cumulative product of sines per
    block instead of a Python loop per row.  Returns ``(m, d)`` unit
    vectors in the non-negative orthant.
    """
    theta = np.atleast_2d(np.asarray(angles, dtype=np.float64))
    if theta.ndim != 2 or theta.shape[1] < 1:
        raise InvalidWeightsError("need an (m, d-1) block with at least one angle")
    if np.any(theta < -1e-12) or np.any(theta > math.pi / 2 + 1e-12):
        raise InvalidWeightsError("angles must lie in [0, pi/2] for non-negative weights")
    m, d1 = theta.shape
    sin = np.sin(theta)
    cos = np.cos(theta)
    # suffix[:, j] = prod_{i >= j} sin[:, i]  — the scalar loop's
    # ``remaining`` value just before coordinate j is written.
    suffix = np.cumprod(sin[:, ::-1], axis=1)[:, ::-1]
    u = np.empty((m, d1 + 1), dtype=np.float64)
    u[:, 0] = suffix[:, 0]
    u[:, 1:d1] = cos[:, : d1 - 1] * suffix[:, 1:]
    u[:, d1] = cos[:, d1 - 1]
    np.clip(u, 0.0, None, out=u)
    return u


def cosine_similarity(w1: np.ndarray, w2: np.ndarray) -> float:
    """Cosine similarity between two weight vectors (rays)."""
    u1 = as_unit_vector(np.asarray(w1, dtype=np.float64))
    u2 = as_unit_vector(np.asarray(w2, dtype=np.float64))
    return float(np.clip(np.dot(u1, u2), -1.0, 1.0))


def angle_between(w1: np.ndarray, w2: np.ndarray) -> float:
    """Angular distance (radians) between the rays of two weight vectors.

    This is the distance used to specify a hypercone region of interest
    ("a vector and angle distance", section 2.2.2).
    """
    return math.acos(cosine_similarity(w1, w2))


def cosine_to_angle(cosine: float) -> float:
    """Convert a cosine-similarity threshold to the equivalent cone angle.

    The paper uses both interchangeably, e.g. "0.998 cosine similarity
    (theta = pi/50)" in section 6.2.
    """
    if not -1.0 <= cosine <= 1.0:
        raise ValueError(f"cosine similarity must be in [-1, 1], got {cosine}")
    return math.acos(cosine)


def angle_to_cosine(angle: float) -> float:
    """Convert a cone angle to the equivalent cosine-similarity threshold."""
    return math.cos(angle)
