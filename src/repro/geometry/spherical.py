"""Hypersphere and hyperspherical-cap geometry (Equations 12-16).

The universe of scoring functions maps one-to-one onto the non-negative
orthant of the unit d-sphere's surface; a hypercone region of interest
maps onto a spherical cap.  Stability (Definition 2) is a ratio of surface
areas, so this module provides:

- :func:`sphere_surface_area` — surface area of a ``delta``-sphere,
  ``A_delta(r) = 2 pi^{delta/2} / Gamma(delta/2) * r^{delta-1}``
  (Equation 12; note the paper's convention where a "d-sphere" lives in
  ``R^d``, i.e. a circle is a 2-sphere).
- :func:`sin_power_integral` — ``int_0^theta sin^{d-2}(phi) dphi``, the
  kernel of the cap area (Equation 13).
- :func:`cap_area` — surface area of the unit d-spherical cap of angle
  ``theta`` (Equation 13).
- :func:`cap_cdf` / :func:`inverse_cap_cdf` — the normalised CDF of the
  colatitude angle of a uniform point on a cap (Equation 14) and its
  inverse, in three interchangeable implementations: closed form for
  d = 2, 3, the regularized-incomplete-beta form (Equation 16) via
  :func:`scipy.special.betainc`, and the Riemann-sum numeric form
  (Algorithm 10).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "sphere_surface_area",
    "sin_power_integral",
    "cap_area",
    "cap_cdf",
    "inverse_cap_cdf",
    "cap_fraction_of_orthant",
    "orthant_area",
    "riemann_cdf_table",
]


def sphere_surface_area(dim: int, radius: float = 1.0) -> float:
    """Surface area of a ``dim``-sphere of the given radius (Equation 12).

    Follows the paper's convention: the "d-sphere" is the boundary of the
    ball in ``R^d``, so ``sphere_surface_area(2)`` is a circle's
    circumference ``2 pi r`` and ``sphere_surface_area(3) = 4 pi r^2``.
    """
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return float(2.0 * math.pi ** (dim / 2.0) / special.gamma(dim / 2.0) * radius ** (dim - 1))


def sin_power_integral(theta: float, power: int) -> float:
    """``int_0^theta sin^power(phi) dphi`` for integer ``power >= 0``.

    Evaluated through the regularized incomplete beta function for
    ``theta <= pi/2`` (the only range the paper needs — angles of the
    non-negative orthant):

        int_0^theta sin^p = (1/2) B(((p+1)/2, 1/2)) * I_{sin^2 theta}((p+1)/2, 1/2)

    which is the identity behind Equation 16.
    """
    if power < 0:
        raise ValueError(f"power must be non-negative, got {power}")
    if not 0.0 <= theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in [0, pi/2], got {theta}")
    if theta == 0.0:
        return 0.0
    if power == 0:
        return float(theta)
    s2 = math.sin(min(theta, math.pi / 2)) ** 2
    a = (power + 1) / 2.0
    b = 0.5
    return float(0.5 * special.beta(a, b) * special.betainc(a, b, s2))


def cap_area(dim: int, theta: float, radius: float = 1.0) -> float:
    """Surface area of a ``dim``-spherical cap with colatitude ``theta``.

    Equation 13: ``A_cap = A_{d-1}(1) * int_0^theta sin^{d-2}(phi) dphi``
    scaled by ``radius^{d-1}``.  For ``dim = 2`` the cap around a pole of
    the circle is the arc of points within angle ``theta`` of it — both
    sides, so length ``2 * theta * r`` (Equation 13's shell factor
    ``A_1(1) = 2``).
    """
    if dim < 2:
        raise ValueError(f"cap requires dimension >= 2, got {dim}")
    if dim == 2:
        return float(2.0 * theta * radius)
    shell = 2.0 * math.pi ** ((dim - 1) / 2.0) / special.gamma((dim - 1) / 2.0)
    return float(shell * sin_power_integral(theta, dim - 2) * radius ** (dim - 1))


def orthant_area(dim: int) -> float:
    """Surface area of the non-negative orthant of the unit ``dim``-sphere.

    The orthant is ``1 / 2^d`` of the full surface; this is ``vol(U)`` in
    Definition 2.
    """
    return sphere_surface_area(dim) / (2.0 ** dim)


def cap_fraction_of_orthant(dim: int, theta: float) -> float:
    """Cap area as a fraction of the orthant area.

    Useful as the acceptance probability of rejection sampling a cap from
    uniform-orthant proposals and for sanity-checking stability values of
    cone regions of interest.  Note a cap centred inside the orthant with
    small ``theta`` lies entirely within the orthant, making the fraction
    exact; for large ``theta`` it is an upper bound on the contained area.
    """
    return cap_area(dim, theta) / orthant_area(dim)


def cap_cdf(x: float | np.ndarray, theta: float, dim: int) -> float | np.ndarray:
    """CDF of the colatitude of a uniform sample on a cap (Equation 14/16).

    ``F(x) = int_0^x sin^{d-2} / int_0^theta sin^{d-2}``, computed in
    closed form for ``dim`` 2 and 3, otherwise through the regularized
    incomplete beta representation (Equation 16).
    """
    if not 0.0 < theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in (0, pi/2], got {theta}")
    xs = np.asarray(x, dtype=np.float64)
    if np.any(xs < -1e-12) or np.any(xs > theta + 1e-9):
        raise ValueError("x must lie in [0, theta]")
    xs = np.clip(xs, 0.0, theta)
    if dim == 2:
        out = xs / theta
    elif dim == 3:
        # Equation 15: F(x) = (1 - cos x) / (1 - cos theta).
        out = (1.0 - np.cos(xs)) / (1.0 - math.cos(theta))
    else:
        a = (dim - 1) / 2.0
        out = special.betainc(a, 0.5, np.sin(xs) ** 2) / special.betainc(
            a, 0.5, math.sin(theta) ** 2
        )
    return float(out) if np.isscalar(x) else out


def inverse_cap_cdf(y: float | np.ndarray, theta: float, dim: int) -> float | np.ndarray:
    """Inverse of :func:`cap_cdf`: the angle ``x`` with ``F(x) = y``.

    Closed form for ``dim`` 2 and 3 (Equation 15); otherwise inverts the
    regularized incomplete beta with :func:`scipy.special.betaincinv`
    (the paper notes "numeric methods are applied for finding the inverse
    of the regularized incomplete beta function" — scipy provides them).
    """
    if not 0.0 < theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in (0, pi/2], got {theta}")
    ys = np.asarray(y, dtype=np.float64)
    if np.any(ys < -1e-12) or np.any(ys > 1.0 + 1e-12):
        raise ValueError("y must lie in [0, 1]")
    ys = np.clip(ys, 0.0, 1.0)
    if dim == 2:
        out = ys * theta
    elif dim == 3:
        # Equation 15 inverted: x = arccos(1 - (1 - cos theta) y).
        out = np.arccos(np.clip(1.0 - (1.0 - math.cos(theta)) * ys, -1.0, 1.0))
    else:
        a = (dim - 1) / 2.0
        target = ys * special.betainc(a, 0.5, math.sin(theta) ** 2)
        s2 = special.betaincinv(a, 0.5, target)
        # scipy's betaincinv yields NaN for subnormal targets; the true
        # inverse there is indistinguishable from 0.
        s2 = np.where(np.isfinite(s2), s2, 0.0)
        out = np.arcsin(np.sqrt(np.clip(s2, 0.0, 1.0)))
    return float(out) if np.isscalar(y) else out


def riemann_cdf_table(theta: float, dim: int, partitions: int) -> np.ndarray:
    """Riemann-sum table of the cap-colatitude CDF (Algorithm 10).

    Returns the array ``L`` of Algorithm 10: ``partitions + 1`` cumulative
    values of ``int_0^{i*eps} sin^{d-2}`` normalised by the total, with
    ``L[0] = 0`` and ``L[-1] = 1``.  A sampler binary-searches this list
    (Algorithm 11) — see :func:`repro.sampling.cap.sample_cap`.

    Kept alongside the closed forms so the ablation benchmark can compare
    the paper's numeric route against ``betaincinv``.
    """
    if partitions < 1:
        raise ValueError(f"need at least one partition, got {partitions}")
    if not 0.0 < theta <= math.pi / 2 + 1e-12:
        raise ValueError(f"theta must be in (0, pi/2], got {theta}")
    eps = theta / partitions
    # Midpoint rule: slightly better behaved than the paper's right sums
    # while keeping the same data layout and O(partitions) cost.
    mids = (np.arange(partitions) + 0.5) * eps
    contributions = np.sin(mids) ** (dim - 2)
    table = np.concatenate([[0.0], np.cumsum(contributions)])
    total = table[-1]
    if total <= 0.0:
        raise ValueError("degenerate CDF table; theta too small for float precision")
    return table / total
