"""Halfspaces and convex-cone regions of the function space.

A ranking region in the multi-dimensional setting (section 4.1) is an
open-ended d-dimensional cone: the intersection of homogeneous halfspaces
``h . x > 0`` (one per adjacent pair of the ranking) with the region of
interest.  This module provides:

- :class:`Halfspace` — a single homogeneous halfspace with a sign.
- :class:`ConvexCone` — an intersection of halfspaces, with membership
  tests (vectorised over sample matrices), LP feasibility, interior-point
  computation (Chebyshev-style via linear programming), and a bounding
  cap (reference ray + angle) used to accelerate rejection sampling
  (section 5.2: "the bounding sphere for the base of its d-cone").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleRegionError

__all__ = ["Halfspace", "ConvexCone"]


@dataclass(frozen=True)
class Halfspace:
    """A homogeneous halfspace ``sign * (normal . x) > 0``.

    ``sign=+1`` denotes the paper's ``h+`` (functions ranking ``t_i`` above
    ``t_j`` when ``normal = t_i - t_j``); ``sign=-1`` denotes ``h-``.
    """

    normal: tuple[float, ...]
    sign: int = +1

    def __post_init__(self) -> None:
        if self.sign not in (+1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")

    @property
    def dim(self) -> int:
        return len(self.normal)

    @property
    def oriented_normal(self) -> np.ndarray:
        """Normal scaled by sign, so membership is ``oriented_normal.x > 0``."""
        return self.sign * np.asarray(self.normal, dtype=np.float64)

    def contains(self, point: np.ndarray, *, strict: bool = True) -> bool:
        """Test whether ``point`` lies in the (open) halfspace."""
        value = float(np.dot(self.oriented_normal, np.asarray(point, dtype=np.float64)))
        return value > 0.0 if strict else value >= 0.0

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(m, d)`` matrix of points."""
        pts = np.asarray(points, dtype=np.float64)
        return pts @ self.oriented_normal > 0.0

    def flipped(self) -> "Halfspace":
        """The opposite halfspace (same boundary hyperplane)."""
        return Halfspace(self.normal, -self.sign)


class ConvexCone:
    """Intersection of homogeneous halfspaces — a ranking region's shape.

    The cone is *open-ended*: membership depends only on the direction of a
    point, never its magnitude, matching the fact that scoring functions
    that are positive multiples of each other induce the same ranking.

    Parameters
    ----------
    halfspaces:
        Iterable of :class:`Halfspace`, all of the same dimension.
    dim:
        Ambient dimension; mandatory when ``halfspaces`` is empty (the
        empty intersection is the whole space).
    """

    def __init__(self, halfspaces: Iterable[Halfspace] = (), *, dim: int | None = None):
        self._halfspaces: list[Halfspace] = list(halfspaces)
        if self._halfspaces:
            dims = {h.dim for h in self._halfspaces}
            if len(dims) != 1:
                raise ValueError(f"halfspaces have mixed dimensions: {sorted(dims)}")
            inferred = dims.pop()
            if dim is not None and dim != inferred:
                raise ValueError(f"dim={dim} conflicts with halfspace dimension {inferred}")
            self._dim = inferred
        else:
            if dim is None:
                raise ValueError("dim is required for a cone with no halfspaces")
            self._dim = int(dim)
        self._matrix_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def halfspaces(self) -> Sequence[Halfspace]:
        return tuple(self._halfspaces)

    def __len__(self) -> int:
        return len(self._halfspaces)

    def __eq__(self, other: object) -> bool:
        """Value equality: same dimension, same halfspaces in order.

        Cones are immutable, so value semantics are safe — and needed:
        a :class:`~repro.core.stability.StabilityResult` carrying a cone
        region should compare equal to a value-identical result from a
        restored snapshot or a replayed enumeration.
        """
        if not isinstance(other, ConvexCone):
            return NotImplemented
        return self._dim == other._dim and self._halfspaces == other._halfspaces

    def __hash__(self) -> int:
        return hash((self._dim, tuple(self._halfspaces)))

    def __repr__(self) -> str:
        return f"ConvexCone(dim={self._dim}, n_halfspaces={len(self._halfspaces)})"

    def with_halfspace(self, halfspace: Halfspace) -> "ConvexCone":
        """A new cone further constrained by ``halfspace``."""
        if halfspace.dim != self._dim:
            raise ValueError(f"halfspace dim {halfspace.dim} != cone dim {self._dim}")
        return ConvexCone([*self._halfspaces, halfspace], dim=self._dim)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _oriented_matrix(self) -> np.ndarray:
        """Stack of oriented normals, one row per halfspace ((m, d))."""
        if self._matrix_cache is None:
            if self._halfspaces:
                self._matrix_cache = np.stack([h.oriented_normal for h in self._halfspaces])
            else:
                self._matrix_cache = np.empty((0, self._dim), dtype=np.float64)
        return self._matrix_cache

    def contains(self, point: np.ndarray) -> bool:
        """True if ``point`` satisfies every halfspace strictly.

        This is the membership test of the stability oracle (Algorithm 12)
        for a single sample.
        """
        pt = np.asarray(point, dtype=np.float64)
        mat = self._oriented_matrix()
        if mat.shape[0] == 0:
            return True
        return bool(np.all(mat @ pt > 0.0))

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership for an ``(m, d)`` matrix of sample points.

        Returns a boolean mask of length ``m``.  This is the hot loop of
        the stability oracle.  Small cases are a single matrix product;
        large ``m * n_halfspaces`` products switch to a streaming pass
        that eliminates failed samples halfspace by halfspace — for a
        ranking region (many constraints, tiny volume) most samples die
        within a few constraints, so the pass is near-linear in ``m``.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        mat = self._oriented_matrix()
        m_samples, m_constraints = pts.shape[0], mat.shape[0]
        if m_constraints == 0:
            return np.ones(m_samples, dtype=bool)
        if m_samples * m_constraints <= 4_000_000:
            return np.all(pts @ mat.T > 0.0, axis=1)
        result = np.zeros(m_samples, dtype=bool)
        chunk = max(1, 16_000_000 // max(m_constraints, 1))
        for start in range(0, m_samples, chunk):
            block = pts[start : start + chunk]
            alive = np.arange(block.shape[0])
            for normal in mat:
                ok = block[alive] @ normal > 0.0
                alive = alive[ok]
                if alive.size == 0:
                    break
            result[start + alive] = True
        return result

    # ------------------------------------------------------------------
    # Linear-programming queries
    # ------------------------------------------------------------------
    def interior_point(
        self,
        *,
        extra_halfspaces: Iterable[Halfspace] = (),
        nonnegative: bool = True,
    ) -> np.ndarray:
        """A point strictly inside the cone (and the non-negative orthant).

        Solves the margin-maximisation LP

            max s   s.t.  A x >= s,  0 <= x <= 1,  s <= 1

        where ``A`` stacks the oriented normals (plus the orthant rows when
        ``nonnegative``).  A positive optimum yields a strictly interior
        direction; this implements "w = a point in r" of Algorithm 6
        line 10 without sampling.

        Raises
        ------
        InfeasibleRegionError
            If the cone has empty interior.
        """
        rows = [h.oriented_normal for h in self._halfspaces]
        rows.extend(h.oriented_normal for h in extra_halfspaces)
        if nonnegative:
            rows.extend(np.eye(self._dim))
        a = np.stack(rows) if rows else np.empty((0, self._dim))
        m = a.shape[0]
        if m == 0:
            return np.full(self._dim, 1.0 / np.sqrt(self._dim))
        # Variables: x (d), s (1).  Maximise s  <=>  minimise -s.
        c = np.zeros(self._dim + 1)
        c[-1] = -1.0
        # A x - s >= 0   <=>   -A x + s <= 0
        a_ub = np.hstack([-a, np.ones((m, 1))])
        b_ub = np.zeros(m)
        bounds = [(-1.0, 1.0)] * self._dim + [(None, 1.0)]
        if nonnegative:
            bounds = [(0.0, 1.0)] * self._dim + [(None, 1.0)]
        res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not res.success or res.x is None or res.x[-1] <= 1e-12:
            raise InfeasibleRegionError("cone has empty interior")
        x = res.x[: self._dim]
        norm = float(np.linalg.norm(x))
        if norm <= 0.0:
            raise InfeasibleRegionError("degenerate interior point at the origin")
        return x / norm

    def is_feasible(self, *, nonnegative: bool = True) -> bool:
        """True if the cone (intersected with the orthant) has an interior."""
        try:
            self.interior_point(nonnegative=nonnegative)
        except InfeasibleRegionError:
            return False
        return True

    def intersects_hyperplane(
        self, normal: np.ndarray, *, nonnegative: bool = True
    ) -> bool:
        """LP test: does the hyperplane ``normal . x = 0`` cut the cone?

        This is the quadratic/linear-program variant of ``passThrough``
        described under Algorithm 6 ("testing whether a hyperplane
        intersects with a region is done by solving a linear program").
        The hyperplane cuts the cone iff both open sides are feasible.
        """
        h = np.asarray(normal, dtype=np.float64)
        plus = Halfspace(tuple(h), +1)
        minus = Halfspace(tuple(h), -1)
        try:
            self.interior_point(extra_halfspaces=[plus], nonnegative=nonnegative)
            self.interior_point(extra_halfspaces=[minus], nonnegative=nonnegative)
        except InfeasibleRegionError:
            return False
        return True

    # ------------------------------------------------------------------
    # Bounding cap
    # ------------------------------------------------------------------
    def bounding_cap(
        self, samples: np.ndarray | None = None, *, pad: float = 1.25
    ) -> tuple[np.ndarray, float]:
        """A (reference ray, angle) cap that contains the cone ∩ orthant.

        Section 5.2: "For a region of interest specified by a set of
        constraints, the bounding sphere for the base of its d-cone
        identifies the ray and angle distance that include U*."  We compute
        the cap from the extreme directions available: when ``samples``
        inside the cone are provided, the smallest-enclosing-ball cap of
        their directions (reference [37], via
        :func:`repro.geometry.minball.bounding_cap_of_directions`),
        inflated by ``pad`` — the sample hull underestimates the true
        cone, so an unpadded cap could clip it and bias rejection
        proposals; the padded angle is clamped to the orthant cap, the
        conservative fallback when no samples are given.

        Returns
        -------
        (ray, angle):
            Unit reference direction and the half-angle of the cap.
        """
        orthant_angle = float(np.arccos(1.0 / np.sqrt(self._dim)))
        if samples is not None and len(samples) > 0:
            from repro.geometry.minball import bounding_cap_of_directions

            try:
                axis, angle = bounding_cap_of_directions(
                    np.asarray(samples, dtype=np.float64)
                )
                return axis, min(max(angle * pad, 1e-6), orthant_angle + angle)
            except ValueError:
                pass  # degenerate directions: fall through to the orthant cap
        diagonal = np.full(self._dim, 1.0 / np.sqrt(self._dim))
        # Angle between the orthant diagonal and any axis e_i.
        return diagonal, orthant_angle
