"""Dual-space representation of items and ordering exchanges.

Section 2.1.2 of the paper maps each item ``t`` to the hyperplane

    d(t):  t[1]*x_1 + ... + t[d]*x_d = 1                      (Equation 1)

The ranking induced by a scoring function ``f_w`` equals the order in which
the dual hyperplanes intersect the ray of ``w`` (closer to the origin =
higher rank), because ``d(t)`` meets the ray at ``(1 / f_w(t)) * w``.

For a pair of items the *ordering exchange* is the set of functions that
score both items equally:

    x(t_i, t_j):  sum_k (t_i[k] - t_j[k]) * x_k = 0           (Equation 7)

In 2D the exchange is a single ray at angle

    theta_{t,t'} = arctan( (t'[1] - t[1]) / (t[2] - t'[2]) )   (Equation 6)

measured from the ``x1`` axis.  These exchanges are the region boundaries
every algorithm in the paper is built on.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "dual_hyperplane_value",
    "dominates",
    "exchange_hyperplane",
    "exchange_angle_2d",
    "pairwise_exchange_hyperplanes",
]


def dual_hyperplane_value(item: np.ndarray, point: np.ndarray) -> float:
    """Evaluate the dual hyperplane of ``item`` at ``point``.

    Returns ``sum_k item[k] * point[k]``; the point lies on ``d(item)``
    when the value is 1 (Equation 1).  For a weight vector ``w`` this is
    exactly the score ``f_w(item)``, which is why ordering along the ray
    equals ordering of dual-hyperplane intersections.
    """
    return float(np.dot(np.asarray(item, dtype=np.float64), np.asarray(point, dtype=np.float64)))


def dominates(t: np.ndarray, t_prime: np.ndarray, *, tol: float = 0.0) -> bool:
    """Return True if item ``t`` dominates item ``t_prime``.

    Following the paper (section 3): ``t`` dominates ``t'`` when no
    attribute of ``t'`` exceeds the corresponding attribute of ``t`` and at
    least one attribute of ``t`` strictly exceeds ``t'``'s.  Dominating
    pairs never exchange order, so they contribute no boundary.

    Parameters
    ----------
    t, t_prime:
        Attribute vectors of the two items (larger is better).
    tol:
        Non-negative slack: ``t'`` may exceed ``t`` by up to ``tol`` per
        attribute and still be considered dominated.  The default 0 is the
        exact textbook definition.
    """
    a = np.asarray(t, dtype=np.float64)
    b = np.asarray(t_prime, dtype=np.float64)
    return bool(np.all(b <= a + tol) and np.any(a > b + tol))


def exchange_hyperplane(t_i: np.ndarray, t_j: np.ndarray) -> np.ndarray:
    """Normal vector of the ordering-exchange hyperplane of two items.

    Returns ``h = t_i - t_j`` so that the hyperplane is ``h . x = 0``
    (Equation 7).  Functions with ``h . w > 0`` rank ``t_i`` above ``t_j``
    (the positive halfspace ``h+``); ``h . w < 0`` ranks ``t_j`` higher.
    """
    return np.asarray(t_i, dtype=np.float64) - np.asarray(t_j, dtype=np.float64)


def exchange_angle_2d(t: np.ndarray, t_prime: np.ndarray) -> float:
    """Angle (from the x1 axis) of the 2D ordering exchange of two items.

    Implements Equation 6:
    ``theta = arctan((t'[1] - t[1]) / (t[2] - t'[2]))``.

    The caller must ensure neither item dominates the other; for
    non-dominating pairs the numerator and denominator share sign, so the
    returned angle lies in ``[0, pi/2]``.

    Raises
    ------
    ValueError
        If the two items are identical in both attributes (every function
        ties them; no exchange exists), or if one dominates the other (the
        ratio would be negative and the exchange falls outside the
        non-negative quadrant).
    """
    a = np.asarray(t, dtype=np.float64)
    b = np.asarray(t_prime, dtype=np.float64)
    dx = float(b[0] - a[0])
    dy = float(a[1] - b[1])
    if dx == 0.0 and dy == 0.0:
        raise ValueError("items are identical; no ordering exchange exists")
    if dy == 0.0:
        # Equal second attribute: the exchange is the x2 axis (theta=pi/2)
        # if t'[1] > t[1] would flip at vertical, but with dy == 0 one item
        # dominates the other; treat as a degenerate vertical exchange.
        return math.pi / 2 if dx > 0 else 0.0
    ratio = dx / dy
    if ratio < 0.0:
        raise ValueError(
            "one item dominates the other; the ordering never changes inside "
            "the non-negative quadrant"
        )
    return math.atan(ratio)


def pairwise_exchange_hyperplanes(items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All ordering-exchange hyperplanes of a dataset (Algorithm 5, core).

    Vectorised construction of ``h = t_i - t_j`` for every non-dominating
    pair ``i < j``.

    Parameters
    ----------
    items:
        ``(n, d)`` array of item attribute vectors.

    Returns
    -------
    (hyperplanes, pairs):
        ``hyperplanes`` is an ``(m, d)`` array of normal vectors and
        ``pairs`` the corresponding ``(m, 2)`` array of item index pairs,
        where ``m`` is the number of non-dominating pairs.
    """
    pts = np.asarray(items, dtype=np.float64)
    n = pts.shape[0]
    ii, jj = np.triu_indices(n, k=1)
    diffs = pts[ii] - pts[jj]
    # A pair is dominating iff the difference vector has no sign change
    # (all >= 0 with some > 0, or all <= 0 with some < 0).  Identical items
    # (all zeros) also produce no exchange.
    has_pos = np.any(diffs > 0, axis=1)
    has_neg = np.any(diffs < 0, axis=1)
    mask = has_pos & has_neg
    pairs = np.stack([ii[mask], jj[mask]], axis=1)
    return diffs[mask], pairs
