"""FIFA-ranking-like workload (sections 6.1, 6.2).

The FIFA World Ranking scores a men's national team from its performance
points in the current year (A1) and the three preceding years (A2-A4),
with the published reference weights ``<1, 0.5, 0.3, 0.2>``.  The paper
studies stability in a 0.999-cosine-similarity cone around those weights
and finds the reference ranking outside the top-100 stable rankings.

The real table cannot be fetched offline; :func:`fifa_dataset`
synthesises the top-``n`` teams with an AR(1) strength process across
the four years — team performances are strongly but imperfectly
persistent year to year, which is exactly the correlation structure that
makes many rankings feasible in a narrow cone (the Figure 9 phenomenon).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.scoring import ScoringFunction

__all__ = ["fifa_dataset", "fifa_reference_function", "FIFA_REFERENCE_WEIGHTS"]

FIFA_REFERENCE_WEIGHTS = (1.0, 0.5, 0.3, 0.2)
"""The published FIFA weights for years A1 (current) through A4."""

_TEAM_STEMS = (
    "Avaria", "Brontia", "Caldera", "Dorvania", "Elmarra", "Feldova",
    "Grenholm", "Halcyon", "Istria", "Jovena", "Korvath", "Lumeria",
    "Montara", "Nordhavn", "Ostrava", "Pellandia", "Quorra", "Ravenia",
    "Sorvette", "Tyrholm", "Umbria", "Vantara", "Wrenfield", "Xalveria",
    "Ypresia", "Zandoria",
)


def _team_labels(n: int) -> list[str]:
    labels = []
    i = 0
    while len(labels) < n:
        stem = _TEAM_STEMS[i % len(_TEAM_STEMS)]
        suffix = i // len(_TEAM_STEMS)
        labels.append(stem if suffix == 0 else f"{stem} {suffix + 1}")
        i += 1
    return labels


def fifa_dataset(
    n_items: int = 100,
    rng: np.random.Generator | None = None,
    *,
    persistence: float = 0.8,
) -> Dataset:
    """Synthetic top-``n`` national teams over four yearly point columns.

    Each team has a latent strength; yearly performance points follow an
    AR(1) process around it with coefficient ``persistence`` plus
    tournament noise.  Values are normalised to [0, 1] per attribute, as
    the paper's preprocessing prescribes.

    Returns a dataset with attributes ``A1`` (current year) .. ``A4``.
    """
    generator = rng if rng is not None else np.random.default_rng(20180614)
    if not 0.0 <= persistence < 1.0:
        raise ValueError(f"persistence must be in [0, 1), got {persistence}")
    # Latent strengths of the *top* teams: a compressed field with
    # substantial year-to-year variance, so that adjacent teams' ordering
    # exchanges pass close to the reference ray — the regime in which the
    # published ranking is unstable even in a narrow cone (Figure 9's
    # finding that the reference ranking is outside the top-100).
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    strength = 1800.0 - 6.0 * ranks + generator.normal(0.0, 10.0, size=n_items)
    years = np.empty((n_items, 4))
    innovation = np.sqrt(1.0 - persistence**2)
    # Build backwards from the oldest year so A1 is the current year.
    shock = generator.normal(0.0, 1.0, size=n_items)
    for col in range(3, -1, -1):
        shock = persistence * shock + innovation * generator.normal(
            0.0, 1.0, size=n_items
        )
        years[:, col] = strength + 220.0 * shock
    ds = Dataset(
        np.clip(years, 0.0, None),
        item_labels=_team_labels(n_items),
        attribute_names=("A1", "A2", "A3", "A4"),
    )
    return ds.normalized()


def fifa_reference_function() -> ScoringFunction:
    """The FIFA reference function ``t[1] + 0.5 t[2] + 0.3 t[3] + 0.2 t[4]``."""
    return ScoringFunction(np.array(FIFA_REFERENCE_WEIGHTS))
