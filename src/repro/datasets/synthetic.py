"""Synthetic independent / correlated / anti-correlated datasets.

Section 6.1: "using the code provided by [8] (Börzsönyi et al.), we
generated three synthetic datasets (independent, correlated,
anti-correlated), containing 10,000 items and three scoring attributes in
range [0, 1]".  This module reimplements those three families:

- **independent** — attributes i.i.d. uniform on [0, 1];
- **correlated** — items concentrated around the main diagonal: a base
  quality value plus small symmetric per-attribute noise;
- **anti-correlated** — items concentrated around the anti-diagonal
  hyperplane ``sum x_j ≈ const``: good on some attributes, bad on
  others, producing the large skylines and flat stability profiles the
  paper observes in Figure 21.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

__all__ = [
    "independent_dataset",
    "correlated_dataset",
    "anticorrelated_dataset",
    "synthetic_dataset",
]


def independent_dataset(
    n_items: int, n_attributes: int, rng: np.random.Generator
) -> Dataset:
    """Attributes i.i.d. uniform on [0, 1]."""
    _validate(n_items, n_attributes)
    return Dataset(rng.uniform(0.0, 1.0, size=(n_items, n_attributes)))


def correlated_dataset(
    n_items: int,
    n_attributes: int,
    rng: np.random.Generator,
    *,
    spread: float = 0.02,
) -> Dataset:
    """Attributes positively correlated across items.

    Each item draws a base quality ``v`` and each attribute is ``v`` plus
    small noise, clipped to [0, 1]; ``spread`` controls the noise scale
    and hence the correlation strength (~0.98 mean pairwise correlation
    at the default).

    Two choices realise the Figure 21 mechanism robustly: the tight
    default ``spread`` makes item differences point almost along the
    all-ones diagonal, so ordering exchanges sit far from any
    centrally-placed cone; and the Beta(1, 5) base is sparse near its
    upper tail, so the top items are separated by comfortable quality
    gaps rather than crowded together.  Both are what give correlated
    data the most stable rankings.
    """
    _validate(n_items, n_attributes)
    base = rng.beta(1.0, 5.0, size=n_items)
    noise = rng.normal(0.0, spread, size=(n_items, n_attributes))
    values = np.clip(base[:, None] + noise, 0.0, 1.0)
    return Dataset(values)


def anticorrelated_dataset(
    n_items: int,
    n_attributes: int,
    rng: np.random.Generator,
    *,
    spread: float = 0.05,
) -> Dataset:
    """Attributes negatively correlated across items.

    Items sit near the simplex-like surface ``mean(x) ≈ 1/2``: a
    direction is drawn uniformly on the simplex (Dirichlet), scaled so
    attribute means stay mid-range, with slight radial noise.  Being good
    on one attribute then implies being bad on others, the hallmark of
    the anti-correlated family.
    """
    _validate(n_items, n_attributes)
    simplex = rng.dirichlet(np.ones(n_attributes), size=n_items)
    radius = rng.normal(n_attributes / 2.0, spread * n_attributes, size=n_items)
    values = np.clip(simplex * radius[:, None], 0.0, 1.0)
    return Dataset(values)


def synthetic_dataset(
    family: str, n_items: int, n_attributes: int, rng: np.random.Generator
) -> Dataset:
    """Dispatch by family name: independent / correlated / anticorrelated."""
    families = {
        "independent": independent_dataset,
        "correlated": correlated_dataset,
        "anticorrelated": anticorrelated_dataset,
    }
    if family not in families:
        raise ValueError(f"family must be one of {sorted(families)}, got {family!r}")
    return families[family](n_items, n_attributes, rng)


def _validate(n_items: int, n_attributes: int) -> None:
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if n_attributes < 2:
        raise ValueError(f"n_attributes must be >= 2, got {n_attributes}")
