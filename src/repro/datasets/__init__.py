"""Workload generators standing in for the paper's evaluation datasets.

The paper evaluates on four real datasets (CSMetrics, FIFA rankings, the
Blue Nile diamond catalog, US DoT flight on-time records) plus the
classic Börzsönyi synthetic families.  None of the real files can be
fetched offline, so each generator here synthesises a dataset with the
same schema, attribute correlations, and reference scoring function —
the properties the stability algorithms actually exercise.  DESIGN.md
documents each substitution.
"""

from repro.datasets.synthetic import (
    anticorrelated_dataset,
    correlated_dataset,
    independent_dataset,
    synthetic_dataset,
)
from repro.datasets.csmetrics import csmetrics_dataset, CSMETRICS_DEFAULT_ALPHA
from repro.datasets.fifa import fifa_dataset, FIFA_REFERENCE_WEIGHTS
from repro.datasets.bluenile import bluenile_dataset, BLUENILE_ATTRIBUTES
from repro.datasets.dot import dot_dataset, DOT_ATTRIBUTES

__all__ = [
    "synthetic_dataset",
    "independent_dataset",
    "correlated_dataset",
    "anticorrelated_dataset",
    "csmetrics_dataset",
    "CSMETRICS_DEFAULT_ALPHA",
    "fifa_dataset",
    "FIFA_REFERENCE_WEIGHTS",
    "bluenile_dataset",
    "BLUENILE_ATTRIBUTES",
    "dot_dataset",
    "DOT_ATTRIBUTES",
]
