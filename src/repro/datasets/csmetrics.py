"""CSMetrics-like institution ranking workload (sections 1, 6.1, 6.2).

CSMetrics ranks computer-science research institutions by measured (M)
and predicted (P) citation counts, combined as ``M^alpha * P^(1-alpha)``
with default ``alpha = 0.3``.  Under the log transform
``x1 = log M, x2 = log P`` the score is the linear function
``alpha * x1 + (1 - alpha) * x2`` (section 6.1).

We cannot crawl csmetrics.org offline, so :func:`csmetrics_dataset`
synthesises the top-``n`` institutions: measured citations follow a
Zipf-like heavy tail (academic citation counts are famously so), and
predicted citations are strongly but imperfectly correlated with
measured ones.  What the stability machinery sees — two positively
correlated, log-transformed attributes with a few hundred feasible
rankings among the top items — matches the real data's structure
(the paper reports 336 feasible rankings for the real top-100).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.scoring import ScoringFunction

__all__ = [
    "csmetrics_dataset",
    "csmetrics_reference_function",
    "CSMETRICS_DEFAULT_ALPHA",
]

CSMETRICS_DEFAULT_ALPHA = 0.3
"""The default mixing parameter used by the CSMetrics website."""

_INSTITUTION_STEMS = (
    "Aldergrove", "Brookfield", "Caldwell", "Dunmore", "Eastvale",
    "Fairbanks", "Glenridge", "Harwick", "Ironwood", "Jasperton",
    "Kingsmere", "Lakeshore", "Maplewood", "Northgate", "Oakhurst",
    "Pinecrest", "Queensbury", "Riverton", "Stonebridge", "Thornfield",
    "Underhill", "Valemont", "Westbrook", "Yellowpine", "Zephyrhill",
)


def _institution_labels(n: int) -> list[str]:
    labels = []
    i = 0
    while len(labels) < n:
        stem = _INSTITUTION_STEMS[i % len(_INSTITUTION_STEMS)]
        suffix = i // len(_INSTITUTION_STEMS)
        name = f"{stem} University" if suffix == 0 else f"{stem} University {suffix + 1}"
        labels.append(name)
        i += 1
    return labels


def csmetrics_dataset(
    n_items: int = 100,
    rng: np.random.Generator | None = None,
    *,
    log_transform: bool = True,
) -> Dataset:
    """Synthetic CSMetrics-like top-``n`` institutions.

    Parameters
    ----------
    n_items:
        Number of institutions (the paper uses the top-100).
    rng:
        Source of randomness; a fixed default seed keeps the case-study
        figures reproducible run to run.
    log_transform:
        Return the log-transformed attributes (ready for linear scoring,
        the paper's setting).  With ``False`` the raw measured/predicted
        citation counts are returned.

    Returns
    -------
    Dataset
        Attributes ``(log_)measured``, ``(log_)predicted``; normalised to
        [0, 1] after the log transform.
    """
    generator = rng if rng is not None else np.random.default_rng(180410990)
    # Heavy-tailed measured citations for the *top* institutions: order
    # statistics of a Pareto-like tail, decayed by rank.
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    base = 4.0e5 * ranks ** (-0.85)
    measured = base * np.exp(generator.normal(0.0, 0.18, size=n_items))
    # Predicted citations: strongly correlated with measured (rho ~ 0.95
    # in log space) with institution-specific trajectory noise.
    predicted = measured * np.exp(generator.normal(0.05, 0.22, size=n_items))
    values = np.column_stack([measured, predicted])
    ds = Dataset(
        values,
        item_labels=_institution_labels(n_items),
        attribute_names=("measured", "predicted"),
    )
    if not log_transform:
        return ds
    return ds.log_transformed().normalized()


def csmetrics_reference_function(
    alpha: float = CSMETRICS_DEFAULT_ALPHA,
) -> ScoringFunction:
    """The reference scoring function ``alpha*x1 + (1-alpha)*x2``.

    ``alpha`` is CSMetrics' mixing parameter over the log-transformed
    measured/predicted citations (0.3 by default, as on the website).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return ScoringFunction(np.array([alpha, 1.0 - alpha]))
