"""Blue Nile-like diamond catalog (section 6.1).

The paper's scalability experiments run on a crawl of the Blue Nile
online diamond catalog: 116,300 diamonds with five scoring attributes —
``Price`` (lower is better), ``Carat``, ``Depth``, ``LengthWidthRatio``,
and ``Table`` — min-max normalised with the price direction inverted.

:func:`bluenile_dataset` synthesises a catalog with realistic marginal
shapes and cross-correlations: carat is log-normal, price grows
super-linearly with carat (with quality scatter), and the cut geometry
attributes (depth, ratio, table) are nearly independent of size.  The
experiments only use the dataset as a five-attribute workload whose
pairwise geometry is diamond-catalog-like, which this preserves.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

__all__ = ["bluenile_dataset", "BLUENILE_ATTRIBUTES"]

BLUENILE_ATTRIBUTES = ("price", "carat", "depth", "length_width_ratio", "table")
"""Attribute order used throughout; price is lower-is-better."""


def bluenile_dataset(
    n_items: int = 116_300,
    rng: np.random.Generator | None = None,
    *,
    normalized: bool = True,
) -> Dataset:
    """Synthetic diamond catalog with the Blue Nile schema.

    Parameters
    ----------
    n_items:
        Catalog size (the paper's crawl had 116,300 diamonds; the
        scalability experiments subsample it).
    rng:
        Source of randomness; seeded by default for reproducible benches.
    normalized:
        Min-max normalise with ``price`` inverted (the paper's
        preprocessing).  With ``False`` the raw attribute scales are
        returned.

    Notes
    -----
    The paper varies dimensionality by projecting "the first k
    attributes"; :meth:`repro.core.Dataset.project` provides that.
    """
    generator = rng if rng is not None else np.random.default_rng(116300)
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    carat = np.exp(generator.normal(-0.35, 0.55, size=n_items))
    carat = np.clip(carat, 0.2, 12.0)
    # Price: roughly carat^2 per-carat growth, times a quality factor.
    quality = np.exp(generator.normal(0.0, 0.45, size=n_items))
    price = 3200.0 * carat**1.9 * quality
    price = np.clip(price, 300.0, None)
    # Cut-geometry attributes trade off against size: larger rough stones
    # are cut to keep weight at the expense of proportions, so depth,
    # ratio and table degrade slightly with carat.  This tension is what
    # makes higher-d rankings less stable (the Figure 19/20 shape).
    carat_z = (np.log(carat) - np.log(carat).mean()) / np.log(carat).std()
    depth = generator.normal(61.8, 1.6, size=n_items) - 0.9 * carat_z
    ratio = np.abs(generator.normal(1.01, 0.06, size=n_items)) + 0.9 - 0.03 * carat_z
    table = generator.normal(57.5, 2.2, size=n_items) - 1.2 * carat_z
    raw = Dataset(
        np.column_stack([price, carat, depth, ratio, table]),
        attribute_names=BLUENILE_ATTRIBUTES,
    )
    if not normalized:
        return raw
    # "For all attributes, except Price, higher values are preferred."
    return raw.normalized(higher_is_better=(False, True, True, True, True))
