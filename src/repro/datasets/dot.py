"""US DoT flight on-time workload (section 6.1).

The paper's largest scalability experiment (Figure 18) uses 1,322,023
flight records published by the US Department of Transportation, scored
on three attributes: ``air_time``, ``taxi_in`` and ``taxi_out``.

:func:`dot_dataset` synthesises flights at that scale: air time is a
mixture over route lengths (short-haul heavy), taxi times are
right-skewed gamma variables with a mild airport-congestion correlation
between taxi-in and taxi-out.  The experiment consumes the dataset only
as a three-attribute workload of ~10^6 rows, which this reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

__all__ = ["dot_dataset", "DOT_ATTRIBUTES"]

DOT_ATTRIBUTES = ("air_time", "taxi_in", "taxi_out")
"""Attribute order used throughout (minutes; normalised downstream)."""


def dot_dataset(
    n_items: int = 1_322_023,
    rng: np.random.Generator | None = None,
    *,
    normalized: bool = True,
) -> Dataset:
    """Synthetic flight records with the DoT on-time schema.

    Parameters
    ----------
    n_items:
        Number of flights (the paper's file has 1,322,023 records).
    rng:
        Source of randomness; seeded by default for reproducible benches.
    normalized:
        Min-max normalise all three attributes (higher is better after
        normalisation, matching the paper's generic preprocessing).
    """
    generator = rng if rng is not None else np.random.default_rng(1322023)
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    # Route mixture: 55% short-haul, 35% medium, 10% long-haul.
    mix = generator.choice(3, size=n_items, p=(0.55, 0.35, 0.10))
    means = np.array([75.0, 160.0, 300.0])[mix]
    spreads = np.array([20.0, 35.0, 55.0])[mix]
    air_time = np.clip(generator.normal(means, spreads), 15.0, 700.0)
    congestion = generator.gamma(2.0, 2.0, size=n_items)
    taxi_in = np.clip(generator.gamma(3.0, 2.0, size=n_items) + congestion, 1.0, 90.0)
    taxi_out = np.clip(
        generator.gamma(4.0, 3.0, size=n_items) + 1.5 * congestion, 2.0, 150.0
    )
    raw = Dataset(
        np.column_stack([air_time, taxi_in, taxi_out]),
        attribute_names=DOT_ATTRIBUTES,
    )
    return raw.normalized() if normalized else raw
