"""JSON-friendly serialisation of analysis results.

Producers publish labels and stability reports; consumers archive and
diff them.  Every public result object maps onto plain dictionaries of
JSON-native types (floats, ints, strings, lists), so reports can be
stored, versioned and compared without pickling library objects:

- :func:`stability_result_to_dict` / :func:`ranking_to_dict`
- :func:`label_to_dict` — the full Ranking Facts panel
- :func:`tradeoff_to_dicts` — the stability/similarity frontier
- :func:`dump_json` — convenience writer with stable key order

Region objects serialise structurally (angle intervals, halfspace
normals); Monte-Carlo metadata (sample counts, confidence errors) is
preserved so archived numbers remain interpretable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.label import RankingLabel
from repro.core.ranking import Ranking
from repro.core.stability import AngularRegion, StabilityResult
from repro.core.tradeoff import TradeoffPoint
from repro.geometry.halfspace import ConvexCone

__all__ = [
    "ranking_to_dict",
    "stability_result_to_dict",
    "label_to_dict",
    "tradeoff_to_dicts",
    "dump_json",
]


def ranking_to_dict(ranking: Ranking) -> dict[str, Any]:
    """Structural form of a (possibly partial) ranking."""
    return {
        "order": list(ranking.order),
        "n_items": ranking.n_items,
        "is_complete": ranking.is_complete,
    }


def _region_to_dict(region: AngularRegion | ConvexCone | None) -> dict[str, Any] | None:
    if region is None:
        return None
    if isinstance(region, AngularRegion):
        return {"kind": "angular", "lo": region.lo, "hi": region.hi}
    if isinstance(region, ConvexCone):
        return {
            "kind": "cone",
            "dim": region.dim,
            "halfspaces": [
                {"normal": list(h.normal), "sign": h.sign}
                for h in region.halfspaces
            ],
        }
    raise TypeError(f"unknown region type {type(region).__name__}")


def stability_result_to_dict(result: StabilityResult) -> dict[str, Any]:
    """Structural form of one verification / GET-NEXT outcome."""
    return {
        "ranking": ranking_to_dict(result.ranking),
        "stability": result.stability,
        "confidence_error": result.confidence_error,
        "sample_count": result.sample_count,
        "top_k_set": sorted(result.top_k_set) if result.top_k_set is not None else None,
        "region": _region_to_dict(result.region),
    }


def label_to_dict(label: RankingLabel) -> dict[str, Any]:
    """Structural form of a Ranking Facts label (reference [5])."""
    return {
        "reference_weights": [float(w) for w in label.reference_weights],
        "reference_ranking": ranking_to_dict(label.reference_ranking),
        "reference_stability": label.reference_stability,
        "reference_percentile": label.reference_percentile,
        "n_distinct_rankings": label.n_distinct_rankings,
        "alternatives": [
            {
                **stability_result_to_dict(alt),
                "displacement": moved,
            }
            for alt, moved in zip(
                label.alternatives, label.alternative_displacements
            )
        ],
        "item_profiles": [
            {
                "item": p.item,
                "min_rank": p.min_rank,
                "max_rank": p.max_rank,
                "mean_rank": p.mean_rank,
                "quantiles": {str(q): v for q, v in p.quantiles.items()},
            }
            for p in label.item_profiles
        ],
        "bubble_items": [
            {"item": item, "probability": prob} for item, prob in label.bubble_items
        ],
        "k": label.k,
        "n_samples": label.n_samples,
    }


def tradeoff_to_dicts(points: list[TradeoffPoint]) -> list[dict[str, Any]]:
    """Structural form of the stability/similarity frontier."""
    return [
        {
            "cosine": p.cosine,
            "theta": p.theta,
            "best": stability_result_to_dict(p.best),
            "reference_stability": p.reference_stability,
            "displacement": p.displacement,
            "moved_items": [
                {"item": item, "reference_rank": old, "new_rank": new}
                for item, old, new in p.moved_items
            ],
        }
        for p in points
    ]


def dump_json(payload: Any, path: str | Path) -> None:
    """Write a serialised payload as UTF-8 JSON with stable ordering."""

    def _default(obj: Any) -> Any:
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"unserialisable type {type(obj).__name__}")

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_default)
        handle.write("\n")
