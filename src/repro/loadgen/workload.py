"""Deterministic, seedable workload synthesis for the serving tier.

A :class:`WorkloadSpec` is a small, JSON-serializable description of a
production-shaped traffic pattern: a Zipf-skewed vocabulary of query
configurations (the "hot keys"), an op mix over the protocol surface
(``top_stable`` / ``stability_of`` / ``get_next`` / ``explain`` /
``checkpoint``), bursty open-loop arrivals, pipelined batches, and
connection churn.  :func:`generate_plan` expands a spec into a concrete
:class:`WorkloadPlan` — one :class:`Event` per request, each with a
scheduled arrival offset, a connection assignment, a pipelining batch
id, and a fully materialized request dict.

Everything is a pure function of the spec (one ``numpy`` Generator
seeded from ``spec.seed``): the same spec always yields byte-identical
plans, which is what makes traces replayable — the replayer regenerates
the requests from the spec embedded in the trace header and only needs
the recorded *responses* for comparison.

Determinism of the *answers* (not just the requests) rests on one
invariant the vocabulary builder enforces: every ``(kind, k, backend)``
configuration appears with exactly **one** sampling budget.  Pool-based
query semantics answer from the cumulative pool, so two budgets for one
config would make answers depend on which request grew the pool first —
an interleaving artifact, not a workload property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import synthetic_dataset

__all__ = [
    "OPS",
    "DEFAULT_MIX",
    "WorkloadSpec",
    "Event",
    "WorkloadPlan",
    "generate_plan",
    "make_dataset",
]

#: Ops the generator can emit.  Query ops answer deterministically from
#: the shared pools; ``explain`` and ``checkpoint`` exercise the control
#: surface (their responses are load-dependent and compared loosely).
OPS = ("top_stable", "stability_of", "get_next", "explain", "checkpoint")

#: Default op mix (weights; normalized at generation time).
DEFAULT_MIX = (
    ("top_stable", 0.42),
    ("stability_of", 0.23),
    ("get_next", 0.15),
    ("explain", 0.12),
    ("checkpoint", 0.08),
)

_KINDS = ("topk_set", "topk_ranked")
_K_CHOICES = (2, 3, 4, 5, 6, 8)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to regenerate a workload, byte for byte."""

    seed: int = 0
    #: Total requests across all connections.
    requests: int = 200
    #: Concurrent client connections driving the plan.
    connections: int = 8
    #: Mean open-loop arrival rate, requests/second (across the fleet).
    arrival_rate: float = 400.0
    #: Peak/trough rate ratio of the bursty arrival process (1 = flat).
    burstiness: float = 4.0
    #: Seconds per on/off burst cycle.
    burst_every: float = 2.0
    #: P(a batch reopens its connection first) — connection churn.
    churn: float = 0.05
    #: P(the next same-connection request joins the current batch).
    pipeline: float = 0.25
    #: Hard cap on pipelined batch length.
    max_batch: int = 4
    #: Size of the query-configuration vocabulary (the key space).
    n_configs: int = 8
    #: Zipf exponent for config popularity (0 = uniform; bigger = hotter).
    config_skew: float = 1.2
    #: Op mix as (op, weight) pairs.
    mix: tuple = DEFAULT_MIX
    #: Sampling budgets assigned round-robin over the vocabulary.
    budget_choices: tuple = (300, 500, 800)
    #: The synthetic dataset the plan runs against.
    dataset_family: str = "independent"
    dataset_items: int = 400
    dataset_attributes: int = 3
    dataset_seed: int = 20180905
    #: Seed of the *server* session (embedded so a self-hosted replay
    #: reproduces the recorded server, not just the recorded clients).
    server_seed: int = 7

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")
        if self.burstiness < 1:
            raise ValueError("burstiness must be >= 1")
        if not 0 <= self.churn <= 1 or not 0 <= self.pipeline <= 1:
            raise ValueError("churn and pipeline are probabilities")
        if self.n_configs < 1:
            raise ValueError("n_configs must be >= 1")
        names = [op for op, _ in self.mix]
        if len(set(names)) != len(names):
            raise ValueError("duplicate op in mix")
        for op, weight in self.mix:
            if op not in OPS:
                raise ValueError(f"unknown op {op!r} in mix; known: {OPS}")
            if weight < 0:
                raise ValueError(f"negative weight for {op!r}")
        if not any(weight > 0 for _, weight in self.mix):
            raise ValueError("the op mix has no positive weight")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "connections": self.connections,
            "arrival_rate": self.arrival_rate,
            "burstiness": self.burstiness,
            "burst_every": self.burst_every,
            "churn": self.churn,
            "pipeline": self.pipeline,
            "max_batch": self.max_batch,
            "n_configs": self.n_configs,
            "config_skew": self.config_skew,
            "mix": [[op, weight] for op, weight in self.mix],
            "budget_choices": list(self.budget_choices),
            "dataset_family": self.dataset_family,
            "dataset_items": self.dataset_items,
            "dataset_attributes": self.dataset_attributes,
            "dataset_seed": self.dataset_seed,
            "server_seed": self.server_seed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkloadSpec":
        doc = dict(doc)
        if "mix" in doc:
            doc["mix"] = tuple((op, float(w)) for op, w in doc["mix"])
        if "budget_choices" in doc:
            doc["budget_choices"] = tuple(
                int(b) for b in doc["budget_choices"]
            )
        return cls(**doc)


@dataclass(frozen=True)
class Event:
    """One scheduled request of a plan."""

    index: int       #: global order; the trace correlates by this
    t: float         #: arrival offset (seconds from plan start)
    conn: int        #: connection this request rides on
    batch: int       #: consecutive same-conn events sharing it pipeline
    reconnect: bool  #: drop and reopen the connection before this batch
    request: dict


@dataclass(frozen=True)
class WorkloadPlan:
    spec: WorkloadSpec
    configs: tuple  #: the (kind, k, backend, budget) vocabulary, hot-first
    events: tuple   #: Event per request, in global arrival order

    def events_by_connection(self) -> list[list[list[Event]]]:
        """Per connection: the ordered list of pipelined batches."""
        per_conn: list[list[list[Event]]] = [
            [] for _ in range(self.spec.connections)
        ]
        for event in self.events:
            batches = per_conn[event.conn]
            if batches and batches[-1][0].batch == event.batch:
                batches[-1].append(event)
            else:
                batches.append([event])
        return per_conn


def make_dataset(spec: WorkloadSpec):
    """The plan's dataset, regenerated from the spec (pure function)."""
    return synthetic_dataset(
        spec.dataset_family,
        spec.dataset_items,
        spec.dataset_attributes,
        np.random.default_rng(spec.dataset_seed),
    )


def _config_vocabulary(spec: WorkloadSpec, rng: np.random.Generator):
    """``n_configs`` distinct (kind, k, backend) keys, each bound to one
    budget for the plan's lifetime (see the module docstring)."""
    candidates = [("full", None)]
    for kind in _KINDS:
        for k in _K_CHOICES:
            if k < spec.dataset_items:
                candidates.append((kind, k))
    order = rng.permutation(len(candidates))
    chosen = [candidates[i] for i in order[: spec.n_configs]]
    vocabulary = []
    for i, (kind, k) in enumerate(chosen):
        budget = int(spec.budget_choices[i % len(spec.budget_choices)])
        vocabulary.append(
            {"kind": kind, "k": k, "backend": "randomized", "budget": budget}
        )
    return tuple(vocabulary)


def _zipf_weights(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def _arrival_times(spec: WorkloadSpec, rng: np.random.Generator) -> list[float]:
    """Open-loop bursty arrivals: an on/off-modulated Poisson process
    whose *mean* rate is ``spec.arrival_rate`` (the "on" half-cycle runs
    at ``burstiness``x the "off" half-cycle)."""
    base = 2.0 * spec.arrival_rate / (1.0 + spec.burstiness)
    half = spec.burst_every / 2.0
    times, t = [], 0.0
    for _ in range(spec.requests):
        rate = base * spec.burstiness if (t % spec.burst_every) < half else base
        t += float(rng.exponential(1.0 / rate))
        times.append(t)
    return times


def _query_fields(config: dict) -> dict:
    fields = {"kind": config["kind"], "backend": config["backend"]}
    if config["k"] is not None:
        fields["k"] = config["k"]
    return fields


def _build_request(
    op: str, config: dict, spec: WorkloadSpec, rng: np.random.Generator
) -> dict:
    if op == "top_stable":
        return {
            "op": "top_stable",
            "m": int(rng.integers(1, 4)),
            **_query_fields(config),
            "budget": config["budget"],
        }
    if op == "stability_of":
        # Set/ranked kinds verify a full-length candidate; ``full``
        # uses the ranked-prefix fast path on a short prefix.  Most
        # random candidates are simply unstable (stability ~ 0) or
        # infeasible — both deterministic, both fine under load.
        length = config["k"] if config["k"] is not None else int(
            rng.integers(1, 4)
        )
        ranking = rng.choice(spec.dataset_items, size=length, replace=False)
        return {
            "op": "stability_of",
            **_query_fields(config),
            "ranking": [int(i) for i in ranking],
            "min_samples": config["budget"],
        }
    if op == "get_next":
        return {
            "op": "get_next",
            **_query_fields(config),
            "budget": config["budget"],
        }
    if op == "explain":
        return {
            "op": "explain",
            "query": {
                "op": "top_stable",
                "m": 3,
                **_query_fields(config),
                "budget": config["budget"],
            },
        }
    if op == "checkpoint":
        return {"op": "checkpoint"}
    raise ValueError(f"unknown op {op!r}")


def generate_plan(spec: WorkloadSpec) -> WorkloadPlan:
    """Expand a spec into a concrete plan (pure, deterministic)."""
    rng = np.random.default_rng(spec.seed)
    configs = _config_vocabulary(spec, rng)
    config_weights = _zipf_weights(len(configs), spec.config_skew)
    ops = [op for op, _ in spec.mix]
    op_weights = np.array([weight for _, weight in spec.mix], dtype=float)
    op_weights /= op_weights.sum()

    times = _arrival_times(spec, rng)
    conns = rng.integers(0, spec.connections, size=spec.requests)
    op_picks = rng.choice(len(ops), size=spec.requests, p=op_weights)
    config_picks = rng.choice(
        len(configs), size=spec.requests, p=config_weights
    )

    requests = [
        _build_request(ops[op_picks[i]], configs[config_picks[i]], spec, rng)
        for i in range(spec.requests)
    ]

    # Pipelining batches + churn, decided per connection in a fixed
    # order so rng consumption stays deterministic.  A reconnect never
    # lands mid-batch: churn applies to batch heads only.
    order_by_conn: list[list[int]] = [[] for _ in range(spec.connections)]
    for i in range(spec.requests):
        order_by_conn[int(conns[i])].append(i)
    batch_of = [0] * spec.requests
    reconnect_of = [False] * spec.requests
    next_batch = 0
    for conn in range(spec.connections):
        indices = order_by_conn[conn]
        position = 0
        while position < len(indices):
            size = 1
            while (
                position + size < len(indices)
                and size < spec.max_batch
                and rng.random() < spec.pipeline
            ):
                size += 1
            head = indices[position]
            reconnect_of[head] = bool(rng.random() < spec.churn)
            for offset in range(size):
                batch_of[indices[position + offset]] = next_batch
            next_batch += 1
            position += size

    events = tuple(
        Event(
            index=i,
            t=times[i],
            conn=int(conns[i]),
            batch=batch_of[i],
            reconnect=reconnect_of[i],
            request=requests[i],
        )
        for i in range(spec.requests)
    )
    return WorkloadPlan(spec=spec, configs=configs, events=events)
