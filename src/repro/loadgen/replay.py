"""Re-run a recorded trace against a server build and compare answers.

The trace header carries the full workload spec, so the replayer
regenerates every request (and, when self-hosting, the exact server
configuration) from the spec — the file's records only supply the
*expected responses*.  Tampered traces are refused: regenerated
requests must match the recorded ones byte for byte before any answer
is compared.

``address=None`` replays against a fresh self-hosted server of the
current build — the acceptance check "a recorded trace replayed
against the same build yields equivalent answers".  With an address it
replays against any live server; that server must be configured like
the recorded one (same dataset, same session seed) for exact ops to
match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.loadgen import runner, trace as trace_mod
from repro.loadgen.workload import generate_plan

__all__ = ["ReplayReport", "replay_trace"]


@dataclass
class ReplayReport:
    """Replay outcome: the oracle verdict plus run aggregates."""

    comparison: trace_mod.ComparisonReport
    load: runner.LoadResult

    @property
    def equivalent(self) -> bool:
        return self.comparison.equivalent

    def to_dict(self) -> dict:
        return {
            "equivalent": self.equivalent,
            "comparison": self.comparison.to_dict(),
            "load": self.load.to_dict(),
        }


def replay_trace(
    path,
    *,
    address: str | None = None,
    time_scale: float = 1.0,
    chaos: str | None = None,
    chaos_seed: int = 0,
    retry=None,
) -> ReplayReport:
    """Replay one trace file; see the module docstring.

    ``chaos`` (a :func:`~repro.server.parse_chaos` spec) injects faults
    into the replaying server — self-hosted only, since fault injection
    is server configuration.  Chaos replays judge ``get_next`` in
    subset mode: a dropped hand-out is never retried, so the faulty run
    draws a prefix of the fault-free run's deterministic sequence.
    ``retry`` enables client-side retries (``True`` for the default
    policy) so the oracle can prove answers stay byte-identical when
    retries paper over injected faults.
    """
    spec, records = trace_mod.read_trace(path)
    plan = generate_plan(spec)
    if len(records) != len(plan.events):
        raise trace_mod.TraceError(
            f"{path} holds {len(records)} records but its spec generates "
            f"{len(plan.events)} requests — the trace was truncated or edited"
        )
    for event, record in zip(plan.events, records):
        if record.get("request") != event.request:
            raise trace_mod.TraceError(
                f"{path}: record {record.get('i')} does not match the "
                f"request its spec regenerates — the trace was edited"
            )
    config_fields = {}
    if chaos is not None:
        if address is not None:
            raise ValueError(
                "chaos injection configures the self-hosted server and "
                "cannot be combined with address="
            )
        config_fields = {"chaos": chaos, "chaos_seed": chaos_seed}
    load = runner.run_load(
        plan,
        address=address,
        time_scale=time_scale,
        retry=retry,
        **config_fields,
    )
    comparison = trace_mod.compare_records(
        records,
        load.records,
        get_next_mode="subset" if chaos is not None else "strict",
    )
    return ReplayReport(comparison=comparison, load=load)
