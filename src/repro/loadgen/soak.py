"""Bounded soak: sustained skewed load with resource invariants.

:func:`run_soak` self-hosts a server with a live ``/metrics`` endpoint,
runs one warmup pass of a fixed workload plan (pools grow once, caches
fill, the allocator reaches steady state), scrapes a baseline, then
re-runs the same plan round after round until the deadline.  The
invariants are asserted from the *outside*, via the Prometheus scrape —
exactly what a production alert would see:

- ``repro_process_rss_bytes`` must not grow more than ``rss_limit``
  (default 10%) over the post-warmup baseline;
- ``repro_shm_segments`` must be 0 after the load stops (no leaked
  shared-memory segments);
- the server must still answer ``ping`` after the final round.

Replaying one fixed plan is deliberate: the config vocabulary (and the
one-budget-per-config invariant) keeps pool memory bounded by design,
so any RSS ramp the soak sees is a leak, not workload drift.

Runs as a module for CI::

    python -m repro.loadgen.soak --seconds 60 --connections 32

exits non-zero if any invariant fails, and prints the report as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

from repro.loadgen import runner
from repro.loadgen.workload import WorkloadSpec, generate_plan
from repro.server import ServeClient

__all__ = ["SoakReport", "run_soak", "main"]

RSS_GAUGE = "repro_process_rss_bytes"
SHM_GAUGE = "repro_shm_segments"


@dataclass
class SoakReport:
    seconds: float
    connections: int
    rounds: int = 0
    requests: int = 0
    ok: int = 0
    error_codes: dict = field(default_factory=dict)
    reconnects: int = 0
    rss_baseline: float = 0.0
    rss_final: float = 0.0
    shm_segments: float = 0.0
    failures: list = field(default_factory=list)

    @property
    def rss_growth(self) -> float:
        if self.rss_baseline <= 0:
            return 0.0
        return (self.rss_final - self.rss_baseline) / self.rss_baseline

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "connections": self.connections,
            "rounds": self.rounds,
            "requests": self.requests,
            "ok": self.ok,
            "error_codes": self.error_codes,
            "reconnects": self.reconnects,
            "rss_baseline": self.rss_baseline,
            "rss_final": self.rss_final,
            "rss_growth": self.rss_growth,
            "shm_segments": self.shm_segments,
            "passed": self.passed,
            "failures": self.failures,
        }


def build_soak_spec(
    *,
    seed: int = 0,
    connections: int = 32,
    requests_per_round: int | None = None,
    arrival_rate: float = 600.0,
) -> WorkloadSpec:
    """The soak's fixed plan: hot-key skew, churn, pipelining, bursts."""
    if requests_per_round is None:
        requests_per_round = max(200, connections * 12)
    return WorkloadSpec(
        seed=seed,
        requests=requests_per_round,
        connections=connections,
        arrival_rate=arrival_rate,
        burstiness=4.0,
        burst_every=1.0,
        churn=0.05,
        pipeline=0.25,
        n_configs=8,
        config_skew=1.2,
        dataset_items=400,
    )


def run_soak(
    *,
    seconds: float = 60.0,
    connections: int = 32,
    seed: int = 0,
    rss_limit: float = 0.10,
    arrival_rate: float = 600.0,
    log=None,
) -> SoakReport:
    """See the module docstring.  ``log`` (callable) gets progress lines."""
    import time

    report = SoakReport(seconds=seconds, connections=connections)
    spec = build_soak_spec(
        seed=seed, connections=connections, arrival_rate=arrival_rate
    )
    plan = generate_plan(spec)

    def emit(message: str) -> None:
        if log is not None:
            log(message)

    with runner.hosted_server(plan, metrics_port=0) as handle:
        metrics_port = handle.metrics_port
        assert metrics_port is not None
        address = f"{handle.host}:{handle.port}"

        def one_round() -> runner.LoadResult:
            result = runner.run_load(plan, address=address)
            report.rounds += 1
            report.requests += result.requests
            report.ok += result.ok
            report.reconnects += result.reconnects
            for code, count in result.error_codes.items():
                report.error_codes[code] = (
                    report.error_codes.get(code, 0) + count
                )
            return result

        emit(f"soak: warmup round against {address}")
        one_round()  # pools grow to target, caches fill
        baseline = runner.scrape_metrics(metrics_port, host=handle.host)
        report.rss_baseline = baseline.get(RSS_GAUGE, 0.0)
        emit(
            f"soak: baseline rss {report.rss_baseline / 1e6:.1f} MB, "
            f"running {seconds:.0f}s at {connections} connections"
        )

        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            result = one_round()
            emit(
                f"soak: round {report.rounds} — "
                f"{result.requests / max(result.elapsed, 1e-9):.0f} req/s, "
                f"{sum(result.error_codes.values())} errors"
            )

        final = runner.scrape_metrics(metrics_port, host=handle.host)
        report.rss_final = final.get(RSS_GAUGE, 0.0)
        report.shm_segments = final.get(SHM_GAUGE, 0.0)

        with ServeClient(host=handle.host, port=handle.port) as client:
            if client.ping().get("ok") is not True:
                report.failures.append("server stopped answering ping")

    if report.rss_baseline <= 0:
        report.failures.append(f"{RSS_GAUGE} missing from the scrape")
    if report.rss_growth > rss_limit:
        report.failures.append(
            f"rss grew {report.rss_growth:.1%} over the warm baseline "
            f"(limit {rss_limit:.0%}): "
            f"{report.rss_baseline:.0f} -> {report.rss_final:.0f} bytes"
        )
    if report.shm_segments != 0:
        report.failures.append(
            f"{SHM_GAUGE} is {report.shm_segments:.0f} after the load "
            f"stopped (shared-memory leak)"
        )
    unexpected = {
        code: count
        for code, count in report.error_codes.items()
        # exhausted get_next cursors, admission-control sheds, and
        # checkpoints against a non-durable server are expected under
        # sustained replayed load; anything else is not.
        if code not in ("exhausted", "busy", "infeasible", "no_state_dir")
    }
    if unexpected:
        report.failures.append(f"unexpected error codes: {unexpected}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen.soak",
        description="Bounded soak asserting flat RSS and zero shm leaks "
        "from the live /metrics scrape.",
    )
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--connections", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=600.0)
    parser.add_argument(
        "--rss-limit",
        type=float,
        default=0.10,
        help="max fractional RSS growth over the warm baseline",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report to PATH"
    )
    args = parser.parse_args(argv)
    report = run_soak(
        seconds=args.seconds,
        connections=args.connections,
        seed=args.seed,
        rss_limit=args.rss_limit,
        arrival_rate=args.rate,
        log=lambda message: print(message, file=sys.stderr),
    )
    doc = report.to_dict()
    print(json.dumps(doc, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
