"""Bounded soak: sustained skewed load with resource invariants.

:func:`run_soak` self-hosts a server with a live ``/metrics`` endpoint,
runs one warmup pass of a fixed workload plan (pools grow once, caches
fill, the allocator reaches steady state), scrapes a baseline, then
re-runs the same plan round after round until the deadline.  The
invariants are asserted from the *outside*, via the Prometheus scrape —
exactly what a production alert would see:

- ``repro_process_rss_bytes`` must not grow more than ``rss_limit``
  (default 10%) over the post-warmup baseline;
- ``repro_shm_segments`` must be 0 after the load stops (no leaked
  shared-memory segments);
- the server must still answer ``ping`` after the final round.

Replaying one fixed plan is deliberate: the config vocabulary (and the
one-budget-per-config invariant) keeps pool memory bounded by design,
so any RSS ramp the soak sees is a leak, not workload drift.

A failing soak leaves evidence behind, not just a verdict: the final
``/metrics`` scrape is embedded in the report even when a round died
mid-way, and — with ``--diag PATH`` — the server's flight-recorder
diag bundle (recent events, slow queries, wire traces, metrics
snapshots, profiler stacks) is fetched over the wire and written to
``PATH``.  ``--profile-hz`` runs the sampling profiler for the whole
soak; ``--inject-failure`` forces the failure path end-to-end (CI
asserts the bundle machinery this way).

Runs as a module for CI::

    python -m repro.loadgen.soak --seconds 60 --connections 32

exits non-zero if any invariant fails, and prints the report as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

from repro.loadgen import runner, trace as trace_mod
from repro.loadgen.workload import WorkloadSpec, generate_plan
from repro.server import RetryPolicy, ServeClient

__all__ = ["SoakReport", "run_soak", "main"]

RSS_GAUGE = "repro_process_rss_bytes"
SHM_GAUGE = "repro_shm_segments"
CHAOS_COUNTER = "repro_chaos_injected_total"
RETRY_COUNTER = "repro_retries_total"

#: Objectives the hosted server tracks during a soak — generous enough
#: that a healthy run never violates them; their purpose here is to
#: exercise the ``repro_slo_*`` exposition under real load.
SOAK_SLO = "p99:2s,err:20%"


@dataclass
class SoakReport:
    seconds: float
    connections: int
    rounds: int = 0
    requests: int = 0
    ok: int = 0
    error_codes: dict = field(default_factory=dict)
    reconnects: int = 0
    #: Chaos spec the hosted server ran with (``None``: fault-free).
    chaos: str | None = None
    #: Requests the workers re-issued after retryable failures
    #: (chaos mode runs its clients with the default retry policy).
    retried: int = 0
    #: Rounds whose answers the oracle compared against the warmup
    #: round, and the mismatches it found — chaos mode only.
    oracle_rounds: int = 0
    oracle_mismatches: list = field(default_factory=list)
    rss_baseline: float = 0.0
    rss_final: float = 0.0
    shm_segments: float = 0.0
    failures: list = field(default_factory=list)
    #: The closing ``/metrics`` scrape — embedded even when a round
    #: failed mid-way, so the evidence the verdict was judged on ships
    #: with the report.
    metrics_final: dict = field(default_factory=dict)
    #: Sampling-profiler snapshot (with collapsed stacks) when the soak
    #: ran with ``profile_hz``.
    profile: dict | None = None
    #: Path of the diag bundle written on failure (``None``: no failure
    #: or no ``diag_path`` configured).
    diag_bundle: str | None = None

    @property
    def rss_growth(self) -> float:
        if self.rss_baseline <= 0:
            return 0.0
        return (self.rss_final - self.rss_baseline) / self.rss_baseline

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "connections": self.connections,
            "rounds": self.rounds,
            "requests": self.requests,
            "ok": self.ok,
            "error_codes": self.error_codes,
            "reconnects": self.reconnects,
            "chaos": self.chaos,
            "retried": self.retried,
            "oracle_rounds": self.oracle_rounds,
            "oracle_mismatches": self.oracle_mismatches[:20],
            "rss_baseline": self.rss_baseline,
            "rss_final": self.rss_final,
            "rss_growth": self.rss_growth,
            "shm_segments": self.shm_segments,
            "passed": self.passed,
            "failures": self.failures,
            "metrics_final": self.metrics_final,
            "profile": self.profile,
            "diag_bundle": self.diag_bundle,
        }


def build_soak_spec(
    *,
    seed: int = 0,
    connections: int = 32,
    requests_per_round: int | None = None,
    arrival_rate: float = 600.0,
) -> WorkloadSpec:
    """The soak's fixed plan: hot-key skew, churn, pipelining, bursts."""
    if requests_per_round is None:
        requests_per_round = max(200, connections * 12)
    return WorkloadSpec(
        seed=seed,
        requests=requests_per_round,
        connections=connections,
        arrival_rate=arrival_rate,
        burstiness=4.0,
        burst_every=1.0,
        churn=0.05,
        pipeline=0.25,
        n_configs=8,
        config_skew=1.2,
        dataset_items=400,
    )


def _check_invariants(report: SoakReport, rss_limit: float) -> None:
    """Append an entry to ``report.failures`` per violated invariant."""
    if report.rss_baseline <= 0:
        report.failures.append(f"{RSS_GAUGE} missing from the scrape")
    if report.rss_growth > rss_limit:
        report.failures.append(
            f"rss grew {report.rss_growth:.1%} over the warm baseline "
            f"(limit {rss_limit:.0%}): "
            f"{report.rss_baseline:.0f} -> {report.rss_final:.0f} bytes"
        )
    if report.shm_segments != 0:
        report.failures.append(
            f"{SHM_GAUGE} is {report.shm_segments:.0f} after the load "
            f"stopped (shared-memory leak)"
        )
    # exhausted get_next cursors, admission-control sheds, and
    # checkpoints against a non-durable server are expected under
    # sustained replayed load; anything else is not.
    allowed = {"exhausted", "busy", "infeasible", "no_state_dir"}
    if report.chaos is not None:
        # Injected faults surface as these codes by design.
        allowed |= {
            "unavailable",
            "overloaded",
            "deadline_exceeded",
            "connection_lost",
        }
    unexpected = {
        code: count
        for code, count in report.error_codes.items()
        if code not in allowed
    }
    if unexpected:
        report.failures.append(f"unexpected error codes: {unexpected}")
    if report.chaos is not None:
        injected = report.metrics_final.get(CHAOS_COUNTER, 0.0)
        if injected <= 0:
            report.failures.append(
                f"chaos mode ran but {CHAOS_COUNTER} is {injected:.0f} — "
                f"the injector never fired"
            )
        retried = report.metrics_final.get(RETRY_COUNTER, 0.0)
        if retried <= 0 and report.retried <= 0:
            report.failures.append(
                f"chaos mode ran but {RETRY_COUNTER} is {retried:.0f} and "
                f"no worker re-issued a request — retries never engaged"
            )
        if report.oracle_mismatches:
            report.failures.append(
                f"answer oracle found {len(report.oracle_mismatches)} "
                f"mismatches across {report.oracle_rounds} chaos rounds"
            )


def run_soak(
    *,
    seconds: float = 60.0,
    connections: int = 32,
    seed: int = 0,
    rss_limit: float = 0.10,
    arrival_rate: float = 600.0,
    profile_hz: float | None = None,
    inject_failure: bool = False,
    diag_path: str | None = None,
    chaos: str | None = None,
    log=None,
) -> SoakReport:
    """See the module docstring.  ``log`` (callable) gets progress lines.

    ``chaos`` (a :func:`~repro.server.parse_chaos` spec) turns the soak
    into a fault-injection run: the hosted server injects the given
    faults, the workers run with the default retry policy, and every
    post-warmup round's answers are compared against the warmup round
    (``get_next`` skipped — its cursors advance across rounds).  The
    run fails if the oracle finds a mismatch, or if the final scrape
    shows the injector or the retry path never fired.
    """
    import time

    report = SoakReport(seconds=seconds, connections=connections, chaos=chaos)
    spec = build_soak_spec(
        seed=seed, connections=connections, arrival_rate=arrival_rate
    )
    plan = generate_plan(spec)

    def emit(message: str) -> None:
        if log is not None:
            log(message)

    config_fields = {}
    if chaos is not None:
        config_fields = {"chaos": chaos, "chaos_seed": seed}
    baseline_records: list | None = None

    with runner.hosted_server(
        plan, metrics_port=0, slo=SOAK_SLO, **config_fields
    ) as handle:
        metrics_port = handle.metrics_port
        assert metrics_port is not None
        address = f"{handle.host}:{handle.port}"

        def one_round() -> runner.LoadResult:
            nonlocal baseline_records
            result = runner.run_load(
                plan, address=address, retry=chaos is not None
            )
            report.rounds += 1
            report.requests += result.requests
            report.ok += result.ok
            report.reconnects += result.reconnects
            report.retried += result.retried
            for code, count in result.error_codes.items():
                report.error_codes[code] = (
                    report.error_codes.get(code, 0) + count
                )
            if chaos is not None:
                if baseline_records is None:
                    baseline_records = result.records
                else:
                    verdict = trace_mod.compare_records(
                        baseline_records,
                        result.records,
                        get_next_mode="skip",
                    )
                    report.oracle_rounds += 1
                    report.oracle_mismatches.extend(verdict.mismatches)
            return result

        if profile_hz is not None:
            # The hosted server is in-process, so the wire-started
            # profiler samples the soak's actual serving work.
            with ServeClient(host=handle.host, port=handle.port) as client:
                started = client.profile("start", hz=profile_hz)
                if started.get("ok") is not True:
                    report.failures.append(
                        f"profiler failed to start: {started}"
                    )

        # Rounds are wrapped so a mid-round exception (a died
        # connection, a protocol bug) becomes a *reported* failure —
        # the closing scrape, ping check, and diag fetch still run.
        try:
            if chaos is not None:
                emit(f"soak: chaos spec {chaos!r}, retries enabled")
            emit(f"soak: warmup round against {address}")
            one_round()  # pools grow to target, caches fill
            baseline = runner.scrape_metrics(metrics_port, host=handle.host)
            report.rss_baseline = baseline.get(RSS_GAUGE, 0.0)
            emit(
                f"soak: baseline rss {report.rss_baseline / 1e6:.1f} MB, "
                f"running {seconds:.0f}s at {connections} connections"
            )

            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                result = one_round()
                emit(
                    f"soak: round {report.rounds} — "
                    f"{result.requests / max(result.elapsed, 1e-9):.0f} "
                    f"req/s, {sum(result.error_codes.values())} errors"
                )
        except Exception as exc:
            report.failures.append(
                f"round {report.rounds + 1} raised "
                f"{type(exc).__name__}: {exc}"
            )

        # The closing scrape runs even when a round failed mid-way —
        # losing the final metrics is losing the evidence the verdict
        # was judged on.
        try:
            final = runner.scrape_metrics(metrics_port, host=handle.host)
        except Exception as exc:
            report.failures.append(f"final metrics scrape failed: {exc}")
        else:
            report.rss_final = final.get(RSS_GAUGE, 0.0)
            report.shm_segments = final.get(SHM_GAUGE, 0.0)
            report.metrics_final = final

        if profile_hz is not None:
            with ServeClient(host=handle.host, port=handle.port) as client:
                stopped = client.profile("stop")
                if stopped.get("ok") is True:
                    report.profile = stopped.get("profile")

        # Under chaos the injector can hit the health ping itself
        # (an ``unavailable`` answer or a dropped connection says
        # nothing about server health) — retry through it.
        ping_retry = None
        if chaos is not None:
            ping_retry = RetryPolicy(
                max_attempts=8, base_delay=0.01, max_delay=0.1, seed=0
            )
        try:
            with ServeClient(
                host=handle.host, port=handle.port, retry=ping_retry
            ) as client:
                if client.ping().get("ok") is not True:
                    report.failures.append("server stopped answering ping")
        except Exception as exc:
            report.failures.append(f"server stopped answering ping: {exc}")

        _check_invariants(report, rss_limit)
        if inject_failure:
            report.failures.append("injected failure (--inject-failure)")

        # A failing soak ships its evidence: fetch the server's flight
        # rings over the wire while it is still alive.
        if report.failures and diag_path is not None:
            try:
                with ServeClient(
                    host=handle.host, port=handle.port
                ) as client:
                    bundle = client.diag().get("diag")
                if bundle is not None:
                    bundle["reason"] = "soak-failure"
                    bundle["soak_failures"] = list(report.failures)
                    with open(diag_path, "w", encoding="utf-8") as out:
                        json.dump(bundle, out, default=str)
                        out.write("\n")
                    report.diag_bundle = diag_path
                    emit(f"soak: diag bundle written to {diag_path}")
            except Exception as exc:
                emit(f"soak: diag bundle fetch failed: {exc}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen.soak",
        description="Bounded soak asserting flat RSS and zero shm leaks "
        "from the live /metrics scrape.",
    )
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--connections", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=600.0)
    parser.add_argument(
        "--rss-limit",
        type=float,
        default=0.10,
        help="max fractional RSS growth over the warm baseline",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report to PATH"
    )
    parser.add_argument(
        "--diag",
        metavar="PATH",
        default="SOAK_DIAG.json",
        help="write the server's flight-recorder diag bundle to PATH "
        "when the soak fails (default SOAK_DIAG.json)",
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="run the sampling profiler at HZ for the whole soak",
    )
    parser.add_argument(
        "--inject-failure",
        action="store_true",
        help="force an invariant failure (exercises the diag path; "
        "the run exits non-zero)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="inject faults into the hosted server "
        "(e.g. 'delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005') and run "
        "the clients with retries; the answer oracle must stay clean",
    )
    args = parser.parse_args(argv)
    report = run_soak(
        seconds=args.seconds,
        connections=args.connections,
        seed=args.seed,
        rss_limit=args.rss_limit,
        arrival_rate=args.rate,
        profile_hz=args.profile_hz,
        inject_failure=args.inject_failure,
        diag_path=args.diag,
        chaos=args.chaos,
        log=lambda message: print(message, file=sys.stderr),
    )
    doc = report.to_dict()
    print(json.dumps(doc, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
