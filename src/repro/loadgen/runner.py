"""Drive a live :class:`StabilityServer` with a workload plan.

:func:`run_load` executes a :class:`~repro.loadgen.workload.WorkloadPlan`
over N concurrent :class:`~repro.server.client.ServeClient` connections
— one worker thread per connection, each pacing its pipelined batches
against the plan's open-loop arrival schedule, reconnecting where the
plan churns, and recording stripped responses in plan order.

Point it at a running server (``address="HOST:PORT"``) or let it
self-host: without an address it regenerates the plan's dataset, builds
a fresh :class:`~repro.server.SessionRegistry` seeded from the spec,
and serves in-process for the duration of the run — the configuration
trace replay relies on (same spec, same server, same answers).

:func:`scrape_metrics` fetches and parses a live Prometheus
``/metrics`` exposition so harnesses (the soak, CI) can assert resource
invariants — flat RSS, zero shared-memory segments — from the outside.
"""

from __future__ import annotations

import threading
import time
import urllib.request
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.loadgen import trace as trace_mod
from repro.loadgen.workload import WorkloadPlan, make_dataset
from repro.server import (
    RetryPolicy,
    ServeClient,
    ServerClosedError,
    ServerConfig,
    SessionRegistry,
    serve_in_thread,
)
from repro.server.resilience import IDEMPOTENT_OPS, RETRYABLE_ERROR_CODES

__all__ = [
    "LoadResult",
    "run_load",
    "hosted_server",
    "scrape_metrics",
    "parse_exposition",
]


@dataclass
class LoadResult:
    """One executed plan: records in plan order plus run aggregates."""

    records: list = field(default_factory=list)
    elapsed: float = 0.0
    ok: int = 0
    error_codes: Counter = field(default_factory=Counter)
    reconnects: int = 0
    #: Requests the workers re-issued after a retryable failure
    #: (idempotent ops only; each may carry further client-side
    #: retries inside :meth:`ServeClient.request`).
    retried: int = 0

    @property
    def requests(self) -> int:
        return len(self.records)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "elapsed": self.elapsed,
            "throughput": (
                self.requests / self.elapsed if self.elapsed > 0 else 0.0
            ),
            "ok": self.ok,
            "error_codes": dict(self.error_codes),
            "reconnects": self.reconnects,
            "retried": self.retried,
        }


@contextmanager
def hosted_server(plan: WorkloadPlan, **config_fields):
    """A self-hosted server regenerated from the plan's spec.

    Yields the :class:`~repro.server.app.ServerHandle`.  Extra keyword
    arguments become :class:`~repro.server.ServerConfig` fields
    (``metrics_port=0`` gives the soak a scrapeable endpoint).
    """
    registry = SessionRegistry(seed=plan.spec.server_seed, parallel=False)
    registry.add_dataset("default", make_dataset(plan.spec))
    handle = serve_in_thread(registry, config=ServerConfig(**config_fields))
    try:
        yield handle
    finally:
        handle.stop()


def _connection_lost(exc: Exception) -> dict:
    return {
        "ok": False,
        "error": {"code": "connection_lost", "message": str(exc)},
    }


def _run_connection(
    host: str,
    port: int,
    batches: list,
    start: float,
    time_scale: float,
    out: list,
    counters: Counter,
    retry: RetryPolicy | None = None,
) -> None:
    """One worker: its connection's batches, paced and pipelined.

    With ``retry`` set, failures that are safe to repeat — structured
    retryable rejections and connection losses, idempotent ops only —
    are re-issued serially through :meth:`ServeClient.request` (which
    applies the policy's backoff/budget/breaker) after the batch's
    pipelined phase; ``get_next`` is never re-issued.
    """

    def fresh_client() -> ServeClient:
        return ServeClient(host=host, port=port, retry=retry)

    def reissue(client: ServeClient, event) -> ServeClient:
        """Serial retry of one event; returns a (possibly new) client."""
        try:
            out[event.index] = trace_mod.strip_response(
                client.request(event.request)
            )
            counters["retried"] += 1
        except (ServerClosedError, OSError):
            # The prior failure record for this event stands; hand the
            # next event a working connection.
            client.close()
            counters["reconnects"] += 1
            client = fresh_client()
        return client

    client = fresh_client()
    try:
        for batch in batches:
            if batch[0].reconnect:
                client.close()
                counters["reconnects"] += 1
                client = fresh_client()
            delay = start + batch[0].t * time_scale - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            answered = 0
            try:
                for event in batch:
                    client.send(event.request)
                for event in batch:
                    out[event.index] = trace_mod.strip_response(client.recv())
                    answered += 1
            except (ServerClosedError, OSError) as exc:
                for event in batch[answered:]:
                    out[event.index] = _connection_lost(exc)
                client.close()
                counters["reconnects"] += 1
                client = fresh_client()
                if retry is not None:
                    for event in batch[answered:]:
                        if event.request.get("op") in IDEMPOTENT_OPS:
                            client = reissue(client, event)
                continue
            if retry is None:
                continue
            for event in batch:
                response = out[event.index]
                error = (
                    response.get("error") if isinstance(response, dict) else None
                )
                code = error.get("code") if isinstance(error, dict) else None
                if (
                    code in RETRYABLE_ERROR_CODES
                    and event.request.get("op") in IDEMPOTENT_OPS
                ):
                    client = reissue(client, event)
    finally:
        client.close()


def run_load(
    plan: WorkloadPlan,
    *,
    address: str | None = None,
    time_scale: float = 1.0,
    trace_path=None,
    retry: RetryPolicy | bool | None = None,
    **config_fields,
) -> LoadResult:
    """Execute a plan and return its records (optionally tracing).

    ``time_scale`` compresses (< 1) or stretches (> 1) the arrival
    schedule without changing the requests — tests replay hour-shaped
    plans in seconds.  ``retry`` (``True`` for the default
    :class:`~repro.server.RetryPolicy`) makes workers re-issue
    idempotent requests that hit retryable failures.  ``config_fields``
    apply to the self-hosted server only and raise if combined with
    ``address``.
    """
    if retry is True:
        retry = RetryPolicy()
    elif retry is False:
        retry = None
    if address is not None and config_fields:
        raise ValueError(
            "server config fields only apply when self-hosting "
            f"(got {sorted(config_fields)} with address={address!r})"
        )
    if address is not None:
        from repro.server import parse_hostport

        host, port = parse_hostport(address)
        return _run_load_against(
            plan, host, port, time_scale, trace_path, retry
        )
    with hosted_server(plan, **config_fields) as handle:
        return _run_load_against(
            plan, handle.host, handle.port, time_scale, trace_path, retry
        )


def _run_load_against(
    plan: WorkloadPlan,
    host: str,
    port: int,
    time_scale: float,
    trace_path,
    retry: RetryPolicy | None = None,
) -> LoadResult:
    out: list = [None] * len(plan.events)
    start = time.monotonic() + 0.05
    threads = []
    counters = []  # one per worker; merged after join (no shared writes)
    begin = time.perf_counter()
    for conn, batches in enumerate(plan.events_by_connection()):
        if not batches:
            continue
        counter: Counter = Counter()
        counters.append(counter)
        thread = threading.Thread(
            target=_run_connection,
            args=(host, port, batches, start, time_scale, out, counter, retry),
            name=f"loadgen-conn-{conn}",
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin

    result = LoadResult(
        elapsed=elapsed,
        reconnects=sum(counter["reconnects"] for counter in counters),
        retried=sum(counter["retried"] for counter in counters),
    )
    for event in plan.events:
        response = out[event.index]
        if response is None:  # worker died before reaching the batch
            response = _connection_lost(RuntimeError("request never ran"))
        if response.get("ok"):
            result.ok += 1
        else:
            error = response.get("error")
            code = error.get("code") if isinstance(error, dict) else str(error)
            result.error_codes[code] += 1
        result.records.append(
            {
                "i": event.index,
                "t": event.t,
                "conn": event.conn,
                "op": event.request.get("op"),
                "request": event.request,
                "response": response,
            }
        )
    if trace_path is not None:
        with trace_mod.TraceWriter(trace_path, plan.spec) as writer:
            for record in result.records:
                writer.append(record)
    return result


# ----------------------------------------------------------------------
# Prometheus scraping (resource invariants from the outside)
# ----------------------------------------------------------------------
def parse_exposition(text: str) -> dict[str, float]:
    """Prometheus text exposition -> ``{sample_name: value}``.

    Sample names keep their label sets verbatim
    (``repro_server_requests_total{op="ping"}``); unlabeled gauges are
    plain names (``repro_process_rss_bytes``).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            continue
    return samples


def scrape_metrics(
    port: int, host: str = "127.0.0.1", timeout: float = 10.0
) -> dict[str, float]:
    """Fetch and parse a live ``/metrics`` endpoint."""
    url = f"http://{host}:{port}/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8", "replace")
    return parse_exposition(text)
