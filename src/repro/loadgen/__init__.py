"""repro.loadgen — workload replay, fuzzing, and soak harness.

The serving tier's traffic simulator and failure-mode hunter:

- :mod:`repro.loadgen.workload` — deterministic, seedable synthesis of
  Zipf-skewed op mixes with bursty open-loop arrivals, pipelined
  batches, and connection churn (:class:`WorkloadSpec` →
  :func:`generate_plan`);
- :mod:`repro.loadgen.runner` — drives a live server over N concurrent
  blocking clients (:func:`run_load`), self-hosting or by address, and
  scrapes Prometheus metrics (:func:`scrape_metrics`);
- :mod:`repro.loadgen.trace` — replayable JSONL traces and the
  answer-equivalence oracle (:func:`compare_records`);
- :mod:`repro.loadgen.replay` — re-runs a recorded trace against any
  server build and reports equivalence (:func:`replay_trace`);
- :mod:`repro.loadgen.soak` — bounded soak asserting flat RSS and zero
  shared-memory leaks from the live ``/metrics`` scrape
  (:func:`run_soak`, ``python -m repro.loadgen.soak``);
- :mod:`repro.loadgen.fuzz` — malformed-frame and corrupt-snapshot
  generators plus the robustness contracts the fuzz suites assert.

``repro.cli loadgen`` / ``repro.cli replay`` expose the harness on the
command line.
"""

from repro.loadgen.replay import ReplayReport, replay_trace
from repro.loadgen.runner import (
    LoadResult,
    hosted_server,
    parse_exposition,
    run_load,
    scrape_metrics,
)
from repro.loadgen.soak import SoakReport, run_soak
from repro.loadgen.trace import (
    TRACE_VERSION,
    ComparisonReport,
    TraceError,
    TraceWriter,
    compare_records,
    read_trace,
    strip_response,
)
from repro.loadgen.workload import (
    DEFAULT_MIX,
    Event,
    WorkloadPlan,
    WorkloadSpec,
    generate_plan,
    make_dataset,
)

__all__ = [
    "TRACE_VERSION",
    "DEFAULT_MIX",
    "ComparisonReport",
    "Event",
    "LoadResult",
    "ReplayReport",
    "SoakReport",
    "TraceError",
    "TraceWriter",
    "WorkloadPlan",
    "WorkloadSpec",
    "compare_records",
    "generate_plan",
    "hosted_server",
    "make_dataset",
    "parse_exposition",
    "read_trace",
    "replay_trace",
    "run_load",
    "run_soak",
    "scrape_metrics",
    "strip_response",
]
