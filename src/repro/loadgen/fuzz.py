"""Fuzzing primitives: malformed wire frames and corrupt snapshots.

Dependency-free building blocks the hypothesis suites (and plain
parametrized tests) drive.  Two surfaces:

**Wire protocol** — :data:`FRAME_MUTATORS` generate single malformed
frames (mutated JSON, non-finite literals, pathological nesting,
oversized lines, binary garbage); :func:`check_wire_contract` asserts
the protocol's robustness contract for any frame: *exactly one
response line, strictly valid JSON, a structured error from the closed
code vocabulary when refused — and the connection stays alive* (a
follow-up ping must answer).

**Snapshot container** — :data:`CORRUPTION_CORPUS` is the named,
deterministic corruption corpus (shared with
``tests/service/test_persist.py``: every entry must raise its expected
:class:`~repro.errors.SnapshotError` subclass), and
:data:`SNAPSHOT_MUTATORS` are rng-driven byte/header mutations for the
property-based fuzzer.  :func:`check_restore_contract` asserts the
restore oracle: a mutated container either *refuses with a typed
SnapshotError* or *restores to a session whose answers match the
uncorrupted baseline* — never an untyped crash, never silently wrong
answers.

The crafted-header corpus entries are regression cases from fuzzer
findings: CRC-valid headers with missing/mistyped fields used to
escape as ``KeyError``/``TypeError``/``ValueError`` from deep inside
restore.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.server import protocol
from repro.service.persist import SNAPSHOT_MAGIC, SNAPSHOT_VERSION

__all__ = [
    "FRAME_MUTATORS",
    "random_frame",
    "strict_loads",
    "check_wire_contract",
    "SnapshotCorruption",
    "CORRUPTION_CORPUS",
    "SNAPSHOT_MUTATORS",
    "random_snapshot_mutation",
    "resign_header",
    "check_restore_contract",
]


# ----------------------------------------------------------------------
# Wire-protocol frames
# ----------------------------------------------------------------------
def strict_loads(line: bytes | str):
    """``json.loads`` that refuses the NaN/Infinity extensions — the
    response side of the wire must be *interchange* JSON."""

    def reject(token):
        raise AssertionError(f"response is not strict JSON: {token}")

    return json.loads(line, parse_constant=reject)


def _strip_newlines(data: bytes) -> bytes:
    return data.replace(b"\n", b" ").replace(b"\r", b" ")


def _garbage(rng) -> bytes:
    length = int(rng.integers(1, 200))
    return _strip_newlines(rng.integers(0, 256, size=length).astype("u1").tobytes())


def _scalar(rng) -> bytes:
    return [b"42", b"true", b"null", b'"just a string"', b"-1.5"][
        int(rng.integers(5))
    ]


def _array(rng) -> bytes:
    return json.dumps(list(range(int(rng.integers(0, 6))))).encode()


def _missing_op(rng) -> bytes:
    return json.dumps({"m": int(rng.integers(10)), "id": 1}).encode()


def _non_string_op(rng) -> bytes:
    return json.dumps({"op": int(rng.integers(100))}).encode()


def _unknown_op(rng) -> bytes:
    names = ["teleport", "drop_table", "TOP_STABLE", "ping ", "", "get-next"]
    return json.dumps({"op": names[int(rng.integers(len(names)))]}).encode()


def _nonfinite_literal(rng) -> bytes:
    literal = ["NaN", "Infinity", "-Infinity"][int(rng.integers(3))]
    field = ["id", "m", "budget"][int(rng.integers(3))]
    return f'{{"op": "ping", "{field}": {literal}}}'.encode()


def _overflow_id(rng) -> bytes:
    return f'{{"op": "ping", "id": 1e{int(rng.integers(400, 999))}}}'.encode()


def _composite_id(rng) -> bytes:
    bad = [[1, 2], {"a": 1}][int(rng.integers(2))]
    return json.dumps({"op": "ping", "id": bad}).encode()


def _deep_nesting(rng) -> bytes:
    depth = int(rng.integers(5_000, 60_000))
    return b"[" * depth + b"]" * depth


def _oversized(rng) -> bytes:
    pad = b"x" * (protocol.MAX_LINE_BYTES + int(rng.integers(1, 4096)))
    return b'{"op": "ping", "pad": "' + pad + b'"}'


def _bad_utf8(rng) -> bytes:
    return b'{"op": "ping", "x": "\xff\xfe\xfa"}'


def _raw_control_char(rng) -> bytes:
    return b'{"op": "pi\x00ng"}'


def _truncated_json(rng) -> bytes:
    frame = json.dumps(
        {"op": "top_stable", "m": 3, "kind": "topk_set", "k": 4}
    ).encode()
    return frame[: int(rng.integers(1, len(frame)))]


def _wrong_types(rng) -> bytes:
    bad = [
        {"op": "top_stable", "m": "three", "kind": "topk_set", "k": 3,
         "backend": "randomized", "budget": 100},
        {"op": "top_stable", "m": 1, "kind": 7, "budget": 100},
        {"op": "stability_of", "kind": "full", "ranking": "abc",
         "min_samples": 100},
        {"op": "get_next", "kind": "topk_set", "k": -4,
         "backend": "randomized", "budget": 100},
        {"op": "explain", "query": "not an object"},
        {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
         "backend": "randomized", "budget": "lots"},
    ]
    return json.dumps(bad[int(rng.integers(len(bad)))]).encode()


def _junk_fields(rng) -> bytes:
    # A valid op with random extra fields: any structured outcome is
    # acceptable, but the contract (one strict frame, live connection)
    # still holds.
    extras = {
        f"x{int(rng.integers(10))}": [None, True, 3.5, "y", [1], {"z": 1}][
            int(rng.integers(6))
        ]
    }
    return json.dumps({"op": "ping", **extras}).encode()


#: (name, build(rng) -> frame bytes, expected error codes or None).
#: ``None`` means any structured outcome satisfies the contract.
FRAME_MUTATORS = (
    ("garbage", _garbage, ("bad_json", "bad_request")),
    ("scalar", _scalar, ("bad_request",)),
    ("array", _array, ("bad_request",)),
    ("missing_op", _missing_op, ("bad_request",)),
    ("non_string_op", _non_string_op, ("bad_request",)),
    ("unknown_op", _unknown_op, ("unknown_op", "bad_request")),
    ("nonfinite_literal", _nonfinite_literal, ("bad_json",)),
    ("overflow_id", _overflow_id, ("bad_request",)),
    ("composite_id", _composite_id, ("bad_request",)),
    ("deep_nesting", _deep_nesting, ("bad_json",)),
    ("oversized", _oversized, ("line_too_long",)),
    ("bad_utf8", _bad_utf8, ("bad_json",)),
    ("raw_control_char", _raw_control_char, ("bad_json",)),
    ("truncated_json", _truncated_json, ("bad_json",)),
    ("wrong_types", _wrong_types, ("bad_request", "infeasible")),
    ("junk_fields", _junk_fields, None),
)


def random_frame(rng) -> tuple[str, bytes, tuple | None]:
    """One random malformed frame: ``(mutator name, bytes, codes)``."""
    name, build, codes = FRAME_MUTATORS[int(rng.integers(len(FRAME_MUTATORS)))]
    return name, build(rng), codes


def check_wire_contract(client, frame: bytes, expected_codes=None) -> dict:
    """Assert the robustness contract for one frame over a live client.

    Sends the frame, reads exactly one response, checks it is strict
    JSON with the structured-error shape, optionally pins the error
    code, then proves the connection survived with a ping.
    """
    client._file.write(frame + b"\n")
    client._file.flush()
    line = client._file.readline()
    assert line, f"connection dropped without a response (frame {frame[:80]!r})"
    response = strict_loads(line)
    assert isinstance(response, dict) and "ok" in response, response
    if response["ok"] is False:
        error = response.get("error")
        assert isinstance(error, dict), response
        assert error.get("code") in protocol.ERROR_CODES, response
        assert isinstance(error.get("message"), str), response
        if expected_codes is not None:
            assert error["code"] in expected_codes, (
                f"expected {expected_codes}, got {error['code']}: "
                f"{error['message']}"
            )
    pong = client.ping()
    assert pong.get("ok") is True, (
        f"connection unusable after frame {frame[:80]!r}: {pong}"
    )
    return response


# ----------------------------------------------------------------------
# Snapshot containers
# ----------------------------------------------------------------------
_PREFIX = struct.Struct("<8sHI")
_CRC = struct.Struct("<I")


def resign_header(data: bytes, mutate_header) -> bytes:
    """Rebuild a container with a mutated header and a *valid* CRC.

    ``mutate_header(header_dict)`` edits in place.  This is how crafted
    (as opposed to merely damaged) snapshots are made: the integrity
    layer passes, so only typed header validation stands between the
    file and restore.
    """
    magic, version, header_len = _PREFIX.unpack_from(data)
    header = json.loads(data[_PREFIX.size : _PREFIX.size + header_len])
    payload = data[_PREFIX.size + header_len + _CRC.size :]
    mutate_header(header)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return (
        _PREFIX.pack(magic, version, len(header_bytes))
        + header_bytes
        + _CRC.pack(zlib.crc32(header_bytes))
        + payload
    )


@dataclass(frozen=True)
class SnapshotCorruption:
    """One named corpus entry: a mutation and its expected refusal."""

    name: str
    mutate: object  # Callable[[bytes], bytes]
    raises: type = SnapshotError
    match: str | None = None


def _drop_key(*path):
    def mutate(header):
        target = header
        for key in path[:-1]:
            target = target[key]
        if isinstance(target, list):
            target = target[0]
        target.pop(path[-1])

    return mutate


def _set_key(value, *path):
    def mutate(header):
        target = header
        for key in path[:-1]:
            target = target[key]
        if isinstance(target, list):
            target = target[0]
        target[path[-1]] = value

    return mutate


def _bump_tally_total(header):
    config = next(c for c in header["configs"] if "tally" in c)
    config["tally"]["total"] += 1


#: The promoted corruption corpus: every entry must refuse with its
#: typed error.  Damage cases exercise the integrity layer; crafted
#: cases (``resign_header``) exercise typed header validation — the
#: ``header_*`` / ``section_*`` entries are fuzzer-finding regressions.
CORRUPTION_CORPUS = (
    SnapshotCorruption(
        "not_a_snapshot",
        lambda data: b"definitely not a snapshot file",
        SnapshotFormatError, "magic",
    ),
    SnapshotCorruption(
        "too_short",
        lambda data: SNAPSHOT_MAGIC[:4],
        SnapshotFormatError, "short",
    ),
    SnapshotCorruption(
        "truncated_file",
        lambda data: data[: int(len(data) * 0.6)],
        SnapshotFormatError, "truncated",
    ),
    SnapshotCorruption(
        "flipped_payload_byte",
        lambda data: data[:-10] + bytes([data[-10] ^ 0xFF]) + data[-9:],
        SnapshotIntegrityError, "checksum",
    ),
    SnapshotCorruption(
        "flipped_header_byte",
        lambda data: data[:20] + bytes([data[20] ^ 0x01]) + data[21:],
        SnapshotIntegrityError, "header checksum",
    ),
    SnapshotCorruption(
        "future_format_version",
        lambda data: data[:8]
        + struct.pack("<H", SNAPSHOT_VERSION + 7)
        + data[10:],
        SnapshotVersionError, "newer",
    ),
    SnapshotCorruption(
        "tampered_tally_total",
        lambda data: resign_header(data, _bump_tally_total),
        SnapshotError, None,
    ),
    SnapshotCorruption(
        "header_missing_fingerprint",
        lambda data: resign_header(data, _drop_key("fingerprint")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_missing_entropy",
        lambda data: resign_header(data, _drop_key("entropy")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_entropy_string",
        lambda data: resign_header(data, _set_key("zebra", "entropy")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_confidence_out_of_range",
        lambda data: resign_header(data, _set_key(-3.0, "confidence")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_budget_hint_object",
        lambda data: resign_header(data, _set_key({}, "budget_hint")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_configs_not_a_list",
        lambda data: resign_header(data, _set_key(17, "configs")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "section_offset_string",
        lambda data: resign_header(data, _set_key("x", "sections", "offset")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "section_offset_negative",
        lambda data: resign_header(data, _set_key(-4, "sections", "offset")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "section_missing_crc32",
        lambda data: resign_header(data, _drop_key("sections", "crc32")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_sampling_not_a_string",
        lambda data: resign_header(data, _set_key(1.5, "sampling")),
        SnapshotFormatError, "malformed snapshot header",
    ),
    SnapshotCorruption(
        "header_unknown_sampling_scheme",
        lambda data: resign_header(data, _set_key("psychic", "sampling")),
        SnapshotFormatError, "restorable",
    ),
)


def _flip_random_byte(data: bytes, rng) -> bytes:
    position = int(rng.integers(len(data)))
    bit = 1 << int(rng.integers(8))
    return data[:position] + bytes([data[position] ^ bit]) + data[position + 1:]


def _truncate_random(data: bytes, rng) -> bytes:
    return data[: int(rng.integers(0, len(data)))]


def _splice_junk(data: bytes, rng) -> bytes:
    position = int(rng.integers(len(data) + 1))
    junk = rng.integers(0, 256, size=int(rng.integers(1, 64))).astype("u1")
    return data[:position] + junk.tobytes() + data[position:]


def _zero_run(data: bytes, rng) -> bytes:
    position = int(rng.integers(len(data)))
    length = int(rng.integers(1, min(128, len(data) - position) + 1))
    return data[:position] + b"\x00" * length + data[position + length:]


def _delete_run(data: bytes, rng) -> bytes:
    position = int(rng.integers(len(data)))
    length = int(rng.integers(1, min(64, len(data) - position) + 1))
    return data[:position] + data[position + length:]


def _crafted_header_junk(data: bytes, rng) -> bytes:
    fields = (
        "fingerprint", "entropy", "confidence", "region", "budget_hint",
        "sampling", "configs", "sections", "cache_entries",
    )
    values = (None, True, -1, 1.5, "zebra", [], {}, "1e999", 2**80)
    field = fields[int(rng.integers(len(fields)))]
    value = values[int(rng.integers(len(values)))]

    def mutate(header):
        if rng.random() < 0.3:
            header.pop(field, None)
        else:
            header[field] = value

    return resign_header(data, mutate)


#: rng-driven mutations for the property-based snapshot fuzzer.
SNAPSHOT_MUTATORS = (
    ("flip_byte", _flip_random_byte),
    ("truncate", _truncate_random),
    ("splice_junk", _splice_junk),
    ("zero_run", _zero_run),
    ("delete_run", _delete_run),
    ("crafted_header", _crafted_header_junk),
)


def random_snapshot_mutation(data: bytes, rng) -> tuple[str, bytes]:
    """One random container mutation: ``(mutator name, mutated bytes)``."""
    name, mutate = SNAPSHOT_MUTATORS[int(rng.integers(len(SNAPSHOT_MUTATORS)))]
    return name, mutate(data, rng)


def check_restore_contract(path, dataset, probe, baseline) -> str:
    """Assert the restore oracle for one (possibly mutated) container.

    Returns ``"refused"`` when restore raised a typed
    :class:`SnapshotError`, ``"equal"`` when it restored and
    ``probe(session)`` matched ``baseline``.  Anything else — an
    untyped exception, or a restored session with different answers —
    fails the assertion.
    """
    from repro.service.persist import load_session

    try:
        session = load_session(path, dataset, parallel=False)
    except SnapshotError:
        return "refused"
    except Exception as exc:  # noqa: BLE001 — the oracle's whole point
        raise AssertionError(
            f"restore crashed untyped on a mutated snapshot: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    try:
        answers = probe(session)
    finally:
        session.close()
    assert answers == baseline, (
        "a mutated snapshot restored to a session with different answers"
    )
    return "equal"
