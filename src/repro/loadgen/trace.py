"""Replayable JSONL traces and the answer-equivalence oracle.

A trace is one JSON object per line.  Line 1 is the header::

    {"kind": "repro.loadgen.trace", "version": 1, "spec": {...}}

where ``spec`` is the full :class:`~repro.loadgen.workload.WorkloadSpec`
— enough to regenerate every request *and* the server-side session
deterministically.  Every following line is one request record::

    {"i": 17, "t": 0.042, "conn": 3, "op": "top_stable",
     "request": {...}, "response": {...}}

``response`` is the wire response with volatile fields stripped
(:func:`strip_response` removes ``seconds`` / ``cached`` / ``cost`` /
``trace`` / ``id`` — anything that legitimately varies run to run).

The oracle (:func:`compare_records`) partitions ops by how determinism
survives concurrency:

- **exact** (``top_stable``, ``stability_of``): pool-based semantics
  make these idempotent at a fixed budget — compared per request.
- **multiset** (``get_next``): the *set* of rankings handed out per
  configuration is deterministic, but which connection draws which one
  depends on interleaving — compared as per-config multisets.
- **loose** (``explain``, ``checkpoint``, control ops): responses
  depend on warm-state timing — only counted, never compared.

Responses whose error code is load-dependent (``busy``,
``shutting_down``, or a recorded ``connection_lost``) are skipped and
counted: admission control firing is a property of the run, not of the
answers.
"""

from __future__ import annotations

import json
import threading
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.loadgen.workload import WorkloadSpec

__all__ = [
    "TRACE_KIND",
    "TRACE_VERSION",
    "EXACT_OPS",
    "MULTISET_OPS",
    "LOAD_DEPENDENT_CODES",
    "TraceError",
    "TraceWriter",
    "strip_response",
    "read_trace",
    "compare_records",
    "ComparisonReport",
]

TRACE_KIND = "repro.loadgen.trace"
TRACE_VERSION = 1

EXACT_OPS = frozenset({"top_stable", "stability_of"})
MULTISET_OPS = frozenset({"get_next"})
#: Error codes that are properties of the *run* (admission control,
#: drains, injected faults, deadline budgets), not of the answers.
LOAD_DEPENDENT_CODES = frozenset(
    {
        "busy",
        "shutting_down",
        "connection_lost",
        "unavailable",
        "overloaded",
        "deadline_exceeded",
    }
)

#: Response fields that legitimately vary run to run.
_VOLATILE_FIELDS = ("seconds", "cached", "cost", "trace", "id")


class TraceError(ValueError):
    """A trace file that cannot be replayed (bad header, tampering)."""


def strip_response(response: dict) -> dict:
    """A response with its volatile fields removed (trace canonical form)."""
    return {
        key: value
        for key, value in response.items()
        if key not in _VOLATILE_FIELDS
    }


def _error_code(response: dict):
    error = response.get("error")
    if isinstance(error, dict):
        return error.get("code")
    return error


class TraceWriter:
    """Thread-safe JSONL trace writer (header first, records appended)."""

    def __init__(self, path: str | Path, spec: WorkloadSpec):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")
        header = {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "spec": spec.to_dict(),
        }
        self._handle.write(json.dumps(header, sort_keys=True) + "\n")

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> tuple[WorkloadSpec, list[dict]]:
    """Parse a trace file back into its spec and ordered records."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise TraceError(f"{path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise TraceError(f"{path}: undecodable header line: {exc}") from None
    if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
        raise TraceError(f"{path} is not a loadgen trace")
    if header.get("version") != TRACE_VERSION:
        raise TraceError(
            f"{path}: trace version {header.get('version')} is not "
            f"{TRACE_VERSION}"
        )
    try:
        spec = WorkloadSpec.from_dict(header["spec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: bad spec in header: {exc}") from None
    records = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceError(f"{path}:{number}: bad record: {exc}") from None
        if not isinstance(record, dict) or "i" not in record:
            raise TraceError(f"{path}:{number}: record without an index")
        records.append(record)
    records.sort(key=lambda record: record["i"])
    expected = list(range(len(records)))
    if [record["i"] for record in records] != expected:
        raise TraceError(f"{path}: record indices are not 0..n-1")
    if len(records) != spec.requests:
        raise TraceError(
            f"{path}: header promises {spec.requests} records, found "
            f"{len(records)} — the trace is truncated or edited"
        )
    return spec, records


@dataclass
class ComparisonReport:
    """The oracle's verdict over two record sets of the same plan."""

    total: int = 0
    compared: int = 0
    skipped_load_dependent: int = 0
    skipped_loose: int = 0
    skipped_get_next: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "compared": self.compared,
            "skipped_load_dependent": self.skipped_load_dependent,
            "skipped_loose": self.skipped_loose,
            "skipped_get_next": self.skipped_get_next,
            "equivalent": self.equivalent,
            "mismatches": self.mismatches[:20],
        }


def _config_key(request: dict) -> str:
    return json.dumps(
        [request.get("kind"), request.get("k"), request.get("backend")]
    )


def _canonical(response: dict) -> str:
    return json.dumps(strip_response(response), sort_keys=True)


def compare_records(
    expected: list[dict],
    observed: list[dict],
    *,
    get_next_mode: str = "strict",
) -> ComparisonReport:
    """Answer equivalence between two runs of the same plan.

    ``get_next_mode`` selects how the cursor-consuming multiset op is
    judged:

    - ``"strict"`` (default): per-config multisets must match exactly
      (both runs answered every ``get_next``).
    - ``"subset"``: the observed run's successful hand-outs must be a
      sub-multiset of the expected run's — the contract under fault
      injection, where a dropped/shed ``get_next`` is never retried,
      so the chaos run draws a prefix of the same deterministic
      hand-out sequence.
    - ``"skip"``: ``get_next`` records are only counted — for
      comparisons across *rounds* of one long-lived server, where
      cursors legitimately advance between runs.
    """
    if get_next_mode not in ("strict", "subset", "skip"):
        raise ValueError(
            "get_next_mode must be 'strict', 'subset', or 'skip', got "
            f"{get_next_mode!r}"
        )
    report = ComparisonReport(total=len(expected))
    if len(expected) != len(observed):
        report.mismatches.append(
            {
                "kind": "length",
                "expected": len(expected),
                "observed": len(observed),
            }
        )
        return report
    multiset_expected: dict[str, list[str]] = {}
    multiset_observed: dict[str, list[str]] = {}
    for left, right in zip(expected, observed):
        request = left.get("request", {})
        op = request.get("op")
        if request != right.get("request", {}):
            report.mismatches.append(
                {
                    "kind": "request_divergence",
                    "index": left.get("i"),
                    "expected": request,
                    "observed": right.get("request"),
                }
            )
            continue
        left_code = _error_code(left.get("response", {}))
        right_code = _error_code(right.get("response", {}))
        if op in MULTISET_OPS and get_next_mode != "strict":
            if get_next_mode == "skip":
                report.skipped_get_next += 1
                continue
            # subset: each side contributes its non-load-dependent
            # answers independently — a pair where only the observed
            # side was shed must still count the expected side's
            # hand-out (the observed run handed that ranking to a
            # *later* request of the same configuration).
            key = _config_key(request)
            if left_code not in LOAD_DEPENDENT_CODES:
                multiset_expected.setdefault(key, []).append(
                    _canonical(left.get("response", {}))
                )
            if right_code not in LOAD_DEPENDENT_CODES:
                multiset_observed.setdefault(key, []).append(
                    _canonical(right.get("response", {}))
                )
                report.compared += 1
            else:
                report.skipped_load_dependent += 1
            continue
        if {left_code, right_code} & LOAD_DEPENDENT_CODES:
            report.skipped_load_dependent += 1
            continue
        if op in EXACT_OPS:
            left_c = _canonical(left.get("response", {}))
            right_c = _canonical(right.get("response", {}))
            report.compared += 1
            if left_c != right_c:
                report.mismatches.append(
                    {
                        "kind": "answer",
                        "index": left.get("i"),
                        "op": op,
                        "expected": json.loads(left_c),
                        "observed": json.loads(right_c),
                    }
                )
        elif op in MULTISET_OPS:
            key = _config_key(request)
            multiset_expected.setdefault(key, []).append(
                _canonical(left.get("response", {}))
            )
            multiset_observed.setdefault(key, []).append(
                _canonical(right.get("response", {}))
            )
            report.compared += 1
        else:
            report.skipped_loose += 1
    for key in sorted(set(multiset_expected) | set(multiset_observed)):
        left_set = sorted(multiset_expected.get(key, []))
        right_set = sorted(multiset_observed.get(key, []))
        if get_next_mode == "subset":
            excess = Counter(right_set) - Counter(left_set)
            if excess:
                report.mismatches.append(
                    {
                        "kind": "multiset_subset",
                        "config": json.loads(key),
                        "expected": len(left_set),
                        "observed": len(right_set),
                        "excess": sum(excess.values()),
                    }
                )
        elif left_set != right_set:
            report.mismatches.append(
                {
                    "kind": "multiset",
                    "config": json.loads(key),
                    "expected": len(left_set),
                    "observed": len(right_set),
                }
            )
    return report
