"""Exception hierarchy for the stable-rankings library.

The paper's pseudocode signals failure by returning ``null``; a Python
library should raise instead, so every such ``null`` maps onto one of the
exceptions below.
"""

from __future__ import annotations


class StableRankingsError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidDatasetError(StableRankingsError):
    """The dataset violates the data model of the paper (section 2.1.1).

    Examples: non-finite attribute values, fewer than one item or
    attribute, or attribute values outside ``[0, 1]`` after the caller
    claimed the data were normalised.
    """


class InvalidWeightsError(StableRankingsError):
    """A weight vector is unusable: wrong length, negative, or all-zero."""


class InvalidRankingError(StableRankingsError):
    """A ranking is not a permutation of the dataset's item identifiers."""


class InfeasibleRankingError(StableRankingsError):
    """No scoring function in the region of interest induces the ranking.

    This is the exception form of the ``return null`` branches of
    Algorithms 1 (SV2D) and 4 (SV): either a lower-ranked item dominates
    a higher-ranked one, or the ordering-exchange constraints contradict
    each other.
    """


class InfeasibleRegionError(StableRankingsError):
    """A region of interest (``U*``) contains no scoring function."""


class ExhaustedError(StableRankingsError):
    """GET-NEXT was called after every ranking region was already returned.

    For the randomized operator this corresponds to Algorithm 7 line 10:
    no not-yet-reported ranking has been observed among the samples drawn
    so far.
    """


class BudgetExceededError(StableRankingsError):
    """A sampling budget or iteration cap was exhausted before convergence."""


class SnapshotError(StableRankingsError):
    """A session snapshot could not be written or restored.

    Durable state must fail loudly: a snapshot that cannot be trusted
    (truncated, corrupted, produced by a newer writer, or taken over
    different data) raises one of the subclasses below instead of ever
    restoring a session that would answer queries from wrong state.
    """


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, or its structure is truncated/garbled.

    Raised for a bad magic number, a header or section that extends past
    the end of the file, undecodable header JSON, or section payloads
    whose declared layout does not match their contents.
    """


class SnapshotVersionError(SnapshotError):
    """The snapshot's format version is not readable by this library.

    Raised when a snapshot was written by a newer format revision than
    this reader understands (downgrades are never guessed at).
    """


class SnapshotIntegrityError(SnapshotError):
    """A checksum mismatch: the snapshot's bytes were altered.

    Every header and section carries a CRC-32; any flip between write
    and read surfaces here rather than as silently wrong answers.
    """


class SnapshotMismatchError(SnapshotError):
    """The snapshot does not describe the serving identity it is restored
    into: the dataset fingerprint or the region of interest differs."""
