"""Terminal-friendly visualisations of stability results.

The paper's figures are scatter/line plots; in a dependency-light
library the equivalent overviews are rendered as text: bar charts of
stability distributions and compact rank-range strips.  Used by the
example scripts and handy in notebooks/REPLs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.analysis import RankProfile
from repro.core.stability import StabilityResult

__all__ = ["stability_bars", "rank_strip", "format_ranking"]


def stability_bars(
    results: Sequence[StabilityResult] | Sequence[float],
    *,
    width: int = 50,
    max_rows: int = 20,
    labels: Sequence[str] | None = None,
) -> str:
    """A text bar chart of a stability series, largest first.

    Accepts either :class:`StabilityResult` records or raw floats.
    """
    values = [
        r.stability if isinstance(r, StabilityResult) else float(r)
        for r in results
    ]
    if not values:
        return "(no rankings)"
    top = max(values)
    if top <= 0:
        return "(all stabilities zero)"
    rows = []
    for i, v in enumerate(values[:max_rows]):
        bar = "#" * max(1, round(width * v / top)) if v > 0 else ""
        label = labels[i] if labels is not None else f"#{i + 1}"
        rows.append(f"{label:>6}  {v:8.4f}  {bar}")
    if len(values) > max_rows:
        rows.append(f"        ... {len(values) - max_rows} more")
    return "\n".join(rows)


def rank_strip(
    profile: RankProfile, *, n_items: int, width: int = 60
) -> str:
    """A one-line strip showing an item's rank range within ``[1, n]``.

    ``-`` marks the possible range, ``o`` the mean rank; e.g.
    ``|   ---o--      |`` for an item ranging over ranks 4-10.
    """
    if n_items < 1:
        raise ValueError("n_items must be positive")
    cells = [" "] * width

    def col(rank: float) -> int:
        frac = (rank - 1) / max(n_items - 1, 1)
        return min(width - 1, max(0, round(frac * (width - 1))))

    for c in range(col(profile.min_rank), col(profile.max_rank) + 1):
        cells[c] = "-"
    cells[col(profile.mean_rank)] = "o"
    return "|" + "".join(cells) + "|"


def format_ranking(
    order: Iterable[int],
    *,
    labels: Sequence[str] | None = None,
    limit: int = 10,
) -> str:
    """Compact ``1. name  2. name ...`` rendering of a ranking prefix."""
    parts = []
    for position, item in enumerate(order, start=1):
        if position > limit:
            parts.append("...")
            break
        name = labels[item] if labels is not None else str(item)
        parts.append(f"{position}.{name}")
    return "  ".join(parts)
