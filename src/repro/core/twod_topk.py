"""Exact top-k stability in two dimensions (a 2D-only extension).

Section 4.5.1 observes that the arrangement-based GET-NEXTmd "is not
applicable" to top-k questions because "different ranking regions may
share the same top-k items", and falls back to the randomized operator.
In two dimensions, however, the kinetic ray sweep of Algorithm 2 makes
the top-k problem *exact*: while sweeping, the top-k set (or the ranked
top-k prefix) only changes when an ordering exchange crosses the k-th
position, so aggregating sweep-segment widths by top-k key yields the
exact stability of every feasible top-k outcome.

This module provides:

- :func:`sweep_topk_2d` — the annotated kinetic sweep: every feasible
  top-k key with its exact stability and the (possibly disconnected)
  set of angle intervals realising it;
- :func:`enumerate_topk_2d` — the keys as :class:`StabilityResult`
  records, most stable first (the exact counterpart of
  ``GetNextRandomized(kind="topk_*")`` for ``d = 2``);
- :func:`verify_topk_2d` — exact Problem-1 verification for a published
  top-k set or prefix.

The test-suite cross-checks these exact values against the randomized
operator's estimates, which doubles as an end-to-end validation of the
Monte-Carlo machinery.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import AngularRegion, StabilityResult
from repro.errors import InvalidRankingError
from repro.geometry.dual import dominates, exchange_angle_2d

__all__ = ["sweep_topk_2d", "enumerate_topk_2d", "verify_topk_2d"]

_ANGLE_EPS = 1e-12


def _order_at(values: np.ndarray, angle: float) -> list[int]:
    """The ranking order at a sweep angle (score desc, id asc)."""
    weights = np.array([math.cos(angle), math.sin(angle)])
    return np.argsort(-(values @ weights), kind="stable").tolist()


def _order_just_after(values: np.ndarray, angle: float) -> list[int]:
    """The exact order valid on ``(angle, angle + epsilon)``.

    Sorts by score at ``angle`` descending, breaking exact score ties
    by the score *derivative* (the score along the tangent direction
    ``(-sin, cos)``) descending, then by item id ascending.  Evaluating
    the order at a nudged angle instead is unsound: pairs whose
    exchange lies within the nudge would start in post-exchange order
    while their exchange event is still admitted, and the spurious
    swap-back corrupts the sweep.
    """
    scores = values @ np.array([math.cos(angle), math.sin(angle)])
    slopes = values @ np.array([-math.sin(angle), math.cos(angle)])
    ids = np.arange(values.shape[0])
    # lexsort: last key is primary.
    return np.lexsort((ids, -slopes, -scores)).tolist()


def _key_for(order: list[int], k: int, kind: str):
    if kind == "set":
        return frozenset(order[:k])
    return tuple(order[:k])


def sweep_topk_2d(
    dataset: Dataset,
    k: int,
    *,
    region: RegionOfInterest | None = None,
    kind: str = "set",
) -> dict:
    """Exact stabilities of all feasible top-k outcomes in 2D.

    Runs one kinetic sweep over the region of interest, tracking the
    live order and accumulating, for every distinct top-k key, the total
    angular width of the sweep segments that realise it.

    Parameters
    ----------
    dataset:
        Two-attribute dataset.
    k:
        Prefix size, ``1 <= k <= n``.
    region:
        Region of interest; defaults to the full space.
    kind:
        ``"set"`` (order-insensitive membership) or ``"ranked"``
        (ordered prefix).

    Returns
    -------
    dict mapping key -> (stability, list[AngularRegion]):
        ``key`` is a frozenset for ``kind="set"`` and a tuple for
        ``kind="ranked"``.  Stabilities sum to 1 over the region.  In
        two dimensions every pairwise "i outscores j" condition is a
        single angle interval, so each key's region is connected and
        the interval list has exactly one entry — a property the test
        suite pins down.  (Only for d >= 3 can the functions sharing a
        top-k occupy disconnected cones, which is what makes the
        arrangement-based GET-NEXTmd inapplicable there.)
    """
    if dataset.n_attributes != 2:
        raise ValueError("sweep_topk_2d requires exactly 2 attributes")
    if not 1 <= k <= dataset.n_items:
        raise ValueError(f"k must be in [1, {dataset.n_items}], got {k}")
    if kind not in ("set", "ranked"):
        raise ValueError(f"kind must be 'set' or 'ranked', got {kind!r}")
    roi = region if region is not None else FullSpace(2)
    lo, hi = roi.angle_interval()
    values = dataset.values
    n = dataset.n_items

    order = _order_just_after(values, lo)
    position = {item: p for p, item in enumerate(order)}

    # Event heap of candidate exchanges between currently adjacent items.
    heap: list[tuple[float, int, int]] = []

    def push_event(p: int, after: float, *, strict: bool) -> None:
        """Queue the exchange of the items at positions p, p+1 (if any).

        ``strict`` controls the lower admission bound: the initial
        pushes must exclude exchanges at (or numerically below) ``lo``
        — the initial order already accounts for them — while pushes
        chained from a swap at angle ``after`` must admit coincident
        exchanges (triple intersections) at that same angle.
        """
        if p < 0 or p + 1 >= n:
            return
        a, b = order[p], order[p + 1]
        # A dominating pair never exchanges anywhere in the quadrant —
        # and exchange_angle_2d's contract requires the check: for
        # ties in one attribute it would report a degenerate boundary
        # angle (0 or pi/2) instead of raising, which can livelock the
        # sweep at the region border.
        if dominates(values[a], values[b]) or dominates(values[b], values[a]):
            return
        try:
            angle = exchange_angle_2d(values[a], values[b])
        except ValueError:
            return  # identical items: every function ties them
        # Direction guard: a (currently ranked above b) exchanges with b
        # at a *future* angle only if a is the low-angle winner of the
        # pair, i.e. a beats b on the x1 side of their unique crossing.
        # Pairs already past their crossing must never swap back, no
        # matter what floating-point noise says about the angle.
        if not values[a][0] > values[b][0]:
            return
        floor = after + _ANGLE_EPS if strict else after - _ANGLE_EPS
        if floor < angle < hi - _ANGLE_EPS:
            heapq.heappush(heap, (angle, a, b))

    for p in range(n - 1):
        push_event(p, lo, strict=True)

    totals: dict = {}
    intervals: dict = {}
    segment_start = lo
    current_key = _key_for(order, k, kind)

    def close_segment(end: float) -> None:
        nonlocal segment_start
        width = end - segment_start
        if width > 0:
            totals[current_key] = totals.get(current_key, 0.0) + width
            bucket = intervals.setdefault(current_key, [])
            # Merge with the previous interval when contiguous — the
            # same key can be re-entered after an unrelated swap.
            if bucket and abs(bucket[-1].hi - segment_start) <= 1e-9:
                bucket[-1] = AngularRegion(bucket[-1].lo, end)
            else:
                bucket.append(AngularRegion(segment_start, end))
        segment_start = end

    while heap:
        angle, a, b = heapq.heappop(heap)
        p = position[a]
        # Stale event: the pair is no longer adjacent in this order.
        if p + 1 >= n or order[p + 1] != b:
            continue
        affects_key = p <= k - 1 if kind == "ranked" else p == k - 1
        if affects_key:
            close_segment(angle)
        # Swap a and b.
        order[p], order[p + 1] = b, a
        position[a], position[b] = p + 1, p
        if affects_key:
            current_key = _key_for(order, k, kind)
        # New adjacencies create new candidate events.
        push_event(p - 1, angle, strict=False)
        push_event(p + 1, angle, strict=False)

    close_segment(hi)
    total_width = hi - lo
    return {
        key: (width / total_width, intervals[key])
        for key, width in totals.items()
    }


def enumerate_topk_2d(
    dataset: Dataset,
    k: int,
    *,
    region: RegionOfInterest | None = None,
    kind: str = "set",
) -> list[StabilityResult]:
    """All feasible top-k outcomes in 2D as results, most stable first.

    The exact counterpart of draining ``GetNextRandomized`` with
    ``kind="topk_set"`` / ``"topk_ranked"`` on a two-attribute dataset.
    Ties in stability order break deterministically by key.
    """
    swept = sweep_topk_2d(dataset, k, region=region, kind=kind)
    results = []
    for key, (stability, parts) in swept.items():
        if kind == "set":
            members = sorted(key)
            result = StabilityResult(
                ranking=Ranking(members, n_items=dataset.n_items),
                stability=stability,
                region=parts[0] if len(parts) == 1 else None,
                top_k_set=frozenset(key),
            )
        else:
            result = StabilityResult(
                ranking=Ranking(key, n_items=dataset.n_items),
                stability=stability,
                region=parts[0] if len(parts) == 1 else None,
            )
        results.append(result)
    results.sort(key=lambda r: (-r.stability, r.ranking.order))
    return results


def verify_topk_2d(
    dataset: Dataset,
    items,
    *,
    region: RegionOfInterest | None = None,
    kind: str = "set",
) -> StabilityResult:
    """Exact stability of a published top-k set or prefix in 2D.

    Parameters
    ----------
    dataset:
        Two-attribute dataset.
    items:
        The published shortlist; an iterable of ids.  For
        ``kind="ranked"`` the order is significant.
    region, kind:
        As in :func:`sweep_topk_2d`.

    Raises
    ------
    InvalidRankingError
        If the key is not a feasible top-k outcome anywhere in the
        region (the exact analogue of the paper's ``return null``).
    """
    ids = [int(i) for i in items]
    if len(set(ids)) != len(ids):
        raise InvalidRankingError("top-k items contain duplicates")
    key = frozenset(ids) if kind == "set" else tuple(ids)
    swept = sweep_topk_2d(dataset, len(ids), region=region, kind=kind)
    if key not in swept:
        raise InvalidRankingError(
            "no scoring function in the region produces this top-k "
            f"{'set' if kind == 'set' else 'prefix'}"
        )
    stability, parts = swept[key]
    return StabilityResult(
        ranking=Ranking(sorted(ids) if kind == "set" else ids, n_items=dataset.n_items),
        stability=stability,
        region=parts[0] if len(parts) == 1 else None,
        top_k_set=frozenset(ids) if kind == "set" else None,
    )
