"""Linear scoring functions (Definition 1).

A :class:`ScoringFunction` wraps a validated non-negative weight vector
and provides scoring, ranking, and the geometric views the paper uses:
the unit ray on the d-sphere and the polar-angle vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, rank_items
from repro.geometry.angles import (
    angle_between,
    angles_to_weights,
    as_unit_vector,
    cosine_similarity,
    validate_weights,
    weights_to_angles,
)

__all__ = ["ScoringFunction"]


class ScoringFunction:
    """A linear scoring function ``f_w(t) = sum_j w_j t[j]``.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weight vector.  Stored as given;
        :attr:`unit` exposes the canonical ray representative.
    """

    __slots__ = ("_weights",)

    def __init__(self, weights: np.ndarray):
        self._weights = validate_weights(weights)
        self._weights.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def equal_weights(cls, dim: int) -> "ScoringFunction":
        """The all-ones function — the paper's default ``w = <1, ..., 1>``."""
        return cls(np.ones(dim))

    @classmethod
    def from_angles(cls, angles: np.ndarray) -> "ScoringFunction":
        """Build from ``d - 1`` polar angles (section 2.1.2)."""
        return cls(angles_to_weights(np.asarray(angles, dtype=np.float64)))

    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @property
    def dim(self) -> int:
        return self._weights.shape[0]

    @property
    def unit(self) -> np.ndarray:
        """The unit vector of the ray — the canonical representative."""
        return as_unit_vector(self._weights)

    @property
    def angles(self) -> np.ndarray:
        """Polar-angle vector of the ray (length ``d - 1``)."""
        return weights_to_angles(self._weights)

    def __repr__(self) -> str:
        entries = ", ".join(f"{w:.4g}" for w in self._weights)
        return f"ScoringFunction(<{entries}>)"

    def __eq__(self, other: object) -> bool:
        """Equality as *rays*: positive multiples are the same function."""
        if not isinstance(other, ScoringFunction):
            return NotImplemented
        if self.dim != other.dim:
            return False
        return bool(np.allclose(self.unit, other.unit, atol=1e-12))

    def __hash__(self) -> int:
        return hash(tuple(np.round(self.unit, 12)))

    # ------------------------------------------------------------------
    def score(self, item: np.ndarray) -> float:
        """Score of one item: ``f_w(t)``."""
        return float(np.dot(self._weights, np.asarray(item, dtype=np.float64)))

    def score_all(self, dataset: Dataset | np.ndarray) -> np.ndarray:
        """Scores for every item, vectorised."""
        values = dataset.values if isinstance(dataset, Dataset) else np.asarray(dataset)
        return values @ self._weights

    def rank(self, dataset: Dataset | np.ndarray, *, k: int | None = None) -> Ranking:
        """The induced ranking ``∇_f(D)`` (optionally just the top-k)."""
        values = dataset.values if isinstance(dataset, Dataset) else np.asarray(dataset)
        return rank_items(values, self._weights, k=k)

    def cosine_similarity(self, other: "ScoringFunction | np.ndarray") -> float:
        """Cosine similarity with another function or weight vector."""
        w = other.weights if isinstance(other, ScoringFunction) else other
        return cosine_similarity(self._weights, w)

    def angle_to(self, other: "ScoringFunction | np.ndarray") -> float:
        """Angular distance (radians) to another function or weight vector."""
        w = other.weights if isinstance(other, ScoringFunction) else other
        return angle_between(self._weights, w)
