"""The randomized GET-NEXT operator (sections 4.3-4.5).

Uniform samples of the function space hit ranking regions with
probability equal to their stability, so counting which ranking each
sampled function induces simultaneously *discovers* rankings and
*estimates* their stability.  The operator therefore scales to settings
where arrangement construction is hopeless and — unlike GET-NEXT-MD —
works for partial (top-k) rankings, since it never needs the one-to-one
region/ranking correspondence.

Two stopping rules are provided, matching Algorithms 7 and 8:

- **fixed budget** (:meth:`GetNextRandomized.get_next` with ``budget=N``)
  draws exactly ``N`` new samples and reports the best not-yet-returned
  ranking with its confidence error;
- **fixed confidence error** (``error=e``) keeps sampling until the
  normal-approximation half-width of the leading candidate drops to
  ``e`` (Equation 10), with non-deterministic cost ``~ s(1-s)(Z/e)^2``
  (Equation 11).
"""

from __future__ import annotations

from collections import Counter
from typing import Literal

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, _top_k_order
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.errors import BudgetExceededError, ExhaustedError
from repro.sampling.montecarlo import confidence_error

__all__ = ["GetNextRandomized", "RankingKind"]

RankingKind = Literal["full", "topk_ranked", "topk_set"]


class GetNextRandomized:
    """Monte-Carlo GET-NEXT over complete or top-k rankings.

    Parameters
    ----------
    dataset:
        The database (any ``n``, ``d``).
    region:
        Region of interest ``U*``; defaults to the full function space.
    kind:
        ``"full"`` for complete rankings, ``"topk_ranked"`` for ordered
        top-k prefixes, ``"topk_set"`` for unordered top-k sets
        (section 2.2.5's two partial notions).
    k:
        Prefix size for the top-k kinds.
    rng:
        Source of randomness.
    confidence:
        Confidence level for error half-widths (``alpha = 1 -
        confidence``).
    scoring_chunk:
        Number of sampled functions scored per vectorised batch; bounds
        peak memory at ``scoring_chunk * n_items`` floats.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        kind: RankingKind = "full",
        k: int | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        scoring_chunk: int = 64,
    ):
        if kind not in ("full", "topk_ranked", "topk_set"):
            raise ValueError(f"unknown ranking kind {kind!r}")
        if kind != "full":
            if k is None or k < 1 or k > dataset.n_items:
                raise ValueError(
                    f"top-k kinds require 1 <= k <= {dataset.n_items}, got {k}"
                )
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(dataset.n_attributes)
        self.kind: RankingKind = kind
        self.k = int(k) if k is not None else None
        self.rng = rng if rng is not None else np.random.default_rng()
        self.confidence = confidence
        self.scoring_chunk = max(1, int(scoring_chunk))
        # State shared across get_next calls (Algorithm 7's cnts / N').
        self.counts: Counter = Counter()
        self.total_samples = 0
        self.returned: list[StabilityResult] = []
        self._returned_keys: set = set()

    # ------------------------------------------------------------------
    # Sampling & counting
    # ------------------------------------------------------------------
    def _observe(self, n_new: int) -> None:
        """Draw ``n_new`` functions and tally the induced (partial) rankings."""
        if n_new <= 0:
            return
        values = self.dataset.values
        n = values.shape[0]
        remaining = n_new
        while remaining > 0:
            batch = min(self.scoring_chunk, remaining)
            weights = self.region.sample(batch, self.rng)
            scores = weights @ values.T  # (batch, n)
            if self.kind == "full":
                orders = np.argsort(-scores, axis=1, kind="stable")
                for row in orders:
                    self.counts[tuple(row.tolist())] += 1
            elif self.kind == "topk_ranked":
                for srow in scores:
                    self.counts[tuple(_top_k_order(srow, self.k))] += 1
            else:  # topk_set
                for srow in scores:
                    self.counts[frozenset(_top_k_order(srow, self.k))] += 1
            remaining -= batch
            self.total_samples += batch
        _ = n  # documented bound: each batch costs O(batch * n) memory

    def _result_for(self, key) -> StabilityResult:
        count = self.counts[key]
        stability = count / self.total_samples
        error = confidence_error(
            stability, self.total_samples, confidence=self.confidence
        )
        if self.kind == "topk_set":
            members = sorted(key)
            ranking = Ranking(members, n_items=self.dataset.n_items)
            return StabilityResult(
                ranking=ranking,
                stability=stability,
                confidence_error=error,
                sample_count=count,
                top_k_set=frozenset(key),
            )
        ranking = Ranking(key, n_items=self.dataset.n_items)
        return StabilityResult(
            ranking=ranking,
            stability=stability,
            confidence_error=error,
            sample_count=count,
        )

    def _best_unreturned(self):
        """The not-yet-returned key with the highest count (ties: stable)."""
        best_key = None
        best_count = -1
        for key, count in self.counts.items():
            if key in self._returned_keys:
                continue
            if count > best_count:
                best_key, best_count = key, count
        return best_key

    # ------------------------------------------------------------------
    # The operator
    # ------------------------------------------------------------------
    def get_next(
        self,
        *,
        budget: int | None = None,
        error: float | None = None,
        max_samples: int = 10_000_000,
    ) -> StabilityResult:
        """Return the next stable (partial) ranking.

        Exactly one of ``budget`` and ``error`` must be given:

        - ``budget=N`` — Algorithm 7: draw ``N`` new samples, then report
          the most frequent unreturned ranking across *all* samples so
          far.  Raises :class:`ExhaustedError` if none is new.
        - ``error=e`` — Algorithm 8: keep drawing until the leading
          unreturned ranking's confidence half-width is at most ``e``.
          ``max_samples`` caps the total pool as a safety valve
          (:class:`BudgetExceededError`).
        """
        if (budget is None) == (error is None):
            raise ValueError("provide exactly one of budget= or error=")
        if budget is not None:
            if budget < 1:
                raise ValueError(f"budget must be >= 1, got {budget}")
            self._observe(budget)
            key = self._best_unreturned()
            if key is None:
                raise ExhaustedError(
                    "no new ranking observed; call again with a larger budget"
                )
            result = self._result_for(key)
            self._returned_keys.add(key)
            self.returned.append(result)
            return result
        # Fixed-confidence mode (Algorithm 8).
        if error <= 0.0:
            raise ValueError(f"error must be positive, got {error}")
        step = 256
        while True:
            key = self._best_unreturned()
            if key is not None:
                stability = self.counts[key] / self.total_samples
                half_width = confidence_error(
                    stability, self.total_samples, confidence=self.confidence
                )
                if half_width <= error:
                    result = self._result_for(key)
                    self._returned_keys.add(key)
                    self.returned.append(result)
                    return result
            if self.total_samples >= max_samples:
                raise BudgetExceededError(
                    f"confidence error {error} not reached within "
                    f"{max_samples} samples"
                )
            self._observe(min(step, max_samples - self.total_samples))
            step = min(step * 2, 8192)

    def top_h(self, h: int, *, budget_first: int, budget_rest: int) -> list[StabilityResult]:
        """Convenience: the h most stable rankings under a budget schedule.

        Mirrors the paper's experimental protocol ("5,000 samples for the
        first GET-NEXT-R call and 1,000 for subsequent calls").  Stops
        early if the operator is exhausted.
        """
        results: list[StabilityResult] = []
        for i in range(h):
            try:
                results.append(
                    self.get_next(budget=budget_first if i == 0 else budget_rest)
                )
            except ExhaustedError:
                break
        return results
