"""The randomized GET-NEXT operator (sections 4.3-4.5).

Uniform samples of the function space hit ranking regions with
probability equal to their stability, so counting which ranking each
sampled function induces simultaneously *discovers* rankings and
*estimates* their stability.  The operator therefore scales to settings
where arrangement construction is hopeless and — unlike GET-NEXT-MD —
works for partial (top-k) rankings, since it never needs the one-to-one
region/ranking correspondence.

The sampling hot path runs entirely on the vectorized kernel of
:mod:`repro.engine.kernel`: one BLAS scoring product per block, bulk
``argsort``/``argpartition`` key extraction, byte-packed count keys,
and a heap-backed "best unreturned" query.

Two stopping rules are provided, matching Algorithms 7 and 8:

- **fixed budget** (:meth:`GetNextRandomized.get_next` with ``budget=N``)
  draws exactly ``N`` new samples and reports the best not-yet-returned
  ranking with its confidence error;
- **fixed confidence error** (``error=e``) keeps sampling until the
  normal-approximation half-width of the leading candidate drops to
  ``e`` (Equation 10), with non-deterministic cost ``~ s(1-s)(Z/e)^2``
  (Equation 11).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Literal

import numpy as np

from repro.obs import tracing as obs_trace

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.engine import kernel, kernels
from repro.errors import BudgetExceededError, ExhaustedError
from repro.sampling.montecarlo import confidence_error

__all__ = ["GetNextRandomized", "RankingKind"]

RankingKind = Literal["full", "topk_ranked", "topk_set"]

# Auto-pruning thresholds for the top-k observe path: the strict
# k-skyband index costs O(n * band * d) to build, so it is only worth
# constructing for large datasets and sampling plans big enough to
# amortise it.
_PRUNE_MIN_ITEMS = 4_096
_PRUNE_AFTER_SAMPLES = 10_000


class GetNextRandomized:
    """Monte-Carlo GET-NEXT over complete or top-k rankings.

    Parameters
    ----------
    dataset:
        The database (any ``n``, ``d``).
    region:
        Region of interest ``U*``; defaults to the full function space.
    kind:
        ``"full"`` for complete rankings, ``"topk_ranked"`` for ordered
        top-k prefixes, ``"topk_set"`` for unordered top-k sets
        (section 2.2.5's two partial notions).
    k:
        Prefix size for the top-k kinds.
    rng:
        Source of randomness.
    confidence:
        Confidence level for error half-widths (``alpha = 1 -
        confidence``).
    scoring_chunk:
        Number of sampled functions scored per vectorised block; bounds
        peak memory at ``scoring_chunk * n_items`` floats.  ``None``
        (the default) auto-tunes the block size to the dataset via
        :func:`repro.engine.kernel.auto_chunk_size`.
    prune_topk:
        Controls the strict k-skyband pruning index for the top-k
        kinds: items with ``k`` strict dominators can never enter a
        top-k under non-negative weights, so observing only the skyband
        columns is exact and much faster.  ``None`` (default) builds
        the index automatically once the dataset and the cumulative
        sampling plan are large enough to amortise its construction;
        ``True`` builds it on the first observation; ``False`` disables
        pruning.
    skyband:
        Optional prebuilt :class:`repro.operators.skyline.KSkybandIndex`
        over ``dataset.values``, shared across operators so a serving
        session pays the band construction once (the index caches per
        ``k``).  ``None`` builds a private index on demand.
    kernel_backend:
        Kernel backend for the chunk reduction — a name (``"numpy"``,
        ``"numba"``, ``"auto"``) or a
        :class:`repro.engine.kernels.KernelBackend` instance.  ``None``
        resolves via the ``REPRO_KERNEL`` environment variable, then
        auto-selects the fastest available backend.  Every backend
        produces the byte-identical tally (keys, counts, first-seen
        order) and never touches the rng stream; the choice is a pure
        speed dial and is deliberately *not* part of durable state.
    sampling:
        ``"mc"`` (default) draws i.i.d. uniform weights from the rng;
        ``"qmc"`` drives the pool with a randomised low-discrepancy
        stream (:class:`repro.sampling.quasi.QuasiStream`) — one
        Cranley-Patterson shift drawn from the rng at construction, a
        running Halton index continuing a single sequence across
        observe passes.  Only the full space and orthant-contained
        cones support it.  The estimator stays unbiased but the draws
        are no longer independent, so confidence half-widths are the
        (conservative) i.i.d. ones.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        kind: RankingKind = "full",
        k: int | None = None,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        scoring_chunk: int | None = None,
        prune_topk: bool | None = None,
        skyband=None,
        kernel_backend: "str | kernels.KernelBackend | None" = None,
        sampling: str = "mc",
    ):
        if kind not in ("full", "topk_ranked", "topk_set"):
            raise ValueError(f"unknown ranking kind {kind!r}")
        if kind != "full":
            if k is None or k < 1 or k > dataset.n_items:
                raise ValueError(
                    f"top-k kinds require 1 <= k <= {dataset.n_items}, got {k}"
                )
        if sampling not in ("mc", "qmc"):
            raise ValueError(f"sampling must be 'mc' or 'qmc', got {sampling!r}")
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(dataset.n_attributes)
        self.kind: RankingKind = kind
        self.k = int(k) if k is not None else None
        self.rng = rng if rng is not None else np.random.default_rng()
        self.confidence = confidence
        self.kernel_backend = kernels.resolve_kernel(kernel_backend)
        self.sampling = sampling
        if sampling == "qmc":
            from repro.sampling.quasi import QuasiStream

            self._qmc = QuasiStream.for_region(self.region, self.rng)
        else:
            self._qmc = None
        self._auto_chunk = scoring_chunk is None
        if scoring_chunk is None:
            self.scoring_chunk = kernel.auto_chunk_size(
                dataset.n_items, scale=self.kernel_backend.chunk_scale
            )
        else:
            self.scoring_chunk = max(1, int(scoring_chunk))
        # State shared across get_next calls (Algorithm 7's cnts / N').
        key_length = dataset.n_items if kind == "full" else self.k
        self._tally = kernel.RankingTally(dataset.n_items, key_length)
        self.returned: list[StabilityResult] = []
        self._prune_topk = prune_topk if kind != "full" else False
        self._skyband = skyband
        self._candidates: np.ndarray | None = None
        self._candidate_values: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Sampling & counting
    # ------------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        """Size of the cumulative sample pool (Algorithm 7's ``N'``)."""
        return self._tally.total

    @property
    def counts(self) -> Counter:
        """The count table with the paper's key convention.

        Keys are identifier tuples for ``"full"``/``"topk_ranked"`` and
        frozensets for ``"topk_set"``.  Built on demand from the
        byte-packed internal tally; mutate-and-expect-persistence is not
        supported.
        """
        tally = self._tally
        if self.kind == "topk_set":
            return Counter(
                {frozenset(tally.unpack(key)): c for key, c in tally.counts.items()}
            )
        return Counter({tally.unpack(key): c for key, c in tally.counts.items()})

    @property
    def tally(self) -> kernel.RankingTally:
        """The cumulative count table (read for merging/inspection only)."""
        return self._tally

    def prepare_observe(self, n_new: int) -> None:
        """Install the strict k-skyband candidate set when it pays off.

        Public so external observe drivers (the shard-parallel observer
        of :mod:`repro.service.parallel`) can reproduce the serial
        path's state transitions — index construction and the chunk
        re-tune — before planning their own chunk decomposition.
        """
        if self._prune_topk is False or self._candidates is not None:
            return
        if self.kind == "full":
            return
        n = self.dataset.n_items
        if self._prune_topk is None and (
            n < _PRUNE_MIN_ITEMS
            or self.total_samples + n_new < _PRUNE_AFTER_SAMPLES
            or self.k > n // 8
        ):
            return
        if self._skyband is None:
            from repro.operators.skyline import KSkybandIndex

            self._skyband = KSkybandIndex(self.dataset.values)
        candidates = self._skyband.band(self.k)
        if candidates.size >= n:
            self._prune_topk = False  # nothing to prune; stop re-checking
            return
        self._candidates = candidates
        self._candidate_values = np.ascontiguousarray(
            self.dataset.values[candidates]
        )
        if self._auto_chunk:
            self.scoring_chunk = kernel.auto_chunk_size(
                candidates.size, scale=self.kernel_backend.chunk_scale
            )

    def plan_chunks(self, n_new: int) -> list[int]:
        """The chunk decomposition of an ``n_new``-sample observe pass.

        Deterministic given the operator's (already prepared) scoring
        chunk; serial and parallel observe share this plan so their
        tallies agree exactly.
        """
        sizes: list[int] = []
        remaining = max(int(n_new), 0)
        while remaining > 0:
            batch = min(self.scoring_chunk, remaining)
            sizes.append(batch)
            remaining -= batch
        return sizes

    def sample_weights(self, batch: int) -> np.ndarray:
        """The next ``batch`` sampled weight rows of this operator's stream.

        The single sampling entry point shared by the serial observe
        loop and the thread/process observers — ``"mc"`` consumes the
        rng, ``"qmc"`` advances the low-discrepancy stream.  Callers
        must draw in plan order (one chunk at a time) so every observe
        path consumes the identical stream.
        """
        if self._qmc is not None:
            return self._qmc.sample(batch)
        return self.region.sample(batch, self.rng)

    def rows_for_weights(self, weights: np.ndarray) -> np.ndarray:
        """Ranking-key rows induced by a block of sampled functions.

        Pure (no operator state is mutated), so blocks can be reduced
        concurrently; candidate-space top-k rows are mapped back to
        dataset identifiers.
        """
        if self._candidate_values is not None:
            values, candidates = self._candidate_values, self._candidates
        else:
            values, candidates = self.dataset.values, None
        scores = kernel.score_block(values, weights)
        rows = self.kernel_backend.rank_rows(scores, kind=self.kind, k=self.k)
        if candidates is not None:
            rows = candidates[rows]
        return rows

    def reduce_for_weights(self, weights: np.ndarray, *, out: np.ndarray | None = None):
        """One chunk's pure reduction on the active kernel backend.

        Returns ``(uniques, freqs, n_rows)`` for
        :meth:`~repro.engine.kernel.RankingTally.observe_packed`; pure
        like :meth:`rows_for_weights`, so the thread observer submits it
        concurrently.  ``out`` optionally reuses a preallocated score
        buffer (serial path only — concurrent chunks must not share one).
        """
        if self._candidate_values is not None:
            values, candidates = self._candidate_values, self._candidates
        else:
            values, candidates = self.dataset.values, None
        return self.kernel_backend.reduce_chunk(
            values,
            weights,
            kind=self.kind,
            k=self.k,
            key_dtype=self._tally.dtype,
            candidates=candidates,
            out=out,
        )

    def observe(self, n_new: int) -> None:
        """Draw ``n_new`` functions and tally the induced (partial) rankings."""
        if n_new <= 0:
            return
        self.prepare_observe(n_new)
        plan = self.plan_chunks(n_new)
        if not plan:
            return
        n_effective = (
            self._candidate_values.shape[0]
            if self._candidate_values is not None
            else self.dataset.n_items
        )
        # One score buffer for the whole pass: every chunk's GEMM writes
        # into the same (chunk, n) block instead of allocating afresh.
        buf = np.empty((max(plan), n_effective), dtype=np.float64)
        if not obs_trace.tracing_enabled():
            for batch in plan:
                weights = self.sample_weights(batch)
                keys, freqs, n_rows = self.reduce_for_weights(weights, out=buf)
                self._tally.observe_packed(keys, freqs, n_rows)
            return
        # Traced pass: accumulate per-stage time locally and record one
        # aggregate span per stage, instead of a span per chunk.
        sample_s = reduce_s = fold_s = 0.0
        clock = time.perf_counter
        for batch in plan:
            t0 = clock()
            weights = self.sample_weights(batch)
            t1 = clock()
            keys, freqs, n_rows = self.reduce_for_weights(weights, out=buf)
            t2 = clock()
            self._tally.observe_packed(keys, freqs, n_rows)
            fold_s += clock() - t2
            sample_s += t1 - t0
            reduce_s += t2 - t1
        chunks = len(plan)
        obs_trace.record("observe.sample", sample_s, count=chunks, n=n_new)
        obs_trace.record("observe.reduce", reduce_s, count=chunks,
                         kernel=self.kernel_backend.name)
        obs_trace.record("observe.fold", fold_s, count=chunks)

    def _result_for(self, key: bytes) -> StabilityResult:
        count = self._tally.count_of(key)
        stability = count / self.total_samples
        error = confidence_error(
            stability, self.total_samples, confidence=self.confidence
        )
        ids = self._tally.unpack(key)
        if self.kind == "topk_set":
            ranking = Ranking(sorted(ids), n_items=self.dataset.n_items)
            return StabilityResult(
                ranking=ranking,
                stability=stability,
                confidence_error=error,
                sample_count=count,
                top_k_set=frozenset(ids),
            )
        ranking = Ranking(ids, n_items=self.dataset.n_items)
        return StabilityResult(
            ranking=ranking,
            stability=stability,
            confidence_error=error,
            sample_count=count,
        )

    # ------------------------------------------------------------------
    # The operator
    # ------------------------------------------------------------------
    def get_next(
        self,
        *,
        budget: int | None = None,
        error: float | None = None,
        max_samples: int = 10_000_000,
    ) -> StabilityResult:
        """Return the next stable (partial) ranking.

        Exactly one of ``budget`` and ``error`` must be given:

        - ``budget=N`` — Algorithm 7: draw ``N`` new samples, then report
          the most frequent unreturned ranking across *all* samples so
          far.  Raises :class:`ExhaustedError` if none is new.
        - ``error=e`` — Algorithm 8: keep drawing until the leading
          unreturned ranking's confidence half-width is at most ``e``.
          ``max_samples`` caps the total pool as a safety valve
          (:class:`BudgetExceededError`).
        """
        if (budget is None) == (error is None):
            raise ValueError("provide exactly one of budget= or error=")
        if budget is not None:
            if budget < 1:
                raise ValueError(f"budget must be >= 1, got {budget}")
            self.observe(budget)
            try:
                return self.next_from_pool()
            except ExhaustedError:
                raise ExhaustedError(
                    "no new ranking observed; call again with a larger budget"
                ) from None
        # Fixed-confidence mode (Algorithm 8).
        if error <= 0.0:
            raise ValueError(f"error must be positive, got {error}")
        step = 256
        while True:
            key = self._tally.best_unreturned()
            if key is not None:
                stability = self._tally.count_of(key) / self.total_samples
                half_width = confidence_error(
                    stability, self.total_samples, confidence=self.confidence
                )
                if half_width <= error:
                    result = self._result_for(key)
                    self._tally.mark_returned(key)
                    self.returned.append(result)
                    return result
            if self.total_samples >= max_samples:
                raise BudgetExceededError(
                    f"confidence error {error} not reached within "
                    f"{max_samples} samples"
                )
            self.observe(min(step, max_samples - self.total_samples))
            step = min(step * 2, 8192)

    def next_from_pool(self) -> StabilityResult:
        """The best not-yet-returned ranking of the *current* pool.

        Draws no new samples — the service layer's batch planner fills
        the pool once (possibly shard-parallel) and then drains answers
        through here.  Raises :class:`ExhaustedError` when every
        observed ranking has been returned.
        """
        key = self._tally.best_unreturned()
        if key is None:
            raise ExhaustedError(
                "every observed ranking has been returned; "
                "observe more samples to discover new ones"
            )
        result = self._result_for(key)
        self._tally.mark_returned(key)
        self.returned.append(result)
        return result

    def top_from_pool(self, m: int) -> list[StabilityResult]:
        """The ``m`` most frequent rankings of the current pool, best first.

        Non-consuming (returned-marks are neither consulted nor set)
        and idempotent given the pool, which makes it safe to cache:
        repeated top-``m`` queries over one session answer from the
        cumulative tally instead of re-running the GET-NEXT protocol.
        Returns fewer than ``m`` results when the pool has not observed
        that many distinct rankings.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if self.total_samples == 0:
            return []
        return [self._result_for(key) for key in self._tally.top_keys(m)]

    def stability_of(self, ranking, *, min_samples: int = 5_000) -> StabilityResult:
        """Estimate the stability of a specific (partial) ranking.

        Counts the fraction of the cumulative pool inducing ``ranking``,
        topping the pool up to ``min_samples`` first so a fresh operator
        can answer immediately.  Accepts a :class:`Ranking`, an id
        sequence, or (for ``kind="topk_set"``) any iterable of ids.

        On a ``kind="full"`` operator a ranking *shorter* than the
        dataset takes the **prefix fast path**: the estimate is the
        pool fraction whose induced ranking *begins* with ``ranking``
        (:meth:`~repro.engine.kernel.RankingTally.prefix_count`).
        Because a sampled function's ranked top-``len(ranking)`` prefix
        is by construction the prefix of its full ranking, this is the
        same quantity a dedicated ``topk_ranked`` operator estimates —
        answered from the pool already drawn instead of sampling a
        fresh configuration, which is what makes full-ranking pools
        useful at large ``n`` where any exact full ranking is
        vanishingly rare.
        """
        if self.total_samples < min_samples:
            self.observe(min_samples - self.total_samples)
        if self.total_samples == 0:
            # Reachable via min_samples<=0 on a fresh operator; reject
            # as a bad request instead of dividing by the empty pool.
            raise ValueError(
                "the sample pool is empty; pass min_samples >= 1 "
                "(or observe first)"
            )
        ids = list(ranking)
        if self.kind == "topk_set":
            ids = sorted(ids)
        if len(ids) != self._tally.key_length:
            if self.kind == "full" and 0 < len(ids) < self._tally.key_length:
                n_items = self.dataset.n_items
                bad = [i for i in ids if not 0 <= int(i) < n_items]
                if bad:
                    # Validate before byte-packing: numpy >= 2 raises
                    # OverflowError on out-of-dtype ids, which serving
                    # surfaces would misreport as a server bug.
                    raise ValueError(
                        f"prefix ids must be in [0, {n_items}), got {bad}"
                    )
                count = self._tally.prefix_count(ids)
                stability = count / self.total_samples
                return StabilityResult(
                    ranking=Ranking(ids, n_items=self.dataset.n_items),
                    stability=stability,
                    confidence_error=confidence_error(
                        stability,
                        self.total_samples,
                        confidence=self.confidence,
                    ),
                    sample_count=count,
                )
            raise ValueError(
                f"expected a ranking of {self._tally.key_length} items, "
                f"got {len(ids)}"
            )
        key = self._tally.pack(ids)
        count = self._tally.count_of(key)
        stability = count / self.total_samples
        return StabilityResult(
            ranking=Ranking(ids, n_items=self.dataset.n_items),
            stability=stability,
            confidence_error=confidence_error(
                stability, self.total_samples, confidence=self.confidence
            ),
            sample_count=count,
            top_k_set=frozenset(ids) if self.kind == "topk_set" else None,
        )

    # ------------------------------------------------------------------
    # Durable state (snapshot/restore)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Everything needed to resume this operator elsewhere.

        Covers the cumulative tally (counts, first-seen order, totals),
        the GET-NEXT return protocol (which rankings were consumed, in
        order, with the exact result values reported at the time), the
        generator's mid-stream state, and the pruning/chunking knobs
        that pin the observe-pass decomposition.  Restoring this state
        into an operator over the same dataset makes every future
        ``observe``/``get_next``/``top_from_pool`` answer byte-identical
        to the uninterrupted operator's.
        """
        tally_state = self._tally.export_state()
        # The exported key blob is in first-seen order and first-seen
        # indices are dense 0..K-1, so ``_first_seen[key]`` *is* the
        # key's position in the blob — no index map to build.
        first_seen = self._tally._first_seen
        returned = []
        for result in self.returned:
            key = self._tally.pack(result.ranking.order)
            returned.append(
                {
                    "key": first_seen[key],
                    "stability": result.stability,
                    "confidence_error": result.confidence_error,
                    "sample_count": result.sample_count,
                }
            )
        return {
            "kind": self.kind,
            "k": self.k,
            "region": repr(self.region),
            "rng_state": self.rng.bit_generator.state,
            "scoring_chunk": self.scoring_chunk,
            "auto_chunk": self._auto_chunk,
            "prune_topk": self._prune_topk,
            "candidates_installed": self._candidates is not None,
            "returned": returned,
            "tally": tally_state,
            # The kernel backend is deliberately absent: it is a pure
            # speed dial (byte-identical tallies), chosen per host.
            "sampling": self.sampling,
            "qmc": self._qmc.export_state() if self._qmc is not None else None,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a state exported by :meth:`export_state`.

        The operator must have been constructed over the same dataset
        with the same ``kind``/``k``; everything else (tally, rng
        stream, returned cursor, chunking) is overwritten.  Raises
        :class:`ValueError` on any inconsistency rather than resuming
        from half-adopted state.
        """
        if state["kind"] != self.kind or state["k"] != self.k:
            raise ValueError(
                f"state is for kind={state['kind']!r}, k={state['k']}; "
                f"this operator serves kind={self.kind!r}, k={self.k}"
            )
        # The library keeps region reprs canonical, so repr equality is
        # region equality.  Adopting a pool sampled over a different
        # region would silently blend two distributions in one tally.
        if state["region"] != repr(self.region):
            raise ValueError(
                f"state was sampled over region {state['region']}, but "
                f"this operator samples {self.region!r}"
            )
        tally = kernel.RankingTally.from_state(
            self.dataset.n_items, **state["tally"]
        )
        if tally.key_length != self._tally.key_length:
            raise ValueError(
                f"tally key length {tally.key_length} does not match "
                f"operator key length {self._tally.key_length}"
            )
        # from_state inserted the keys in first-seen order, so the dict
        # order already is the blob order the "key" indices refer to.
        ordered = list(tally.counts)
        returned: list[StabilityResult] = []
        for entry in state["returned"]:
            key = ordered[entry["key"]]
            ids = tally.unpack(key)
            result = StabilityResult(
                ranking=Ranking(ids, n_items=self.dataset.n_items),
                stability=float(entry["stability"]),
                confidence_error=float(entry["confidence_error"]),
                sample_count=int(entry["sample_count"]),
                top_k_set=frozenset(ids) if self.kind == "topk_set" else None,
            )
            tally.mark_returned(key)
            returned.append(result)
        rng_state = state["rng_state"]
        bg_name = rng_state["bit_generator"]
        # The name comes from serialized state; resolve it against the
        # closed set of BitGenerators only — a generic getattr would
        # happily call arbitrary np.random functions (np.random.seed,
        # ...) with side effects before the .state assignment failed.
        known = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
        if bg_name not in known or not hasattr(np.random, bg_name):
            raise ValueError(
                f"unknown bit generator {bg_name!r} in rng state "
                f"(known: {sorted(known)})"
            )
        bit_generator = getattr(np.random, bg_name)()
        bit_generator.state = rng_state
        # Read every remaining key up front: a missing one must raise
        # *before* the first assignment, never between two of them.
        prune_topk = state["prune_topk"]
        candidates_installed = state["candidates_installed"]
        auto_chunk = state["auto_chunk"]
        scoring_chunk = int(state["scoring_chunk"])
        # Sampling-mode keys post-date the first snapshot format; absent
        # keys mean a plain-MC pool (.get defaults keep old snapshots
        # restoring byte-identically).
        sampling = state.get("sampling", "mc")
        if sampling not in ("mc", "qmc"):
            raise ValueError(f"unknown sampling mode {sampling!r} in state")
        qmc_state = state.get("qmc")
        qmc = None
        if sampling == "qmc":
            if qmc_state is None:
                raise ValueError("sampling='qmc' state is missing its stream")
            from repro.sampling.quasi import QuasiStream

            qmc = QuasiStream.restore(self.region, qmc_state)
        # All validation passed — adopt atomically.
        self._tally = tally
        self.returned = returned
        self.rng = np.random.Generator(bit_generator)
        self._prune_topk = prune_topk
        self._candidates = None
        self._candidate_values = None
        if candidates_installed and self.kind != "full":
            if self._skyband is None:
                from repro.operators.skyline import KSkybandIndex

                self._skyband = KSkybandIndex(self.dataset.values)
            candidates = self._skyband.band(self.k)
            if candidates.size < self.dataset.n_items:
                self._candidates = candidates
                self._candidate_values = np.ascontiguousarray(
                    self.dataset.values[candidates]
                )
        self._auto_chunk = auto_chunk
        self.scoring_chunk = scoring_chunk
        self.sampling = sampling
        self._qmc = qmc

    def top_h(self, h: int, *, budget_first: int, budget_rest: int) -> list[StabilityResult]:
        """Convenience: the h most stable rankings under a budget schedule.

        Mirrors the paper's experimental protocol ("5,000 samples for the
        first GET-NEXT-R call and 1,000 for subsequent calls").  Stops
        early if the operator is exhausted.
        """
        results: list[StabilityResult] = []
        for i in range(h):
            try:
                results.append(
                    self.get_next(budget=budget_first if i == 0 else budget_rest)
                )
            except ExhaustedError:
                break
        return results
