"""A "nutritional label" for rankings (reference [5], Yang et al. 2018).

The paper motivates stability as "an important aspect of algorithmic
transparency" and cites the authors' Ranking Facts label.  This module
assembles the stability-related panels of such a label for a published
ranking, combining the library's consumer tools into one report:

- **Reference panel** — the published weights, the ranking they induce,
  and the ranking's stability inside the region of interest (with its
  percentile among the sampled ranking distribution, Example 1's
  "matching that of the uniform baseline" check).
- **Alternatives panel** — the top-h most stable rankings, how much of
  the region each occupies, and the displacement of each from the
  reference.
- **Item panel** — per-item rank ranges across the region (Example 1's
  Cornell view) for the head of the ranking.
- **Robustness panel** — the fraction of adjacent pairs certified never
  to flip inside the region, and the items on the top-k bubble.

Everything is computed from one shared sample pool, so a label costs a
single ``O(n_samples * n * d)`` scoring pass plus the exact pairwise
certifications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import RankProfile, rank_profile, topk_membership_probability
from repro.core.dataset import Dataset
from repro.core.md import verify_stability_md
from repro.core.ranking import Ranking, rank_items
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.core.twod import verify_stability_2d
from repro.errors import InfeasibleRankingError, InvalidWeightsError
from repro.geometry.angles import as_unit_vector

__all__ = ["RankingLabel", "build_label"]


@dataclass(frozen=True)
class RankingLabel:
    """The assembled stability label of a published ranking.

    Attributes
    ----------
    reference_weights:
        The published weights, normalised to a unit ray.
    reference_ranking:
        The ranking induced by the reference weights.
    reference_stability:
        Stability of the reference ranking in the region of interest.
    reference_percentile:
        Fraction of sampled scoring functions whose induced ranking is
        *less* stable than the reference (1.0 = the reference is the
        most stable observed ranking; low values flag cherry-picking).
    n_distinct_rankings:
        Number of distinct rankings observed among the samples — a
        resolution-limited lower bound on ``|R*|``.
    alternatives:
        The top-h most stable rankings observed, most stable first.
    alternative_displacements:
        Kendall tau distance of each alternative from the reference.
    item_profiles:
        Rank ranges of the first ``head`` reference items.
    bubble_items:
        Items whose top-k membership probability lies strictly between
        ``bubble_lo`` and ``bubble_hi`` — the items whose fate depends
        on the exact weight choice.
    k:
        The k used for the bubble analysis.
    n_samples:
        Size of the shared sample pool behind the estimates.
    """

    reference_weights: np.ndarray
    reference_ranking: Ranking
    reference_stability: float
    reference_percentile: float
    n_distinct_rankings: int
    alternatives: tuple[StabilityResult, ...]
    alternative_displacements: tuple[int, ...]
    item_profiles: tuple[RankProfile, ...]
    bubble_items: tuple[tuple[int, float], ...]
    k: int
    n_samples: int

    def render(self, *, labels: tuple[str, ...] | None = None) -> str:
        """Multi-line text rendering of the label (the Ranking Facts box)."""
        lines: list[str] = []
        lines.append("RANKING FACTS")
        lines.append("=" * 60)
        head = ", ".join(f"{w:.3f}" for w in self.reference_weights)
        lines.append(f"Reference weights      <{head}>")
        lines.append(
            f"Reference stability    {self.reference_stability:.4f} "
            f"(more stable than {self.reference_percentile:.0%} of sampled functions)"
        )
        lines.append(f"Distinct rankings seen {self.n_distinct_rankings}")
        lines.append("-" * 60)
        lines.append("Most stable alternatives (stability, moves vs reference):")
        for alt, moved in zip(self.alternatives, self.alternative_displacements):
            lines.append(
                f"  {alt.stability:8.4f}   {moved:4d} discordant pairs"
            )
        lines.append("-" * 60)
        lines.append("Rank ranges of the reference head:")
        for profile in self.item_profiles:
            name = (
                labels[profile.item]
                if labels is not None
                else f"item-{profile.item}"
            )
            lines.append(
                f"  {name:<24} rank {profile.min_rank}-{profile.max_rank} "
                f"(mean {profile.mean_rank:.1f})"
            )
        lines.append("-" * 60)
        lines.append(f"Top-{self.k} bubble (membership probability):")
        if not self.bubble_items:
            lines.append("  (none — the top-k set is unambiguous)")
        for item, prob in self.bubble_items:
            name = labels[item] if labels is not None else f"item-{item}"
            lines.append(f"  {name:<24} {prob:.0%}")
        return "\n".join(lines)


def build_label(
    dataset: Dataset,
    reference_weights: np.ndarray,
    *,
    region: RegionOfInterest | None = None,
    k: int = 10,
    head: int = 10,
    n_alternatives: int = 5,
    n_samples: int = 4_000,
    bubble_lo: float = 0.05,
    bubble_hi: float = 0.95,
    rng: np.random.Generator | None = None,
) -> RankingLabel:
    """Assemble a :class:`RankingLabel` for a published scoring function.

    Parameters
    ----------
    dataset:
        The database being ranked.
    reference_weights:
        The published weights.
    region:
        Region of interest; defaults to the full function space.
    k:
        Top-k size for the bubble analysis (clamped to ``n``).
    head:
        How many head items get rank-range profiles.
    n_alternatives:
        How many most-stable alternatives to list.
    n_samples:
        Shared sample budget for every Monte-Carlo panel.
    bubble_lo, bubble_hi:
        Membership-probability band that defines "on the bubble".
    """
    w = np.asarray(reference_weights, dtype=np.float64)
    if w.ndim != 1 or w.shape[0] != dataset.n_attributes:
        raise InvalidWeightsError(
            f"reference weights must have length {dataset.n_attributes}"
        )
    unit = as_unit_vector(w)
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    k = min(k, dataset.n_items)
    head = min(head, dataset.n_items)
    reference_ranking = rank_items(dataset.values, unit)

    # One shared pool of sampled functions drives every estimate.
    pool = roi.sample(n_samples, generator)
    scores = pool @ dataset.values.T  # (n_samples, n)
    order = np.argsort(-scores, axis=1, kind="stable")
    ranking_keys = [tuple(row) for row in order]

    # Stability distribution over observed rankings.
    counts: dict[tuple[int, ...], int] = {}
    for key in ranking_keys:
        counts[key] = counts.get(key, 0) + 1
    ref_key = reference_ranking.order
    ref_count = counts.get(ref_key, 0)
    # Percentile: fraction of samples landing in rankings with strictly
    # smaller regions than the reference's.
    weaker = sum(c for key, c in counts.items() if c < ref_count)
    reference_percentile = weaker / n_samples if n_samples else 0.0

    reference_stability = _exact_or_mc_stability(
        dataset, reference_ranking, roi, generator, n_samples
    )

    ranked_alternatives = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    alternatives: list[StabilityResult] = []
    displacements: list[int] = []
    for key, count in ranked_alternatives[:n_alternatives]:
        alt_ranking = Ranking(key, n_items=dataset.n_items)
        alternatives.append(
            StabilityResult(
                ranking=alt_ranking,
                stability=count / n_samples,
                sample_count=n_samples,
            )
        )
        displacements.append(reference_ranking.kendall_tau_distance(alt_ranking))

    profiles = rank_profile(
        dataset,
        list(reference_ranking.order[:head]),
        region=roi,
        n_samples=min(n_samples, 2_000),
        rng=generator,
    )
    membership = topk_membership_probability(
        dataset, k, region=roi, n_samples=min(n_samples, 2_000), rng=generator
    )
    bubble = tuple(
        (int(i), float(membership[i]))
        for i in np.argsort(-membership)
        if bubble_lo < membership[i] < bubble_hi
    )
    return RankingLabel(
        reference_weights=unit,
        reference_ranking=reference_ranking,
        reference_stability=reference_stability,
        reference_percentile=reference_percentile,
        n_distinct_rankings=len(counts),
        alternatives=tuple(alternatives),
        alternative_displacements=tuple(displacements),
        item_profiles=tuple(profiles),
        bubble_items=bubble,
        k=k,
        n_samples=n_samples,
    )


def _exact_or_mc_stability(
    dataset: Dataset,
    ranking: Ranking,
    roi: RegionOfInterest,
    rng: np.random.Generator,
    n_samples: int,
) -> float:
    """Exact 2D verification when possible, Monte-Carlo otherwise."""
    try:
        if dataset.n_attributes == 2:
            return verify_stability_2d(dataset, ranking, region=roi).stability
        return verify_stability_md(
            dataset, ranking, region=roi, n_samples=n_samples, rng=rng
        ).stability
    except InfeasibleRankingError:
        return 0.0
