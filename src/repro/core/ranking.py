"""Rankings and partial (top-k) rankings.

A ranking (the paper's ``∇_f(D)``) is the permutation of item identifiers
obtained by sorting on score, descending, "breaking ties consistently by
an item identifier".  The randomized operators of section 4.3 additionally
work with two partial views of a ranking (section 2.2.5):

- the **ranked top-k** — the first ``k`` entries, order significant;
- the **top-k set** — the same entries as an unordered set.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import InvalidRankingError

__all__ = ["Ranking", "rank_items", "ranking_from_scores"]


class Ranking:
    """An immutable, hashable permutation (or prefix) of item identifiers.

    Instances compare equal iff they contain the same identifiers in the
    same order, so a ``Ranking`` can key the count hash of Algorithms 7-8.

    Parameters
    ----------
    order:
        Item identifiers from best to worst.
    n_items:
        Size of the underlying dataset.  When ``len(order) == n_items``
        the ranking is complete; a shorter ranking is a ranked top-k.
    """

    __slots__ = ("_order", "_n_items")

    def __init__(self, order: Iterable[int], *, n_items: int | None = None):
        items = tuple(int(i) for i in order)
        if len(items) == 0:
            raise InvalidRankingError("ranking must contain at least one item")
        if len(set(items)) != len(items):
            raise InvalidRankingError("ranking contains repeated items")
        size = int(n_items) if n_items is not None else len(items)
        if len(items) > size:
            raise InvalidRankingError(
                f"ranking of {len(items)} items over a dataset of {size}"
            )
        if any(i < 0 or i >= size for i in items):
            raise InvalidRankingError("item identifiers out of range")
        self._order = items
        self._n_items = size

    # ------------------------------------------------------------------
    @property
    def order(self) -> tuple[int, ...]:
        """Item identifiers, best first."""
        return self._order

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def is_complete(self) -> bool:
        return len(self._order) == self._n_items

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __getitem__(self, position: int) -> int:
        return self._order[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return self._order == other._order

    def __hash__(self) -> int:
        return hash(self._order)

    def __repr__(self) -> str:
        head = ", ".join(str(i) for i in self._order[:6])
        ellipsis = ", ..." if len(self._order) > 6 else ""
        return f"Ranking([{head}{ellipsis}], len={len(self._order)})"

    # ------------------------------------------------------------------
    def rank_of(self, item: int) -> int:
        """1-based rank of ``item``.

        Raises
        ------
        KeyError
            If the item does not appear (possible for partial rankings).
        """
        try:
            return self._order.index(int(item)) + 1
        except ValueError:
            raise KeyError(f"item {item} not present in this ranking") from None

    def top_k(self, k: int) -> "Ranking":
        """The ranked top-k prefix."""
        if k < 1 or k > len(self._order):
            raise InvalidRankingError(
                f"k must be in [1, {len(self._order)}], got {k}"
            )
        return Ranking(self._order[:k], n_items=self._n_items)

    def top_k_set(self, k: int) -> frozenset[int]:
        """The top-k set (order discarded) — the weaker stability notion."""
        if k < 1 or k > len(self._order):
            raise InvalidRankingError(
                f"k must be in [1, {len(self._order)}], got {k}"
            )
        return frozenset(self._order[:k])

    def kendall_tau_distance(self, other: "Ranking") -> int:
        """Number of discordant pairs between two complete rankings.

        A convenience for analyses like section 6.2's "bigger changes in
        rank position"; both rankings must be complete over the same
        items.
        """
        if set(self._order) != set(other._order):
            raise InvalidRankingError("rankings must cover the same items")
        position = {item: i for i, item in enumerate(other._order)}
        mapped = [position[item] for item in self._order]
        # Count inversions in `mapped` via merge sort, O(m log m).
        def count(arr: list[int]) -> tuple[list[int], int]:
            if len(arr) <= 1:
                return arr, 0
            mid = len(arr) // 2
            left, inv_l = count(arr[:mid])
            right, inv_r = count(arr[mid:])
            merged: list[int] = []
            inv = inv_l + inv_r
            i = j = 0
            while i < len(left) and j < len(right):
                if left[i] <= right[j]:
                    merged.append(left[i])
                    i += 1
                else:
                    merged.append(right[j])
                    inv += len(left) - i
                    j += 1
            merged.extend(left[i:])
            merged.extend(right[j:])
            return merged, inv

        return count(mapped)[1]


def ranking_from_scores(scores: np.ndarray, *, k: int | None = None) -> Ranking:
    """Build a :class:`Ranking` from a score vector.

    Sorts descending; ties break by ascending item identifier (a stable
    argsort on the negated scores), matching the paper's convention.

    Parameters
    ----------
    scores:
        Length-``n`` vector of item scores.
    k:
        If given, return only the ranked top-k (computed exactly,
        including deterministic handling of score ties at the boundary).
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1:
        raise InvalidRankingError("scores must be a 1-D vector")
    n = s.shape[0]
    if k is None or k >= n:
        order = np.argsort(-s, kind="stable")
        return Ranking(order.tolist(), n_items=n)
    return Ranking(_top_k_order(s, k), n_items=n)


def _top_k_order(scores: np.ndarray, k: int) -> list[int]:
    """Deterministic top-k indices by (score desc, id asc) in O(n).

    ``argpartition`` alone breaks score ties arbitrarily; to honour the
    tie-break-by-identifier convention we split the boundary explicitly:
    items scoring strictly above the k-th score are all in, and the
    remaining slots are filled by the lowest-id items at exactly the
    boundary score.
    """
    if k < 1:
        raise InvalidRankingError(f"k must be >= 1, got {k}")
    n = scores.shape[0]
    if k >= n:
        return np.argsort(-scores, kind="stable").tolist()
    part = np.argpartition(-scores, k - 1)[:k]
    boundary = scores[part].min()
    above = np.flatnonzero(scores > boundary)
    at = np.flatnonzero(scores == boundary)
    needed = k - above.shape[0]
    chosen = np.concatenate([above, at[:needed]])
    order = chosen[np.argsort(-scores[chosen], kind="stable")]
    return order.tolist()


def rank_items(
    values: np.ndarray, weights: np.ndarray, *, k: int | None = None
) -> Ranking:
    """Rank the rows of ``values`` under the linear function ``weights``.

    The fundamental ``∇_f(D)`` operation: ``scores = values @ weights``
    sorted descending with id tie-breaks.
    """
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    return ranking_from_scores(v @ w, k=k)
