"""Core library: the paper's primary contribution.

Data model (:mod:`dataset`, :mod:`scoring`, :mod:`ranking`), regions of
interest (:mod:`region`), and the three algorithm families — exact 2D
(:mod:`twod`), arrangement-based MD (:mod:`md`), and Monte-Carlo
randomized (:mod:`randomized`) — unified by the enumeration drivers in
:mod:`enumeration`.
"""

from repro.core.dataset import Dataset
from repro.core.enumeration import (
    enumerate_stable_rankings,
    make_get_next,
    top_h_stable_rankings,
)
from repro.core.md import (
    GetNextMD,
    exchange_hyperplanes,
    ranking_region_md,
    verify_stability_md,
)
from repro.core.randomized import GetNextRandomized
from repro.core.ranking import Ranking, rank_items, ranking_from_scores
from repro.core.region import Cone, ConstrainedRegion, FullSpace, RegionOfInterest
from repro.core.scoring import ScoringFunction
from repro.core.stability import AngularRegion, StabilityResult
from repro.core.twod import GetNext2D, ray_sweep, sweep_boundaries, verify_stability_2d
from repro.core.tolerance import kendall_tau_within, tolerant_stability
from repro.core.topk_stability import (
    verify_topk_ranking_stability,
    verify_topk_set_stability,
)
from repro.core.boundaries import (
    BoundaryPair,
    boundary_pairs_2d,
    chebyshev_direction,
    facet_pairs_md,
    tight_constraints,
)
from repro.core.analysis import (
    RankProfile,
    rank_profile,
    stable_pairs,
    topk_membership_probability,
)
from repro.core.label import RankingLabel, build_label
from repro.core.twod_topk import enumerate_topk_2d, sweep_topk_2d, verify_topk_2d
from repro.core.tradeoff import (
    TradeoffPoint,
    absolute_best_volumes,
    most_stable_within,
    stability_similarity_tradeoff,
)

__all__ = [
    "Dataset",
    "Ranking",
    "rank_items",
    "ranking_from_scores",
    "ScoringFunction",
    "RegionOfInterest",
    "FullSpace",
    "Cone",
    "ConstrainedRegion",
    "AngularRegion",
    "StabilityResult",
    "verify_stability_2d",
    "ray_sweep",
    "sweep_boundaries",
    "GetNext2D",
    "verify_stability_md",
    "ranking_region_md",
    "exchange_hyperplanes",
    "GetNextMD",
    "GetNextRandomized",
    "make_get_next",
    "enumerate_stable_rankings",
    "top_h_stable_rankings",
    "tolerant_stability",
    "kendall_tau_within",
    "BoundaryPair",
    "boundary_pairs_2d",
    "facet_pairs_md",
    "tight_constraints",
    "chebyshev_direction",
    "RankProfile",
    "rank_profile",
    "topk_membership_probability",
    "stable_pairs",
    "verify_topk_set_stability",
    "verify_topk_ranking_stability",
    "RankingLabel",
    "build_label",
    "sweep_topk_2d",
    "enumerate_topk_2d",
    "verify_topk_2d",
    "TradeoffPoint",
    "most_stable_within",
    "stability_similarity_tradeoff",
    "absolute_best_volumes",
]
