"""Item-level stability analyses built on the function sampler.

The paper's operators answer questions about whole rankings; consumers
often ask the dual question about a single item ("how volatile is my
rank?", Example 1's Cornell).  These analyses reuse the section 5
sampler:

- :func:`rank_profile` — per-item distribution of ranks across the
  region of interest: min, max, mean rank and selected quantiles;
- :func:`topk_membership_probability` — per-item probability of making
  the top-k (the quantity behind the stable top-k set);
- :func:`stable_pairs` — the partial order of item pairs whose relative
  ranking never flips inside ``U*`` (certified by LP, not sampling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.core.region import FullSpace, RegionOfInterest
from repro.geometry.halfspace import ConvexCone, Halfspace

__all__ = [
    "RankProfile",
    "rank_profile",
    "topk_membership_probability",
    "stable_pairs",
]


@dataclass(frozen=True)
class RankProfile:
    """Rank statistics of one item across sampled scoring functions.

    Ranks are 1-based; ``quantiles`` maps the requested quantile levels
    to rank values.
    """

    item: int
    min_rank: int
    max_rank: int
    mean_rank: float
    quantiles: dict[float, float]


def rank_profile(
    dataset: Dataset,
    items: list[int] | None = None,
    *,
    region: RegionOfInterest | None = None,
    n_samples: int = 2_000,
    rng: np.random.Generator | None = None,
    quantile_levels: tuple[float, ...] = (0.05, 0.5, 0.95),
) -> list[RankProfile]:
    """Per-item rank distributions over the region of interest.

    A consumer like Example 1's Cornell can see at a glance the best and
    worst rank any acceptable weighting assigns it.
    """
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    targets = list(items) if items is not None else list(range(dataset.n_items))
    weights = roi.sample(n_samples, generator)
    scores = weights @ dataset.values.T  # (n_samples, n_items)
    # rank of item j in sample s = 1 + #items with strictly higher score
    #                              + #lower-id items with equal score.
    ranks = np.empty((n_samples, len(targets)), dtype=np.int64)
    for col, item in enumerate(targets):
        s_item = scores[:, item]
        higher = (scores > s_item[:, None]).sum(axis=1)
        equal_lower = (scores[:, :item] == s_item[:, None]).sum(axis=1)
        ranks[:, col] = 1 + higher + equal_lower
    profiles = []
    for col, item in enumerate(targets):
        r = ranks[:, col]
        profiles.append(
            RankProfile(
                item=item,
                min_rank=int(r.min()),
                max_rank=int(r.max()),
                mean_rank=float(r.mean()),
                quantiles={
                    q: float(np.quantile(r, q)) for q in quantile_levels
                },
            )
        )
    return profiles


def topk_membership_probability(
    dataset: Dataset,
    k: int,
    *,
    region: RegionOfInterest | None = None,
    n_samples: int = 2_000,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """For each item, the probability of appearing in the top-k.

    The most stable top-k *set* tends to collect the items with the
    highest membership probability; this vector explains *why* a given
    set wins and which items sit on the bubble.
    """
    if not 1 <= k <= dataset.n_items:
        raise ValueError(f"k must be in [1, {dataset.n_items}], got {k}")
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    weights = roi.sample(n_samples, generator)
    scores = weights @ dataset.values.T
    counts = np.zeros(dataset.n_items, dtype=np.int64)
    for row in scores:
        part = np.argpartition(-row, k - 1)[:k]
        # Exact boundary handling is irrelevant for a probability
        # estimate (ties at the boundary have sampling probability 0).
        counts[part] += 1
    return counts / n_samples


def stable_pairs(
    dataset: Dataset,
    *,
    region: RegionOfInterest | None = None,
    max_items: int = 200,
) -> np.ndarray:
    """Certified order relations: pairs that never flip inside ``U*``.

    Returns a boolean matrix ``M`` with ``M[i, j]`` true iff item ``i``
    outscores item ``j`` for *every* function in the region of interest.
    Certification is exact: the exchange hyperplane of the pair must not
    intersect the region (an LP when the region is constraint-shaped,
    an angular-margin test for cones, a dominance test for the full
    space).  Quadratic in ``n``; guarded by ``max_items``.
    """
    from repro.core.region import Cone, ConstrainedRegion
    from repro.geometry.angles import as_unit_vector
    from repro.geometry.dual import dominates

    n = dataset.n_items
    if n > max_items:
        raise ValueError(
            f"stable_pairs is O(n^2) with an LP per pair; {n} items exceeds "
            f"max_items={max_items}"
        )
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    values = dataset.values
    result = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            diff = values[i] - values[j]
            if dominates(values[i], values[j]):
                result[i, j] = True
                continue
            if isinstance(roi, FullSpace):
                continue  # only dominance certifies over the whole orthant
            if isinstance(roi, Cone):
                # i always outscores j iff diff . w > 0 on the whole cap:
                # the angle between diff's positive halfspace boundary and
                # the axis must exceed theta with margin on the right side.
                axis = as_unit_vector(roi.ray)
                norm = float(np.linalg.norm(diff))
                if norm == 0.0:
                    continue
                margin = float(diff @ axis) / norm  # cos of angle to boundary normal
                # diff.w > 0 for all w within theta of axis  iff
                # angle(diff, axis) < pi/2 - theta.
                result[i, j] = margin > np.cos(np.pi / 2 - roi.theta) + 1e-12
                continue
            if isinstance(roi, ConstrainedRegion):
                # Certified iff the opposite halfspace is infeasible
                # within the region's cone.
                opposite = Halfspace(tuple(diff), -1)
                cone: ConvexCone = roi.cone.with_halfspace(opposite)
                result[i, j] = not cone.is_feasible()
    return result
