"""Stability verification for top-k results (Problem 1, partial form).

Section 2.2.5 defines two stability notions for the top-k portion of a
ranked list — same *set*, or same set in the same *order*.  The
GET-NEXT-R operator discovers stable top-k results; this module answers
the complementary consumer question: *given* a published shortlist, how
stable is it?

Exact regions are unavailable for top-k results (a top-k result's region
is a union of full-ranking cells, section 4.5.1), so verification is
Monte-Carlo like the discovery operator, sharing its sampling machinery.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, _top_k_order
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.errors import InvalidRankingError
from repro.sampling.montecarlo import confidence_error

__all__ = ["verify_topk_set_stability", "verify_topk_ranking_stability"]


def _sample_scores(
    dataset: Dataset,
    region: RegionOfInterest,
    n_samples: int,
    rng: np.random.Generator,
    chunk: int = 64,
):
    """Yield score matrices for batches of sampled functions."""
    remaining = n_samples
    values_t = dataset.values.T
    while remaining > 0:
        batch = min(chunk, remaining)
        weights = region.sample(batch, rng)
        yield weights @ values_t
        remaining -= batch


def verify_topk_set_stability(
    dataset: Dataset,
    items: Iterable[int],
    *,
    region: RegionOfInterest | None = None,
    n_samples: int = 5_000,
    rng: np.random.Generator | None = None,
    confidence: float = 0.95,
) -> StabilityResult:
    """Stability of a published top-k *set* (order-insensitive).

    The fraction of the region of interest whose induced top-k set is
    exactly ``items``.

    Parameters
    ----------
    dataset:
        The database.
    items:
        The published shortlist; ``k = len(items)``.
    region, n_samples, rng, confidence:
        Monte-Carlo controls; region defaults to the full space.
    """
    target = frozenset(int(i) for i in items)
    k = len(target)
    if not 1 <= k <= dataset.n_items:
        raise InvalidRankingError(f"set size must be in [1, {dataset.n_items}]")
    if any(i < 0 or i >= dataset.n_items for i in target):
        raise InvalidRankingError("set contains out-of-range item identifiers")
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    hits = 0
    for scores in _sample_scores(dataset, roi, n_samples, generator):
        for row in scores:
            if frozenset(_top_k_order(row, k)) == target:
                hits += 1
    stability = hits / n_samples
    return StabilityResult(
        ranking=Ranking(sorted(target), n_items=dataset.n_items),
        stability=stability,
        confidence_error=confidence_error(
            stability, n_samples, confidence=confidence
        ),
        sample_count=hits,
        top_k_set=target,
    )


def verify_topk_ranking_stability(
    dataset: Dataset,
    prefix: Iterable[int],
    *,
    region: RegionOfInterest | None = None,
    n_samples: int = 5_000,
    rng: np.random.Generator | None = None,
    confidence: float = 0.95,
) -> StabilityResult:
    """Stability of a published ranked top-k (order-sensitive).

    The fraction of the region of interest whose induced ranked top-k
    equals ``prefix`` exactly (same items, same order).
    """
    target = tuple(int(i) for i in prefix)
    k = len(target)
    if len(set(target)) != k:
        raise InvalidRankingError("prefix contains repeated items")
    if not 1 <= k <= dataset.n_items:
        raise InvalidRankingError(f"prefix length must be in [1, {dataset.n_items}]")
    if any(i < 0 or i >= dataset.n_items for i in target):
        raise InvalidRankingError("prefix contains out-of-range item identifiers")
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    hits = 0
    for scores in _sample_scores(dataset, roi, n_samples, generator):
        for row in scores:
            if tuple(_top_k_order(row, k)) == target:
                hits += 1
    stability = hits / n_samples
    return StabilityResult(
        ranking=Ranking(target, n_items=dataset.n_items),
        stability=stability,
        confidence_error=confidence_error(
            stability, n_samples, confidence=confidence
        ),
        sample_count=hits,
    )
