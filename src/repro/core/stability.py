"""Result types shared by the verification and enumeration algorithms.

Stability (Definition 2) is always reported together with the region that
realises it — an angle interval in 2D, a convex cone in MD, or a pure
Monte-Carlo estimate with confidence error for the randomized operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import Ranking
from repro.geometry.halfspace import ConvexCone

__all__ = ["AngularRegion", "StabilityResult", "RankedRegion"]


@dataclass(frozen=True)
class AngularRegion:
    """A 2D ranking region: the angle interval ``(lo, hi)`` from the x1 axis."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError(f"empty angular region ({self.lo}, {self.hi})")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def midpoint_weights(self) -> np.ndarray:
        """The weight vector at the interval midpoint (GET-NEXT-2D line 2)."""
        mid = (self.lo + self.hi) / 2.0
        return np.array([np.cos(mid), np.sin(mid)])

    def contains_angle(self, angle: float) -> bool:
        return self.lo <= angle <= self.hi


@dataclass(frozen=True)
class StabilityResult:
    """Outcome of stability verification or one GET-NEXT step.

    Attributes
    ----------
    ranking:
        The (complete or partial) ranking the result describes.  For
        top-k *set* results this is a canonical ranking of the set
        members and :attr:`top_k_set` carries the set itself.
    stability:
        The stability value in ``[0, 1]`` — exact in 2D, a Monte-Carlo
        estimate otherwise.
    region:
        The realising region: an :class:`AngularRegion` (2D exact), a
        :class:`ConvexCone` (MD arrangement), or ``None`` (randomized
        operators, which never materialise regions).
    confidence_error:
        Half-width of the confidence interval around ``stability`` when
        it is a Monte-Carlo estimate (Equation 10); 0.0 for exact values.
    sample_count:
        Number of Monte-Carlo samples supporting the estimate (0 for
        exact values).
    top_k_set:
        For top-k set results, the unordered set of the top-k items.
    """

    ranking: Ranking
    stability: float
    region: AngularRegion | ConvexCone | None = None
    confidence_error: float = 0.0
    sample_count: int = 0
    top_k_set: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if not -1e-9 <= self.stability <= 1.0 + 1e-9:
            raise ValueError(f"stability must be in [0, 1], got {self.stability}")

    @property
    def representative_weights(self) -> np.ndarray | None:
        """A weight vector generating the ranking, when the region is known."""
        if isinstance(self.region, AngularRegion):
            return self.region.midpoint_weights()
        return None


@dataclass
class RankedRegion:
    """A (stability, region, ranking) triple used inside enumeration heaps."""

    stability: float
    region: AngularRegion | ConvexCone
    ranking: Ranking | None = None
    payload: dict = field(default_factory=dict)
